//! The campaign-engine bridge: a one-phase campaign with no churn,
//! drift, or adversary must reproduce [`CohortRunner::run`]
//! **bit-exactly** — reports and final weights — at 1, 2, and 4
//! threads. Multi-phase campaigns with churn, drift, and an adaptive
//! adversary must be bit-deterministic across reruns and thread
//! counts, and must resume from a checkpoint via
//! [`CampaignRunner::seek`] onto the identical trajectory.

use std::sync::Arc;

use oasis_campaign::{linear_relu_factory, CampaignRunner, CampaignSetup, CampaignSpec};
use oasis_data::{cifar_like_with, Dataset};
use oasis_fl::{FlConfig, FlServer};
use oasis_nn::flatten_params;
use oasis_population::{CohortRunner, Population};
use oasis_scenario::DefenseSpec;
use oasis_tensor::parallel;
use rand::{rngs::StdRng, SeedableRng};

const CLASSES: usize = 3;
const SIDE: usize = 8;
const D: usize = SIDE * SIDE * 3;
const HIDDEN: usize = 12;
const MODEL_SEED: u64 = 11;

fn data() -> Dataset {
    cifar_like_with(CLASSES, 8, SIDE, 3)
}

fn setup(clients: usize, seed: u64) -> CampaignSetup {
    let mut s = CampaignSetup::new(
        data(),
        clients,
        linear_relu_factory(D, HIDDEN, CLASSES, MODEL_SEED),
    );
    s.seed = seed;
    s.partition_seed = 5;
    s.probe_batch = 4;
    s
}

/// One phase, no dynamics: the campaign IS `CohortRunner::run`.
#[test]
fn one_phase_campaign_matches_cohort_runner_bit_exactly() {
    let rounds = 4;
    let seed = 42;

    // Reference: the plain cohort runner over the same population.
    let dataset = data();
    let defense = Arc::new(DefenseSpec::none().build().unwrap());
    let population = Population::iid(&dataset, 6, defense, &mut StdRng::seed_from_u64(5));
    let server = FlServer::new(
        linear_relu_factory(D, HIDDEN, CLASSES, MODEL_SEED),
        FlConfig::default(),
    )
    .unwrap();
    let mut reference = CohortRunner::new(server, population);
    let reports = reference.run(rounds, seed).unwrap();
    let reference_weights = flatten_params(reference.server_mut().model_mut());

    let spec: CampaignSpec = format!("campaign:{rounds}").parse().unwrap();
    let mut campaign = CampaignRunner::new(spec, setup(6, seed)).unwrap();
    campaign.run().unwrap();

    assert_eq!(
        flatten_params(campaign.server_mut().model_mut()),
        reference_weights,
        "one-phase campaign weights must be bit-identical to CohortRunner::run"
    );
    assert_eq!(campaign.records().len(), reports.len());
    for (record, report) in campaign.records().iter().zip(&reports) {
        let report = &report.round_report;
        assert_eq!(record.round, report.round as u64);
        assert_eq!(record.cohort, report.cohort);
        assert_eq!(record.delivered, report.participants);
        assert_eq!(record.dropped, report.dropped);
        assert_eq!(record.bytes_up, report.bytes_up);
        assert_eq!(record.bytes_down, report.bytes_down);
        assert_eq!(record.mean_loss, report.mean_loss as f64);
        assert_eq!(record.churn_left, 0);
        assert_eq!(record.churn_joined, 0);
    }
}

#[test]
fn one_phase_campaign_is_thread_count_invariant() {
    let run = || {
        let spec: CampaignSpec = "campaign:3".parse().unwrap();
        let mut campaign = CampaignRunner::new(spec, setup(5, 3)).unwrap();
        campaign.run().unwrap();
        (
            campaign.records().to_vec(),
            flatten_params(campaign.server_mut().model_mut()),
        )
    };
    let (r1, w1) = parallel::with_threads(1, run);
    let (r2, w2) = parallel::with_threads(2, run);
    let (r4, w4) = parallel::with_threads(4, run);
    assert_eq!(r1, r2);
    assert_eq!(r1, r4);
    assert_eq!(w1, w2);
    assert_eq!(w1, w4);
}

const DYNAMIC_SPEC: &str = "campaign:3;3+leave=0.4+join=0.5+alpha=0.4+net=sim:10,16,0.2;\
                            3+attack=rtf:24|qbi:24,4";

fn run_dynamic(seed: u64) -> (Vec<oasis_campaign::TrajectoryRecord>, Vec<f32>, String) {
    let spec: CampaignSpec = DYNAMIC_SPEC.parse().unwrap();
    let mut s = setup(6, seed);
    s.eval_every = 2;
    let mut campaign = CampaignRunner::new(spec, s).unwrap();
    campaign.run().unwrap();
    let log = campaign
        .adversary_log()
        .iter()
        .map(|e| {
            format!(
                "{}:{}:{:.6}:{:.6}:{}",
                e.round, e.spec, e.mean_psnr, e.leak_rate, e.picked
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    (
        campaign.records().to_vec(),
        flatten_params(campaign.server_mut().model_mut()),
        log,
    )
}

/// Churn + drift + adaptive adversary: reruns and thread counts all
/// land on the identical trajectory, adversary probes included.
#[test]
fn dynamic_campaign_is_bit_deterministic() {
    let (r_a, w_a, log_a) = run_dynamic(17);
    let (r_b, w_b, log_b) = run_dynamic(17);
    assert_eq!(r_a, r_b, "rerun must reproduce the trajectory");
    assert_eq!(w_a, w_b);
    assert_eq!(log_a, log_b, "adversary probes must replay");

    let (r_t2, w_t2, log_t2) = parallel::with_threads(2, || run_dynamic(17));
    let (r_t4, w_t4, log_t4) = parallel::with_threads(4, || run_dynamic(17));
    assert_eq!(r_a, r_t2);
    assert_eq!(r_a, r_t4);
    assert_eq!(w_a, w_t2);
    assert_eq!(w_a, w_t4);
    assert_eq!(log_a, log_t2);
    assert_eq!(log_a, log_t4);

    // The dynamics actually exercised something.
    assert!(
        r_a.iter().any(|r| r.churn_left + r.churn_joined > 0),
        "40%/50% churn over 6 rounds should move someone"
    );
    assert!(
        r_a.iter().any(|r| r.mean_psnr.is_some()),
        "the adversary phase should have probed"
    );
    assert!(r_a.iter().all(|r| r.delivered + r.dropped == r.cohort));
}

/// Seek + checkpoint restore continues the identical trajectory.
#[test]
fn campaign_resumes_from_checkpoint_via_seek() {
    let seed = 23;
    let split = 5u64;
    let ckpt = std::env::temp_dir().join("oasis_campaign_resume_test.ckpt");

    // Full run for reference.
    let (full_records, full_weights, _) = run_dynamic(seed);

    // Head run: stop at `split`, checkpoint the model.
    let spec: CampaignSpec = DYNAMIC_SPEC.parse().unwrap();
    let mut s = setup(6, seed);
    s.eval_every = 2;
    let mut head = CampaignRunner::new(spec.clone(), s).unwrap();
    head.run_rounds(split as usize).unwrap();
    head.server().save_checkpoint(&ckpt).unwrap();

    // Resumed run: replay the dynamics without training, restore the
    // model, continue to the end.
    let mut s = setup(6, seed);
    s.eval_every = 2;
    let mut resumed = CampaignRunner::new(spec, s).unwrap();
    resumed.seek(split).unwrap();
    assert_eq!(resumed.round(), split);
    resumed.server_mut().restore_checkpoint(&ckpt).unwrap();
    resumed.run().unwrap();
    std::fs::remove_file(&ckpt).ok();

    assert_eq!(
        flatten_params(resumed.server_mut().model_mut()),
        full_weights,
        "resumed campaign must converge to the full run's weights"
    );
    let tail = &full_records[split as usize..];
    assert_eq!(
        resumed.records(),
        tail,
        "post-seek records must match the full run"
    );
}

/// The defense adaptation hook re-parameterizes the stack
/// mid-campaign and stays deterministic.
#[test]
fn defense_adaptation_hook_swaps_the_stack_deterministically() {
    let run = || {
        let spec: CampaignSpec = "campaign:2;4+attack=rtf:24".parse().unwrap();
        let mut s = setup(6, 9);
        s.eval_every = 1;
        let mut campaign = CampaignRunner::new(spec, s).unwrap();
        campaign.set_defense_adapter(Box::new(|signals| {
            // Escalate to clipping as soon as the adversary leaks.
            if signals.record.leak_rate.unwrap_or(0.0) > 0.0 {
                Some("clip:0.5".parse().unwrap())
            } else {
                None
            }
        }));
        campaign.run().unwrap();
        (
            campaign.defense_spec().to_string(),
            campaign.records().to_vec(),
            flatten_params(campaign.server_mut().model_mut()),
        )
    };
    let (defense_a, records_a, weights_a) = run();
    let (defense_b, records_b, weights_b) = run();
    assert_eq!(
        defense_a, "clip:0.5",
        "an undefended rtf probe leaks, so the hook must fire"
    );
    assert_eq!(defense_a, defense_b);
    assert_eq!(records_a, records_b);
    assert_eq!(weights_a, weights_b);
}
