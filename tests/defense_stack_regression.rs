//! Legacy single-defense specs reproduce pre-redesign numbers
//! **bit-exactly** through the composable defense pipeline.
//!
//! The fixture `golden_defense_trials.json` was captured from the
//! pre-`DefenseStack` code (closed `DefenseSpec` enum, `dp_params()`
//! side channel) by running the `scenario` CLI at quick scale:
//!
//! ```text
//! scenario --attack rtf:48 --defense none,oasis:MR,ats,dp:1,0.5 \
//!     --workload cifar100 --batch 4 --trials 2 --quick --seed 7 \
//!     --calibration 32
//! scenario --attack cah:48 --defense oasis:MR+SH \
//!     --workload imagenette --batch 4 --trials 2 --quick --seed 7 \
//!     --calibration 48
//! ```
//!
//! Every matched PSNR of every trial must come back identical to the
//! recorded f64 bit patterns: the batch-stage path, the per-sample DP
//! path (clip + Gaussian noise stream), and the spec grammar all
//! survived the API migration unchanged.
//!
//! Re-captured once when `psnr_data`'s MSE reduction moved from a
//! strictly sequential f64 sum to the eight-lane blocked
//! `oasis_tensor::simd::sq_err_sum` (last-ulp shifts only). The
//! blocked sum is itself bit-identical across SIMD backends and
//! thread counts, so the fixture pins every `OASIS_SIMD` setting.

use oasis_scenario::{Scale, Scenario};
use serde::Value;

const GOLDEN: &str = include_str!("golden_defense_trials.json");

fn golden_trials(key: &str) -> Vec<Vec<f64>> {
    let value: Value = serde_json::from_str::<Value>(GOLDEN).expect("fixture parses");
    let trials = value
        .get(key)
        .unwrap_or_else(|| panic!("fixture key {key}"));
    let Value::Array(trials) = trials else {
        panic!("fixture {key} is not an array")
    };
    trials
        .iter()
        .map(|t| {
            let Value::Array(psnrs) = t else {
                panic!("trial is not an array")
            };
            psnrs
                .iter()
                .map(|p| p.as_f64().expect("psnr is a number"))
                .collect()
        })
        .collect()
}

fn run(attack: &str, defense: &str, workload: &str, calibration: usize) -> Vec<Vec<f64>> {
    let report = Scenario::builder()
        .attack(attack.parse().expect("attack spec"))
        .defense(defense.parse().expect("defense spec"))
        .workload(workload.parse().expect("workload spec"))
        .batch_size(4)
        .trials(2)
        .scale(Scale::Quick)
        .seed(7)
        .calibration(calibration)
        .build()
        .expect("scenario")
        .run()
        .expect("run");
    report
        .trials
        .iter()
        .map(|t| t.matched_psnrs.clone())
        .collect()
}

#[test]
fn legacy_defense_specs_reproduce_pre_redesign_trials_bit_exactly() {
    for (attack, defense, workload, calibration) in [
        ("rtf:48", "none", "cifar100", 32),
        ("rtf:48", "oasis:MR", "cifar100", 32),
        ("rtf:48", "ats", "cifar100", 32),
        ("rtf:48", "dp:1,0.5", "cifar100", 32),
        ("cah:48", "oasis:MR+SH", "imagenette", 48),
    ] {
        let key = format!("{attack}|{defense}|{workload}");
        let golden = golden_trials(&key);
        let current = run(attack, defense, workload, calibration);
        assert_eq!(current.len(), golden.len(), "{key}: trial count changed");
        for (i, (cur, gold)) in current.iter().zip(&golden).enumerate() {
            assert_eq!(
                cur, gold,
                "{key} trial {i}: matched PSNRs diverged from the pre-redesign capture"
            );
        }
    }
}

/// The redesign's acceptance shape: a stacked `oasis+dp` defense runs
/// end-to-end and is at least as strong as its strongest layer.
#[test]
fn stacked_oasis_dp_is_no_weaker_than_either_layer() {
    let mean = |defense: &str| -> f64 {
        Scenario::builder()
            .attack("rtf:48".parse().expect("attack"))
            .defense(defense.parse().expect("defense"))
            .workload("cifar100".parse().expect("workload"))
            .batch_size(4)
            .trials(2)
            .scale(Scale::Quick)
            .seed(7)
            .calibration(32)
            .build()
            .expect("scenario")
            .run()
            .expect("run")
            .mean_psnr()
    };
    let none = mean("none");
    let oasis = mean("oasis:MR");
    let dp = mean("dp:1,0.0003");
    let both = mean("oasis:MR+dp:1,0.0003");
    assert!(oasis < none, "oasis must defend: {oasis} vs {none}");
    assert!(dp < none, "dp must defend: {dp} vs {none}");
    assert!(
        both <= oasis.min(dp) + 1e-9,
        "stack must be no weaker than its strongest layer: \
         oasis+dp {both:.2} dB vs min(oasis {oasis:.2}, dp {dp:.2})"
    );
}
