//! Integration test for the executable Proposition 1: predicted
//! activation-set protection tracks measured leakage across policies
//! and attack families.

use oasis::{activation_set_analysis, Oasis, OasisConfig};
use oasis_attacks::{run_attack, ActiveAttack, RtfAttack};
use oasis_augment::PolicyKind;
use oasis_data::imagenette_like_with;
use oasis_nn::Linear;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn prop1_protection_implies_no_rtf_leakage() {
    let ds = imagenette_like_with(16, 24, 31);
    let calibration: Vec<_> = ds.items().iter().map(|it| it.image.clone()).collect();
    let attack = RtfAttack::calibrated(192, &calibration).expect("calibration");
    let mut rng = StdRng::seed_from_u64(8);
    let batch = ds.sample_batch(6, &mut rng);

    let model = attack
        .build_model(batch.images[0].dims(), 10, 2)
        .expect("model");
    let layer = model.layer_as::<Linear>(0).expect("malicious layer");

    for kind in [
        PolicyKind::MajorRotation,
        PolicyKind::HorizontalFlip,
        PolicyKind::VerticalFlip,
        PolicyKind::MinorRotation,
        PolicyKind::Shearing,
    ] {
        let defense = Oasis::new(OasisConfig::policy(kind));
        let analysis = activation_set_analysis(layer, &batch, &defense);
        let stack = oasis_fl::DefenseStack::of(defense);
        let outcome = run_attack(&attack, &batch, &stack, 10, 2).expect("run");
        // Proposition 1: full activation-set twinning ⇒ the attacker
        // cannot isolate any sample.
        if analysis.protection_rate == 1.0 {
            assert_eq!(
                outcome.leak_rate(60.0),
                0.0,
                "policy {} predicted protected but leaked",
                kind.abbrev()
            );
        }
        // Mean-preserving policies must fully twin measurement layers.
        assert_eq!(
            analysis.protection_rate,
            1.0,
            "policy {} should twin RTF's measurement layer",
            kind.abbrev()
        );
    }
}

#[test]
fn without_policy_is_predicted_and_measured_unprotected() {
    let ds = imagenette_like_with(16, 24, 32);
    let calibration: Vec<_> = ds.items().iter().map(|it| it.image.clone()).collect();
    let attack = RtfAttack::calibrated(192, &calibration).expect("calibration");
    let mut rng = StdRng::seed_from_u64(9);
    let batch = ds.sample_batch(6, &mut rng);

    let model = attack
        .build_model(batch.images[0].dims(), 10, 2)
        .expect("model");
    let layer = model.layer_as::<Linear>(0).expect("malicious layer");
    let defense = Oasis::new(OasisConfig::policy(PolicyKind::Without));
    let analysis = activation_set_analysis(layer, &batch, &defense);
    let stack = oasis_fl::DefenseStack::of(defense);
    let outcome = run_attack(&attack, &batch, &stack, 10, 2).expect("run");
    assert!(
        analysis.protection_rate < 0.5,
        "WO should not be predicted protected"
    );
    assert!(outcome.leak_rate(60.0) > 0.5, "WO should measurably leak");
}
