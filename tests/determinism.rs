//! Reproducibility: every experiment endpoint is a pure function of
//! its seeds.

use oasis::{Oasis, OasisConfig};
use oasis_attacks::{run_attack, CahAttack, RtfAttack, DEFAULT_ACTIVATION_TARGET};
use oasis_augment::PolicyKind;
use oasis_data::{imagenette_like_with, Batch};
use oasis_fl::DefenseStack;

#[test]
fn datasets_are_reproducible() {
    let a = imagenette_like_with(4, 16, 5);
    let b = imagenette_like_with(4, 16, 5);
    assert_eq!(a.items(), b.items());
}

#[test]
fn attack_outcomes_are_reproducible() {
    let ds = imagenette_like_with(6, 16, 6);
    let calib: Vec<_> = ds.items().iter().map(|it| it.image.clone()).collect();
    let batch = Batch::from_items(ds.items()[..5].to_vec());

    let rtf = RtfAttack::calibrated(64, &calib).unwrap();
    let a = run_attack(&rtf, &batch, &DefenseStack::identity(), 10, 3).unwrap();
    let b = run_attack(&rtf, &batch, &DefenseStack::identity(), 10, 3).unwrap();
    assert_eq!(a.matched_psnrs, b.matched_psnrs);

    let cah = CahAttack::calibrated(64, DEFAULT_ACTIVATION_TARGET, &calib, 1).unwrap();
    let defense = DefenseStack::of(Oasis::new(OasisConfig::policy(
        PolicyKind::MajorRotationShearing,
    )));
    let c = run_attack(&cah, &batch, &defense, 10, 3).unwrap();
    let d = run_attack(&cah, &batch, &defense, 10, 3).unwrap();
    assert_eq!(c.matched_psnrs, d.matched_psnrs);
}

#[test]
fn different_seeds_differ() {
    let ds = imagenette_like_with(6, 16, 6);
    let calib: Vec<_> = ds.items().iter().map(|it| it.image.clone()).collect();
    let batch = Batch::from_items(ds.items()[..5].to_vec());
    let cah_a = CahAttack::calibrated(64, DEFAULT_ACTIVATION_TARGET, &calib, 1).unwrap();
    let cah_b = CahAttack::calibrated(64, DEFAULT_ACTIVATION_TARGET, &calib, 2).unwrap();
    let a = run_attack(&cah_a, &batch, &DefenseStack::identity(), 10, 3).unwrap();
    let b = run_attack(&cah_b, &batch, &DefenseStack::identity(), 10, 3).unwrap();
    assert_ne!(a.matched_psnrs, b.matched_psnrs);
}

#[test]
fn scenario_reports_are_reproducible() {
    use oasis_scenario::{Scale, Scenario};

    let scenario = Scenario::builder()
        .workload("imagenette".parse().unwrap())
        .attack("rtf:48".parse().unwrap())
        .defense("oasis:MR".parse().unwrap())
        .batch_size(4)
        .trials(2)
        .scale(Scale::Quick)
        .seed(0x5EED)
        .calibration(32)
        .build()
        .unwrap();
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    for (ta, tb) in a.trials.iter().zip(&b.trials) {
        assert_eq!(
            ta.matched_psnrs, tb.matched_psnrs,
            "trial {} diverged",
            ta.trial
        );
    }
    assert_eq!(a.summary, b.summary);
    // The serialized report (minus wall clock) is reproducible too.
    assert_eq!(
        serde_json::to_string(&a.trials).unwrap(),
        serde_json::to_string(&b.trials).unwrap()
    );
}
