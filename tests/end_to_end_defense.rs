//! End-to-end integration tests: the paper's headline claims, asserted
//! across crate boundaries (data → fl → attacks → defense → metrics).

use oasis::{Oasis, OasisConfig};
use oasis_attacks::{run_attack, CahAttack, RtfAttack, DEFAULT_ACTIVATION_TARGET};
use oasis_augment::PolicyKind;
use oasis_data::{imagenette_like_with, Batch};
use oasis_fl::DefenseStack;
use oasis_image::Image;

fn calibration() -> Vec<Image> {
    imagenette_like_with(24, 24, 7)
        .items()
        .iter()
        .map(|it| it.image.clone())
        .collect()
}

fn victim_batch(size: usize) -> Batch {
    use rand::{rngs::StdRng, SeedableRng};
    let ds = imagenette_like_with(8, 24, 21);
    ds.sample_batch(size, &mut StdRng::seed_from_u64(77))
}

/// Paper Figure 5 / §IV-B: RTF reconstructs undefended batches in the
/// perfect band; major rotation collapses it to the unrecognizable
/// band.
#[test]
fn rtf_perfect_without_oasis_blocked_by_major_rotation() {
    let attack = RtfAttack::calibrated(256, &calibration()).expect("calibration");
    let batch = victim_batch(6);

    let undefended = run_attack(&attack, &batch, &DefenseStack::identity(), 10, 3).expect("run");
    assert!(
        undefended.mean_psnr() > 100.0,
        "undefended RTF should be near-perfect, got {:.1} dB",
        undefended.mean_psnr()
    );
    assert!(undefended.leak_rate(60.0) > 0.8);

    let defense = DefenseStack::of(Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation)));
    let defended = run_attack(&attack, &batch, &defense, 10, 3).expect("run");
    assert!(
        defended.mean_psnr() < 30.0,
        "MR-defended RTF should be unrecognizable, got {:.1} dB",
        defended.mean_psnr()
    );
    assert_eq!(defended.leak_rate(60.0), 0.0, "no sample may leak under MR");
}

/// Paper §IV-B: every single-transform policy substantially reduces
/// RTF reconstruction quality.
#[test]
fn all_policies_degrade_rtf() {
    let attack = RtfAttack::calibrated(128, &calibration()).expect("calibration");
    let batch = victim_batch(5);
    let undefended = run_attack(&attack, &batch, &DefenseStack::identity(), 10, 4).expect("run");
    for kind in [
        PolicyKind::MajorRotation,
        PolicyKind::MinorRotation,
        PolicyKind::Shearing,
        PolicyKind::HorizontalFlip,
        PolicyKind::VerticalFlip,
        PolicyKind::MajorRotationShearing,
    ] {
        let defense = DefenseStack::of(Oasis::new(OasisConfig::policy(kind)));
        let defended = run_attack(&attack, &batch, &defense, 10, 4).expect("run");
        assert!(
            defended.mean_psnr() < undefended.mean_psnr() - 60.0,
            "policy {} reduced PSNR only from {:.1} to {:.1}",
            kind.abbrev(),
            undefended.mean_psnr(),
            defended.mean_psnr()
        );
    }
}

/// Paper Figure 6: against CAH at small batches, the MR+SH integration
/// is substantially stronger than the undefended baseline, and no
/// weaker than MR alone.
#[test]
fn cah_defeated_by_mr_sh_integration() {
    let attack = CahAttack::calibrated(96, DEFAULT_ACTIVATION_TARGET, &calibration(), 11)
        .expect("calibration");
    let batch = victim_batch(8);

    let undefended = run_attack(&attack, &batch, &DefenseStack::identity(), 10, 5).expect("run");
    let mr = run_attack(
        &attack,
        &batch,
        &DefenseStack::of(Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation))),
        10,
        5,
    )
    .expect("run");
    let mrsh = run_attack(
        &attack,
        &batch,
        &DefenseStack::of(Oasis::new(OasisConfig::policy(
            PolicyKind::MajorRotationShearing,
        ))),
        10,
        5,
    )
    .expect("run");

    assert!(
        undefended.leak_rate(60.0) >= 0.5,
        "undefended CAH too weak: leak {:.0}%",
        undefended.leak_rate(60.0) * 100.0
    );
    assert!(
        mrsh.mean_psnr() < undefended.mean_psnr() - 40.0,
        "MR+SH insufficient: {:.1} vs undefended {:.1}",
        mrsh.mean_psnr(),
        undefended.mean_psnr()
    );
    assert!(
        mrsh.leak_rate(60.0) <= mr.leak_rate(60.0),
        "integration must not leak more than MR alone ({:.2} vs {:.2})",
        mrsh.leak_rate(60.0),
        mr.leak_rate(60.0)
    );
}

/// The reconstructions the attacker gets under OASIS are linear
/// combinations: blending the original with its rotations approximates
/// the defended reconstruction better than the original alone does.
#[test]
fn defended_reconstruction_is_a_linear_combination() {
    use oasis_metrics::psnr;
    let attack = RtfAttack::calibrated(256, &calibration()).expect("calibration");
    let batch = victim_batch(4);
    let defense = DefenseStack::of(Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation)));
    let outcome = run_attack(&attack, &batch, &defense, 10, 6).expect("run");

    let m = outcome
        .matches
        .iter()
        .max_by(|a, b| a.psnr.total_cmp(&b.psnr))
        .expect("at least one match");
    let recon = &outcome.reconstructions[m.recon_idx];
    let original = &batch.images[m.original_idx];
    let blend = Image::blend(&[
        original.clone(),
        original.rotate90(1),
        original.rotate90(2),
        original.rotate90(3),
    ])
    .expect("blend");
    assert!(
        psnr(recon, &blend) > psnr(recon, original) + 3.0,
        "reconstruction should look like the rotation blend: vs blend {:.1}, vs original {:.1}",
        psnr(recon, &blend),
        psnr(recon, original)
    );
}
