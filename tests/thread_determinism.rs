//! Multi-threaded execution is bit-deterministic: the worker pool's
//! row-block partitioning and ordered result merges keep every
//! floating-point accumulation sequence independent of the thread
//! count, so weights, round reports, and reconstruction PSNRs are
//! identical at `OASIS_THREADS=1` and `=4` (or any other width).
//!
//! Thread counts are pinned per run with
//! [`oasis_tensor::parallel::with_threads`] — the race-free in-process
//! equivalent of setting `OASIS_THREADS`.

use std::sync::Arc;

use oasis_attacks::{ActiveAttack, RtfAttack};
use oasis_data::cifar_like_with;
use oasis_fl::{partition_iid, DefenseStack, FlConfig, FlServer, ModelFactory, RoundReport};
use oasis_nn::{flatten_params, Conv2d, Layer, Linear, Mode, Relu, Sequential};
use oasis_scenario::{Scale, Scenario};
use oasis_tensor::{parallel, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One full FL deployment (the `fl_round_raw` perf workload shape):
/// 4 clients, 3 rounds, returning final weights and every report.
fn run_fl(threads: usize) -> (Vec<f32>, Vec<RoundReport>) {
    parallel::with_threads(threads, || {
        let data = cifar_like_with(10, 8, 16, 0);
        let d = data.feature_dim();
        let factory: ModelFactory = Arc::new(move || {
            let mut rng = StdRng::seed_from_u64(12);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 64, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(64, 10, &mut rng));
            m
        });
        let clients = partition_iid(
            &data,
            4,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(13),
        );
        let mut server = FlServer::new(factory, FlConfig::default()).expect("server");
        let reports = server.run(&clients, 3, 14).expect("rounds");
        (flatten_params(server.model_mut()), reports)
    })
}

#[test]
fn fl_weights_and_reports_are_bit_identical_across_thread_counts() {
    let (weights_1, reports_1) = run_fl(1);
    for threads in [2, 4] {
        let (weights_n, reports_n) = run_fl(threads);
        assert_eq!(weights_n, weights_1, "weights diverged at t={threads}");
        assert_eq!(reports_n, reports_1, "reports diverged at t={threads}");
    }
}

/// One scenario trial batch (the `scenario --quick` workload): RTF
/// over the wire under `defense`, 2 trials.
fn run_scenario(threads: usize, defense: &str) -> String {
    parallel::with_threads(threads, || {
        let scenario = Scenario::builder()
            .workload("imagenette".parse().expect("workload"))
            .attack("rtf:48".parse().expect("attack"))
            .defense(defense.parse().expect("defense"))
            .batch_size(4)
            .trials(2)
            .scale(Scale::Quick)
            .seed(0x5EED)
            .calibration(32)
            .build()
            .expect("scenario");
        let report = scenario.run().expect("run");
        // Serialized trials carry every matched PSNR bit pattern.
        serde_json::to_string(&report.trials).expect("serialize")
    })
}

#[test]
fn scenario_trial_reports_are_bit_identical_across_thread_counts() {
    let serial = run_scenario(1, "oasis:MR");
    assert_eq!(run_scenario(4, "oasis:MR"), serial);
}

/// A stacked defense — the OASIS batch stage plus the DP update
/// stage's per-sample path and Gaussian noise stream — is bit
/// identical at 1, 2, and 4 worker threads.
#[test]
fn stacked_defense_trials_are_bit_identical_across_thread_counts() {
    let serial = run_scenario(1, "oasis:MR+dp:1,0.01");
    for threads in [2, 4] {
        assert_eq!(
            run_scenario(threads, "oasis:MR+dp:1,0.01"),
            serial,
            "stacked trials diverged at t={threads}"
        );
    }
}

/// The `conv2d_forward_b32` perf workload plus its backward, at model
/// shape: forward activations, weight/bias gradients, and the input
/// gradient must not move by a bit.
fn run_conv(threads: usize) -> (Tensor, Tensor) {
    parallel::with_threads(threads, || {
        let mut conv = Conv2d::new(3, 16, 3, 1, 1, (16, 16), &mut StdRng::seed_from_u64(9));
        let x = Tensor::randn(&[32, 3 * 16 * 16], &mut StdRng::seed_from_u64(10));
        let y = conv.forward(&x, Mode::Train).expect("forward");
        let gx = conv.backward(&Tensor::ones(y.dims())).expect("backward");
        (y, gx)
    })
}

#[test]
fn conv_batch32_is_bit_identical_across_thread_counts() {
    let (y1, gx1) = run_conv(1);
    for threads in [2, 4, 8] {
        let (yn, gxn) = run_conv(threads);
        assert_eq!(yn.data(), y1.data(), "forward diverged at t={threads}");
        assert_eq!(gxn.data(), gx1.data(), "backward diverged at t={threads}");
    }
}

/// The `rtf_invert_128` perf workload: the parallel per-neuron sweep
/// must reconstruct the same pool in the same order.
fn run_rtf_invert(threads: usize) -> Vec<Vec<f32>> {
    parallel::with_threads(threads, || {
        let neurons = 128;
        let geometry = (3, 16, 16);
        let d = geometry.0 * geometry.1 * geometry.2;
        let attack = RtfAttack::new(neurons, 0.5, 0.15).expect("attack");
        let grad_w = Tensor::randn(&[neurons, d], &mut StdRng::seed_from_u64(16));
        let grad_b = Tensor::from_vec(
            (0..neurons)
                .map(|i| 1.0 + (neurons - i) as f32 * 0.01)
                .collect(),
            &[neurons],
        )
        .expect("bias");
        attack
            .reconstruct(&grad_w, &grad_b, geometry)
            .into_iter()
            .map(|img| img.data().to_vec())
            .collect()
    })
}

#[test]
fn rtf_inversion_sweep_is_bit_identical_across_thread_counts() {
    let serial = run_rtf_invert(1);
    assert!(!serial.is_empty());
    assert_eq!(run_rtf_invert(4), serial);
}
