//! Integration test for the paper's Table I claim: training with
//! OASIS does not majorly degrade accuracy (tiny-scale version; the
//! full sweep lives in `cargo run -p oasis-bench --bin table1_accuracy`).

use oasis::{Oasis, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_data::cifar_like_with;
use oasis_fl::{train_centralized, BatchStage, IdentityPreprocessor};
use oasis_nn::{Linear, Relu, Sequential, Sgd};
use rand::{rngs::StdRng, SeedableRng};

fn train_with(pre: &dyn BatchStage) -> f64 {
    let ds = cifar_like_with(5, 24, 10, 9);
    let mut rng = StdRng::seed_from_u64(0);
    let (train, test) = ds.split(0.8, &mut rng);
    let d = train.feature_dim();
    let mut model = Sequential::new();
    let mut mrng = StdRng::seed_from_u64(4);
    model.push(Linear::new(d, 40, &mut mrng));
    model.push(Relu::new());
    model.push(Linear::new(40, 5, &mut mrng));
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    train_centralized(&mut model, &mut opt, &train, &test, pre, 15, 8, 1)
        .expect("training")
        .test_accuracy
}

#[test]
fn oasis_training_keeps_accuracy_close_to_baseline() {
    let baseline = train_with(&IdentityPreprocessor);
    assert!(baseline > 0.5, "baseline should learn: {baseline}");
    for kind in [PolicyKind::MajorRotation, PolicyKind::MajorRotationShearing] {
        let defense = Oasis::new(OasisConfig::policy(kind));
        let acc = train_with(&defense);
        assert!(
            acc > baseline - 0.25,
            "policy {} dropped accuracy too far: {acc:.2} vs baseline {baseline:.2}",
            kind.abbrev()
        );
    }
}
