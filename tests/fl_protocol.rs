//! Integration tests for the FL protocol with defended clients.

use oasis::{defended_client, undefended_client, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_data::cifar_like_with;
use oasis_fl::{FlConfig, FlServer, ModelFactory};
use oasis_nn::{Linear, Relu, Sequential};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn factory(d: usize, classes: usize) -> ModelFactory {
    Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(13);
        let mut m = Sequential::new();
        m.push(Linear::new(d, 32, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(32, classes, &mut rng));
        m
    })
}

/// FL training converges with OASIS clients — the defense does not
/// break the protocol.
#[test]
fn defended_federation_converges() {
    let ds = cifar_like_with(4, 12, 10, 3);
    let d = ds.feature_dim();
    let mut rng = StdRng::seed_from_u64(0);
    let shards: Vec<_> = (0..3)
        .map(|i| {
            let (a, _) = ds.split(0.5, &mut rng);
            defended_client(i, a, OasisConfig::policy(PolicyKind::MajorRotation))
        })
        .collect();
    let cfg = FlConfig {
        learning_rate: 0.5,
        local_batch_size: 6,
        clients_per_round: 0,
    };
    let mut server = FlServer::new(factory(d, 4), cfg).unwrap();
    let reports = server.run(&shards, 25, 1).unwrap();
    let first: f32 = reports[..3].iter().map(|r| r.mean_loss).sum::<f32>() / 3.0;
    let last: f32 = reports[reports.len() - 3..]
        .iter()
        .map(|r| r.mean_loss)
        .sum::<f32>()
        / 3.0;
    assert!(last < first, "defended FL did not learn: {first} -> {last}");
}

/// Mixed federations (some defended, some not) run fine — OASIS is
/// client-local.
#[test]
fn mixed_federation_round_reports_all_participants() {
    let ds = cifar_like_with(3, 8, 10, 5);
    let d = ds.feature_dim();
    let mut rng = StdRng::seed_from_u64(0);
    let (a, b) = ds.split(0.5, &mut rng);
    let clients = vec![
        defended_client(0, a, OasisConfig::policy(PolicyKind::MajorRotationShearing)),
        undefended_client(1, b),
    ];
    let mut server = FlServer::new(factory(d, 3), FlConfig::default()).unwrap();
    let report = server
        .run_round(&clients, &mut StdRng::seed_from_u64(9))
        .unwrap();
    assert_eq!(report.participants, 2);
    assert!(report.mean_loss.is_finite());
}

/// The full pipeline is deterministic given seeds: two identical
/// servers produce identical round reports.
#[test]
fn protocol_is_deterministic() {
    let ds = cifar_like_with(3, 8, 8, 6);
    let d = ds.feature_dim();
    let mut rng = StdRng::seed_from_u64(0);
    let (a, _) = ds.split(0.8, &mut rng);
    let make_clients = || {
        vec![defended_client(
            0,
            a.clone(),
            OasisConfig::policy(PolicyKind::MajorRotation),
        )]
    };
    let run = |seed: u64| {
        let mut server = FlServer::new(factory(d, 3), FlConfig::default()).unwrap();
        let reports = server.run(&make_clients(), 3, seed).unwrap();
        reports.iter().map(|r| r.mean_loss).collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}
