//! The population-path bridge: at matched scale (population ==
//! resident client count, same seed, same wire) the cohort runner's
//! streaming rounds must reproduce the legacy wave-decode
//! `FlServer::run` **bit-exactly** — reports and final weights — and
//! stay bit-identical at 1, 2, and 4 threads. Plus the scale-side
//! guarantees the legacy path cannot express: bounded aggregation
//! memory at 100k clients and split-resumable keyed runs.

use std::sync::Arc;

use oasis_data::cifar_like_with;
use oasis_fl::{
    partition_iid, DefenseStack, FlConfig, FlServer, ModelFactory, RoundReport, WireConfig,
};
use oasis_nn::{flatten_params, Linear, Relu, Sequential};
use oasis_population::{CohortRunner, Population};
use oasis_tensor::parallel;
use oasis_wire::CodecSpec;
use rand::{rngs::StdRng, SeedableRng};

const CLASSES: usize = 3;
const SIDE: usize = 8;
const HIDDEN: usize = 12;

fn factory() -> ModelFactory {
    let d = SIDE * SIDE * 3;
    Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Sequential::new();
        m.push(Linear::new(d, HIDDEN, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(HIDDEN, CLASSES, &mut rng));
        m
    })
}

fn model_params() -> usize {
    SIDE * SIDE * 3 * HIDDEN + HIDDEN + HIDDEN * CLASSES + CLASSES
}

/// Runs both paths over the same protocol inputs and returns
/// (legacy reports, legacy weights, cohort reports, cohort weights).
fn both_paths(
    clients: usize,
    config: FlConfig,
    wire: fn() -> WireConfig,
    rounds: usize,
    seed: u64,
) -> (Vec<RoundReport>, Vec<f32>, Vec<RoundReport>, Vec<f32>) {
    let data = cifar_like_with(CLASSES, 8, SIDE, 3);
    let defense = Arc::new(DefenseStack::identity());

    let legacy_clients = partition_iid(
        &data,
        clients,
        Arc::clone(&defense),
        &mut StdRng::seed_from_u64(5),
    );
    let mut legacy = FlServer::new(factory(), config.clone()).unwrap();
    legacy.set_wire(wire());
    let legacy_reports = legacy.run(&legacy_clients, rounds, seed).unwrap();
    let legacy_weights = flatten_params(legacy.model_mut());

    let population = Population::iid(&data, clients, defense, &mut StdRng::seed_from_u64(5));
    let mut server = FlServer::new(factory(), config).unwrap();
    server.set_wire(wire());
    let mut runner = CohortRunner::new(server, population);
    // The bridge drives the runner with the exact rng stream
    // `FlServer::run` uses: one sequential rng across rounds.
    let mut rng = StdRng::seed_from_u64(seed);
    let cohort_reports: Vec<RoundReport> = (0..rounds)
        .map(|_| runner.run_round(&mut rng).unwrap().round_report)
        .collect();
    let cohort_weights = flatten_params(runner.server_mut().model_mut());
    (
        legacy_reports,
        legacy_weights,
        cohort_reports,
        cohort_weights,
    )
}

#[test]
fn streaming_rounds_match_legacy_bit_exactly() {
    let (legacy_reports, legacy_weights, cohort_reports, cohort_weights) =
        both_paths(4, FlConfig::default(), WireConfig::default, 3, 42);
    assert_eq!(legacy_reports, cohort_reports);
    assert_eq!(legacy_weights, cohort_weights);
}

#[test]
fn subset_selection_matches_legacy_bit_exactly() {
    let config = FlConfig {
        clients_per_round: 2,
        ..FlConfig::default()
    };
    let (legacy_reports, legacy_weights, cohort_reports, cohort_weights) =
        both_paths(6, config, WireConfig::default, 4, 7);
    assert_eq!(legacy_reports, cohort_reports);
    assert_eq!(legacy_weights, cohort_weights);
    assert!(cohort_reports.iter().all(|r| r.cohort == 2));
}

#[test]
fn lossy_compressed_wire_matches_legacy_bit_exactly() {
    fn lossy() -> WireConfig {
        WireConfig::new(CodecSpec::Q8, "sim:5,10,0.25".parse().unwrap())
    }
    let (legacy_reports, legacy_weights, cohort_reports, cohort_weights) =
        both_paths(6, FlConfig::default(), lossy, 5, 99);
    assert_eq!(legacy_reports, cohort_reports);
    assert_eq!(legacy_weights, cohort_weights);
    assert!(
        cohort_reports.iter().any(|r| r.dropped > 0),
        "a 25% drop rate should lose something over 5 rounds"
    );
}

#[test]
fn bridge_is_thread_count_invariant() {
    let run = || both_paths(5, FlConfig::default(), WireConfig::default, 2, 3);
    let (_, w1, r1, c1) = parallel::with_threads(1, run);
    let (_, w2, r2, c2) = parallel::with_threads(2, run);
    let (_, w4, r4, c4) = parallel::with_threads(4, run);
    assert_eq!(r1, r2);
    assert_eq!(r1, r4);
    assert_eq!(c1, c2);
    assert_eq!(c1, c4);
    assert_eq!(w1, w2);
    assert_eq!(w1, w4);
}

#[test]
fn zero_delivered_cohort_round_is_a_noop() {
    let data = cifar_like_with(CLASSES, 4, SIDE, 0);
    let pop = Population::iid(
        &data,
        32,
        Arc::new(DefenseStack::identity()),
        &mut StdRng::seed_from_u64(1),
    );
    let mut server = FlServer::new(
        factory(),
        FlConfig {
            clients_per_round: 8,
            ..FlConfig::default()
        },
    )
    .unwrap();
    // A deadline no update can meet: everything is a straggler.
    server.set_wire(WireConfig::new(
        CodecSpec::Raw,
        "sim:1000,1,0,1".parse().unwrap(),
    ));
    let before = flatten_params(server.model_mut());
    let mut runner = CohortRunner::new(server, pop);
    let report = runner.run_round(&mut StdRng::seed_from_u64(0)).unwrap();
    assert_eq!(report.round_report.participants, 0);
    assert_eq!(report.round_report.dropped, 8);
    assert_eq!(report.computed, 0, "no-op rounds must not hydrate anyone");
    assert_eq!(report.round_report.update_norm, 0.0);
    assert_eq!(flatten_params(runner.server_mut().model_mut()), before);
    assert_eq!(runner.server().round(), 1, "the protocol must not wedge");
}

#[test]
fn hundred_k_population_round_has_bounded_memory() {
    let data = cifar_like_with(CLASSES, 8, SIDE, 2);
    let pop = Population::iid(
        &data,
        100_000,
        Arc::new(DefenseStack::identity()),
        &mut StdRng::seed_from_u64(5),
    );
    let mut server = FlServer::new(
        factory(),
        FlConfig {
            clients_per_round: 64,
            ..FlConfig::default()
        },
    )
    .unwrap();
    server.set_wire(WireConfig::new(
        CodecSpec::Q8,
        "sim:10,20,0.1".parse().unwrap(),
    ));
    let mut runner = CohortRunner::new(server, pop);
    let report = runner.run_round(&mut StdRng::seed_from_u64(8)).unwrap();
    assert_eq!(report.population, 100_000);
    assert_eq!(report.round_report.cohort, 64);
    assert!(report.round_report.participants > 0);
    // The ISSUE's memory bound, asserted: decode + accumulator
    // scratch stays within 2× the model's own bytes no matter the
    // population.
    let model_bytes = 4 * model_params();
    assert!(
        report.peak_accum_bytes <= 2 * model_bytes,
        "aggregation scratch {} exceeds 2x model bytes {}",
        report.peak_accum_bytes,
        2 * model_bytes
    );
    // Frame scratch is O(threads), never O(cohort): even at the
    // maximum wave width the frames alive at once stay under the
    // cohort total.
    assert!(report.peak_frame_bytes <= parallel::num_threads().max(1) * (model_bytes + 64));
}

#[test]
fn keyed_runs_split_and_replay() {
    let data = cifar_like_with(CLASSES, 6, SIDE, 4);
    let make = || {
        let pop = Population::iid(
            &data,
            40,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(2),
        );
        let server = FlServer::new(
            factory(),
            FlConfig {
                clients_per_round: 8,
                ..FlConfig::default()
            },
        )
        .unwrap();
        CohortRunner::new(server, pop)
    };
    let mut whole = make();
    let all = whole.run(4, 1234).unwrap();
    let mut split = make();
    let head = split.run(2, 1234).unwrap();
    let tail = split.run(2, 1234).unwrap();
    let rejoined: Vec<_> = head.into_iter().chain(tail).collect();
    assert_eq!(all, rejoined);
    assert_eq!(
        flatten_params(whole.server_mut().model_mut()),
        flatten_params(split.server_mut().model_mut()),
    );
}
