//! Tracing is observation, not participation: running the exact same
//! workload with telemetry recording on and off produces bit-identical
//! weights, round reports, and scenario trial JSON — at any thread
//! count — while the traced run additionally emits a valid schema-v1
//! span trace whose per-round phase breakdown accounts for ≥ 90 % of
//! the round wall clock.
//!
//! Telemetry state is process-global, so every test here serializes
//! on one mutex and restores the enabled flag it found.

use std::sync::{Arc, Mutex, MutexGuard};

use oasis_data::cifar_like_with;
use oasis_fl::{partition_iid, DefenseStack, FlConfig, FlServer, ModelFactory, RoundReport};
use oasis_nn::{flatten_params, Linear, Relu, Sequential};
use oasis_scenario::{Scale, Scenario};
use oasis_tensor::parallel;
use rand::rngs::StdRng;
use rand::SeedableRng;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Serializes telemetry-touching tests and leaves global state clean.
fn telemetry_test() -> MutexGuard<'static, ()> {
    let guard = TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    oasis_telemetry::set_enabled(false);
    oasis_telemetry::reset();
    guard
}

/// The `thread_determinism` FL fixture: 4 clients, 3 rounds.
fn run_fl(threads: usize, traced: bool) -> (Vec<f32>, Vec<RoundReport>) {
    parallel::with_threads(threads, || {
        let was = oasis_telemetry::set_enabled(traced);
        let data = cifar_like_with(10, 8, 16, 0);
        let d = data.feature_dim();
        let factory: ModelFactory = Arc::new(move || {
            let mut rng = StdRng::seed_from_u64(12);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 64, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(64, 10, &mut rng));
            m
        });
        let clients = partition_iid(
            &data,
            4,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(13),
        );
        let mut server = FlServer::new(factory, FlConfig::default()).expect("server");
        let reports = server.run(&clients, 3, 14).expect("rounds");
        oasis_telemetry::set_enabled(was);
        (flatten_params(server.model_mut()), reports)
    })
}

/// The `thread_determinism` scenario fixture, returning the trial
/// JSON (every matched-PSNR bit pattern).
fn run_scenario(threads: usize, traced: bool) -> String {
    parallel::with_threads(threads, || {
        let was = oasis_telemetry::set_enabled(traced);
        let scenario = Scenario::builder()
            .workload("imagenette".parse().expect("workload"))
            .attack("rtf:48".parse().expect("attack"))
            .batch_size(4)
            .trials(2)
            .scale(Scale::Quick)
            .seed(0x5EED)
            .calibration(32)
            .build()
            .expect("scenario");
        let report = scenario.run().expect("run");
        oasis_telemetry::set_enabled(was);
        serde_json::to_string(&report.trials).expect("serialize")
    })
}

#[test]
fn traced_fl_run_is_bit_identical_to_untraced() {
    let _guard = telemetry_test();
    let (weights_off, reports_off) = run_fl(1, false);
    for threads in [1, 2, 4] {
        let (weights_on, reports_on) = run_fl(threads, true);
        oasis_telemetry::reset();
        assert_eq!(weights_on, weights_off, "weights diverged at t={threads}");
        // RoundReport equality deliberately ignores `timings`
        // (wall-clock measurement, not protocol outcome) — every
        // protocol field must match bit for bit.
        assert_eq!(reports_on, reports_off, "reports diverged at t={threads}");
        for (a, b) in reports_on.iter().zip(&reports_off) {
            assert_eq!(a.participants, b.participants);
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            assert_eq!(a.update_norm.to_bits(), b.update_norm.to_bits());
            assert!(a.timings.is_some(), "traced run must record timings");
            assert!(b.timings.is_none(), "untraced run must not");
        }
    }
}

#[test]
fn traced_scenario_trials_are_bit_identical_to_untraced() {
    let _guard = telemetry_test();
    let off = run_scenario(1, false);
    for threads in [1, 2, 4] {
        let on = run_scenario(threads, true);
        oasis_telemetry::reset();
        assert_eq!(on, off, "trial JSON diverged at t={threads}");
    }
}

#[test]
fn traced_round_phases_cover_ninety_percent_of_wall_clock() {
    let _guard = telemetry_test();
    let (_, reports) = run_fl(2, true);
    oasis_telemetry::reset();
    for report in &reports {
        let timings = report.timings.expect("traced run records timings");
        assert!(
            timings.coverage() >= 0.9,
            "phase breakdown covers {:.1} % of round {} (< 90 %): {:?}",
            timings.coverage() * 100.0,
            report.round,
            timings,
        );
        assert!(timings.total_ns > 0);
    }
}

#[test]
fn traced_run_emits_a_valid_nested_trace() {
    let _guard = telemetry_test();
    let _ = run_fl(2, true);
    let spans = oasis_telemetry::take_spans();
    let metrics = oasis_telemetry::metrics_snapshot();
    oasis_telemetry::reset();
    assert!(
        spans.iter().any(|s| s.name == "fl.round"),
        "round spans recorded"
    );
    assert!(
        spans.iter().any(|s| s.name.starts_with("tensor.matmul")),
        "kernel spans recorded"
    );
    assert!(
        metrics.counters.iter().any(|c| c.name == "fl.rounds"),
        "metrics recorded"
    );

    // The JSONL round-trips and satisfies every schema invariant:
    // meta line first, unique ids, (start_ns, id)-monotone file
    // order, parents present on the same thread and enclosing their
    // children's intervals.
    let text = oasis_telemetry::render_trace(&spans, &metrics);
    let trace = oasis_telemetry::read_trace_str(&text).expect("trace parses");
    oasis_telemetry::validate_trace(&trace).expect("trace invariants hold");
    assert_eq!(trace.schema_version, oasis_telemetry::TRACE_SCHEMA_VERSION);
    assert_eq!(trace.spans.len(), spans.len());

    // The self-time summary names every span family.
    let stats = oasis_telemetry::summarize(&spans);
    let table = oasis_telemetry::self_time_table(&stats);
    for name in ["fl.round", "fl.round.compute", "fl.round.step"] {
        assert!(table.contains(name), "summary table lists {name}");
    }
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = telemetry_test();
    let _ = run_fl(1, false);
    assert!(oasis_telemetry::take_spans().is_empty());
    // Instruments registered by earlier tests stay registered, but
    // nothing may have moved while disabled.
    let metrics = oasis_telemetry::metrics_snapshot();
    assert!(metrics.counters.iter().all(|c| c.value == 0));
    assert!(metrics.histograms.iter().all(|h| h.count == 0));
}
