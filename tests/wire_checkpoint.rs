//! Checkpoint round-trip: saving the global model in the wire format
//! at round *k*, reloading it into a fresh server, and continuing
//! training reproduces the uninterrupted trajectory bit-identically.

use oasis_fl::{partition_iid, DefenseStack, FlConfig, FlServer, ModelFactory};
use oasis_nn::{flatten_params, Linear, Relu, Sequential};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn setup() -> (ModelFactory, Vec<oasis_fl::FlClient>) {
    let data = oasis_data::cifar_like_with(4, 8, 8, 21);
    let d = data.feature_dim();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(17);
        let mut m = Sequential::new();
        m.push(Linear::new(d, 20, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(20, 4, &mut rng));
        m
    });
    let clients = partition_iid(
        &data,
        3,
        Arc::new(DefenseStack::identity()),
        &mut StdRng::seed_from_u64(2),
    );
    (factory, clients)
}

#[test]
fn resumed_training_is_bit_identical_to_uninterrupted() {
    let (factory, clients) = setup();
    let cfg = FlConfig {
        learning_rate: 0.3,
        local_batch_size: 6,
        clients_per_round: 2,
    };

    // Reference: 6 uninterrupted rounds from one rng stream.
    let mut reference = FlServer::new(Arc::clone(&factory), cfg.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..6 {
        reference.run_round(&clients, &mut rng).unwrap();
    }
    let reference_params = flatten_params(reference.model_mut());

    // Interrupted: 3 rounds, checkpoint to disk, resume in a fresh
    // server, 3 more rounds continuing the same rng stream.
    let mut first_half = FlServer::new(Arc::clone(&factory), cfg.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..3 {
        first_half.run_round(&clients, &mut rng).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("oasis_wire_resume_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round3.oasis");
    first_half.save_checkpoint(&path).unwrap();
    let saved_round = first_half.round();
    drop(first_half);

    let mut resumed = FlServer::new(factory, cfg).unwrap();
    resumed.restore_checkpoint(&path).unwrap();
    resumed.set_round(saved_round);
    assert_eq!(resumed.round(), 3);
    for _ in 0..3 {
        resumed.run_round(&clients, &mut rng).unwrap();
    }
    let resumed_params = flatten_params(resumed.model_mut());

    assert_eq!(reference_params.len(), resumed_params.len());
    for (i, (a, b)) in reference_params.iter().zip(&resumed_params).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "parameter {i} diverged after resume: {a} vs {b}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_rejects_wrong_architecture() {
    let (factory, _) = setup();
    let server = FlServer::new(factory, FlConfig::default()).unwrap();
    let dir = std::env::temp_dir().join(format!("oasis_wire_resume_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("arch.oasis");
    server.save_checkpoint(&path).unwrap();

    let other: ModelFactory = Arc::new(|| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Sequential::new();
        m.push(Linear::new(5, 2, &mut rng));
        m
    });
    let mut wrong = FlServer::new(other, FlConfig::default()).unwrap();
    assert!(wrong.restore_checkpoint(&path).is_err());
    let _ = std::fs::remove_file(&path);
}
