//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the source-level API of criterion 0.5 that the `benches/`
//! files use — groups, `BenchmarkId`, `Bencher::iter` /
//! `iter_batched`, the `criterion_group!` / `criterion_main!` macros —
//! but with a deliberately small measurement procedure: a short
//! warm-up, then a fixed number of timed samples whose median is
//! printed as one line per benchmark. No statistics, plots, or saved
//! baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is sized (accepted for API compatibility;
/// the measurement procedure does not differentiate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    samples: usize,
    median: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            median: Duration::ZERO,
            iters_per_sample: 1,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: aim for samples of ≥ ~1 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                // Sub-nanosecond routines truncate to zero under
                // Duration division; floor at 1 ns per iteration.
                let per_iter = (start.elapsed().as_nanos() / u128::from(iters)).max(1);
                Duration::from_nanos(per_iter as u64)
            })
            .collect();
        times.sort_unstable();
        self.median = times[times.len() / 2];
        self.iters_per_sample = iters;
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.median = times[times.len() / 2];
        self.iters_per_sample = 1;
    }
}

fn print_result(label: &str, bencher: &Bencher) {
    println!(
        "{label:<52} median {:>12?}  ({} samples × {} iters)",
        bencher.median, bencher.samples, bencher.iters_per_sample
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, R>(&mut self, id: BenchmarkId, input: &I, mut routine: R)
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        print_result(&format!("{}/{}", self.name, id), &bencher);
    }

    /// Benchmarks a routine with no explicit input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut routine: R) {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        print_result(&format!("{}/{}", self.name, id), &bencher);
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 11 }
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: R) {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        print_result(name, &bencher);
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// Declares a group function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..black_box(10_000u64)).sum::<u64>());
        assert!(b.median > Duration::ZERO);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut b = Bencher::new(3);
        let mut produced = 0u32;
        b.iter_batched(
            || {
                produced += 1;
                vec![1u8; 64]
            },
            |v| v.iter().map(|&x| x as u32).sum::<u32>(),
            BatchSize::SmallInput,
        );
        assert_eq!(produced, 3);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
