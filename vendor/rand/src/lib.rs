//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of rand 0.8's API this workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range`), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The stream differs from upstream rand's ChaCha12 `StdRng`, but all
//! determinism properties hold: the same seed always produces the
//! same sequence, on every platform.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream rand's `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution): floats in `[0, 1)`, integers over all values.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1), as upstream rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable over a bounded interval.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draws from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift mapping (bias negligible at these
                // span sizes; determinism is what matters here).
                let idx = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + idx as i128) as $t
            }

            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let idx = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + idx as i128) as $t
            }
        }
    )*};
}

int_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }

            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Items most callers want in scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_honors_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input in order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng).is_some());
    }
}
