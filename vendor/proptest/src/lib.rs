//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Provides the subset of proptest 1.x used by this workspace's
//! property tests: the [`proptest!`] test macro, range / tuple / vec
//! strategies, `prop_map` / `prop_flat_map` / `boxed` combinators,
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from upstream: a fixed number of random cases per test
//! (default 32, override with the `PROPTEST_CASES` environment
//! variable), deterministic seeding derived from the test name, and
//! **no shrinking** of failing cases.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| inner.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen)(rng)
    }
}

/// A uniformly chosen alternative (see [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates the union of `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A constant strategy (upstream `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Sizes accepted by [`vec()`]: an exact `usize` or a range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases each `proptest!` test runs (default 32; override
/// with `PROPTEST_CASES`).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// Deterministic per-test RNG: seeded from the test name and case
/// index so runs are reproducible without a persisted seed file.
pub fn test_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests: each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` running [`case_count`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::case_count() {
                    let mut __rng = $crate::test_rng(stringify!($name), __case as u64);
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a property within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The uniform choice among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Items most property tests want in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..=4).prop_flat_map(|n| collection::vec(0.0f64..1.0, n)),
            doubled in (1u32..5).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn oneof_picks_only_given_ranges(x in prop_oneof![-5.0f32..-1.0, 1.0f32..5.0]) {
            prop_assert!((-5.0..-1.0).contains(&x) || (1.0..5.0).contains(&x));
        }

        #[test]
        fn tuple_and_pattern_args((a, b) in (0u8..4, 10u8..14)) {
            prop_assert!(a < 4 && (10..14).contains(&b));
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
