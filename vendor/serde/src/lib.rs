//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Unlike upstream serde's visitor architecture, this stand-in models
//! serialized data as an owned JSON-style [`Value`] tree:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`]
//! rebuilds it from one. The sibling `serde_json` crate prints and
//! parses the `Value` tree as JSON text, and `serde_derive` provides
//! `#[derive(Serialize, Deserialize)]` for structs and enums.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A serialized value — the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An ordered key→value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer variant.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer variant.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// The standard "expected X, found Y-ish value" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::msg(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a serialized value.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a serialized value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `value`'s shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| Error::expected(stringify!($t), value))?;
                <$t>::try_from(v).map_err(|_| Error::msg(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| Error::expected(stringify!($t), value))?;
                <$t>::try_from(v).map_err(|_| Error::msg(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::expected("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::expected("f32", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", value)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected {expected}-tuple, found {} items", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::expected("tuple array", value)),
                }
            }
        }
    )+};
}

tuple_impls!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&n.to_value()).unwrap(), n);
        let t = (1usize, -2i32, 0.5f64);
        assert_eq!(<(usize, i32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(bool::from_value(&Value::Str("no".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Null).is_err());
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.get("a"), Some(&Value::U64(1)));
        assert_eq!(obj.get("b"), None);
    }
}
