//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the sibling `serde` stand-in's `Value` data model, with a
//! hand-rolled token parser (no `syn`/`quote` in this environment).
//!
//! Supported shapes: named-field structs, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants. The only
//! field attribute honored is `#[serde(default)]`. Generic types are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field.
struct Field {
    name: String,
    default: bool,
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// True if the bracketed attribute body is `serde(...)` containing a
/// bare `default`.
fn is_serde_default(body: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Skips leading `#[...]` attributes; returns whether any of them was
/// `#[serde(default)]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut default = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                default |= is_serde_default(&g.stream());
                *pos += 2;
            }
            _ => break,
        }
    }
    default
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`, `pub(super)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(&tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Consumes one type expression: everything up to a `,` at
/// angle-bracket depth zero. Handles `->` so return arrows never
/// unbalance the depth counter.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) => match p.as_char() {
                ',' if depth == 0 => return,
                '<' => {
                    depth += 1;
                    *pos += 1;
                }
                '>' => {
                    depth -= 1;
                    *pos += 1;
                }
                '-' if matches!(tokens.get(*pos + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>') =>
                {
                    *pos += 2;
                }
                _ => *pos += 1,
            },
            _ => *pos += 1,
        }
    }
}

/// Parses the contents of a named-field brace group.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let default = skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut pos);
        // Skip the separating comma, if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Counts top-level fields of a tuple group `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        // Each element may start with attributes and visibility.
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

/// Parses the contents of an enum brace group.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                pos += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                pos += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` (not used by this repo,
        // but cheap to tolerate) and the separating comma.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            skip_type(&tokens, &mut pos);
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected type name".into()),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the vendored serde_derive"
        ));
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => return Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Input { name, shape })
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "Self::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "Self::{vn}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "Self::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Generates the expression rebuilding one set of named fields from
/// the object value expression `src`.
fn named_fields_ctor(type_path: &str, fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::msg(\"missing field `{n}` in {type_path}\"))"
                )
            };
            format!(
                "{n}: match {src}.get(\"{n}\") {{ ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, ::std::option::Option::None => {missing} }}"
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let ctor = named_fields_ctor(name, fields, "__v");
            format!(
                "match __v {{\n\
                     ::serde::Value::Object(_) => ::std::result::Result::Ok({ctor}),\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"object for {name}\", __v)),\n\
                 }}"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} => ::std::result::Result::Ok({name}({items})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}\", __v)),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("{{ let _ = __v; ::std::result::Result::Ok({name}) }}"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {n} => ::std::result::Result::Ok(Self::{vn}({items})),\n\
                                     _ => ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}::{vn}\", __inner)),\n\
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let ctor = named_fields_ctor(&format!("Self::{vn}"), fields, "__inner");
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Object(_) => ::std::result::Result::Ok({ctor}),\n\
                                     _ => ::std::result::Result::Err(::serde::Error::expected(\"object for {name}::{vn}\", __inner)),\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"string or single-key object for {name}\", __v)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen failed: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen failed: {e}"))),
        Err(e) => compile_error(&e),
    }
}
