//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Prints and parses the vendored `serde`'s [`Value`] tree as JSON
//! text. Non-finite floats serialize as `null`, matching upstream
//! serde_json's behavior.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `1.0f64` formats as "1"; keep it a JSON number either way
        // (both parse back to F64 only through `.0`, so mark floats).
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => push_f64(out, *v),
        Value::Str(s) => push_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                push_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.error("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.error("bad number"))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![(
            "list".into(),
            Value::Array(vec![Value::I64(-2), Value::Bool(true)]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.25f64, -0.5, 3.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
