//! Property tests for the augmentation transforms — these check the
//! exact invariants the paper's defense argument relies on.

use oasis_augment::{AugmentationPolicy, PolicyKind, Transform};
use oasis_image::Image;
use proptest::prelude::*;

/// Strategy: a square image with side in [4, 16] and arbitrary unit
/// pixel values.
fn square_image() -> impl Strategy<Value = Image> {
    (4usize..=16).prop_flat_map(|side| {
        proptest::collection::vec(0.0f32..=1.0, 3 * side * side)
            .prop_map(move |v| Image::from_vec(3, side, side, v).unwrap())
    })
}

proptest! {
    // The load-bearing invariant for the RTF defense: major rotation
    // preserves the pixel-mean measurement *bit for bit* (paper §IV-B:
    // "it does not change the average of pixel values").
    #[test]
    fn rot90_preserves_sum_exactly(img in square_image(), q in 0u8..4) {
        let r = img.rotate90(q);
        let sum_a: f32 = img.data().iter().sum();
        let mut sorted_a: Vec<f32> = img.data().to_vec();
        let mut sorted_b: Vec<f32> = r.data().to_vec();
        sorted_a.sort_by(f32::total_cmp);
        sorted_b.sort_by(f32::total_cmp);
        prop_assert_eq!(sorted_a, sorted_b);
        // Permutation ⇒ identical multiset ⇒ mean preserved up to
        // summation order; check the measurement is essentially equal.
        let sum_b: f32 = r.data().iter().sum();
        prop_assert!((sum_a - sum_b).abs() <= 1e-3);
    }

    #[test]
    fn flips_are_involutions(img in square_image()) {
        prop_assert_eq!(img.flip_horizontal().flip_horizontal(), img.clone());
        prop_assert_eq!(img.flip_vertical().flip_vertical(), img);
    }

    #[test]
    fn flips_are_permutations(img in square_image()) {
        for flipped in [img.flip_horizontal(), img.flip_vertical()] {
            let mut a: Vec<f32> = img.data().to_vec();
            let mut b: Vec<f32> = flipped.data().to_vec();
            a.sort_by(f32::total_cmp);
            b.sort_by(f32::total_cmp);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn four_quarter_turns_is_identity(img in square_image()) {
        let r = img.rotate90(1).rotate90(1).rotate90(1).rotate90(1);
        prop_assert_eq!(r, img);
    }

    #[test]
    fn hflip_vflip_commute_into_rot180(img in square_image()) {
        let a = img.flip_horizontal().flip_vertical();
        let b = img.rotate90(2);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn expansion_factor_matches_expand_len(img in square_image()) {
        for kind in PolicyKind::all() {
            let p = kind.policy();
            prop_assert_eq!(p.expand(&img).len() + 1, p.expansion_factor());
        }
    }

    #[test]
    fn transforms_preserve_dimensions(img in square_image()) {
        for kind in PolicyKind::all() {
            for out in kind.policy().expand(&img) {
                prop_assert_eq!(out.dims(), img.dims());
            }
        }
    }

    #[test]
    fn shear_zero_is_identity(img in square_image()) {
        let s = Transform::shear(0.0).apply(&img);
        for (a, b) in img.data().iter().zip(s.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn rotation_warp_stays_in_unit_range(img in square_image(), deg in -180.0f32..180.0) {
        let r = Transform::Rotation { degrees: deg, fill: Default::default() }.apply(&img);
        for &v in r.data() {
            prop_assert!((-1e-4..=1.0 + 1e-4).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn every_policy_preserves_the_measurement(img in square_image()) {
        // The defense's load-bearing property for the RTF attack: all
        // seven policies keep the pixel-mean stable within float
        // rounding (exact for permutations, one rounding step for the
        // MeanPreserving-wrapped warps).
        for kind in PolicyKind::all() {
            let p = kind.policy();
            for out in p.expand(&img) {
                prop_assert!((out.mean() - img.mean()).abs() < 1e-5,
                    "{} changed measurement by {}", kind.abbrev(), (out.mean() - img.mean()).abs());
            }
        }
    }

    #[test]
    fn mean_preserving_wrapper_is_tight(img in square_image(), deg in -90.0f32..90.0) {
        let t = Transform::Rotation { degrees: deg, fill: Default::default() }.mean_preserving();
        let out = t.apply(&img);
        prop_assert!((out.mean() - img.mean()).abs() < 1e-6);
    }
}

/// The AugmentationPolicy constructors are pure: calling twice gives
/// identical policies.
#[test]
fn policies_are_deterministic() {
    assert_eq!(
        AugmentationPolicy::major_rotation(),
        AugmentationPolicy::major_rotation()
    );
    assert_eq!(
        AugmentationPolicy::major_rotation_shearing(),
        AugmentationPolicy::major_rotation_shearing()
    );
}
