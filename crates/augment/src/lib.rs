//! # oasis-augment
//!
//! Image augmentation transforms and the named augmentation policies
//! of the OASIS defense (paper §II-B and §IV-A).
//!
//! A [`Transform`] maps one image to one image (rotation, flip,
//! shear, or a composition). An [`AugmentationPolicy`] is the suite of
//! transforms that turns a training sample `x_t` into its augmented
//! set `X′_t` (paper Eq. 7); [`PolicyKind`] enumerates the seven
//! configurations the paper evaluates.
//!
//! ```
//! use oasis_augment::{AugmentationPolicy, PolicyKind};
//! use oasis_image::Image;
//!
//! let policy = PolicyKind::MajorRotationShearing.policy();
//! let x = Image::new(3, 32, 32);
//! let augmented = policy.expand(&x);
//! assert_eq!(augmented.len(), 6); // 3 rotations + 3 shears
//! ```

#![warn(missing_docs)]

mod policy;
mod transform;

pub use policy::{AugmentationPolicy, ParsePolicyError, PolicyKind};
pub use transform::Transform;
