//! Augmentation policies — the named transform suites evaluated in the
//! paper (§IV-A "OASIS Implementation").

use oasis_image::Image;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Transform;

/// The named augmentation policies from the paper's evaluation.
///
/// Abbreviations follow the figure legends: WO = without OASIS,
/// MR = major rotation, mR = minor rotation, SH = shearing,
/// HFlip/VFlip = horizontal/vertical flip, MrSh = MR + SH.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No augmentation (the undefended baseline).
    Without,
    /// Rotations by 90°, 180°, 270° (paper: the strongest vs RTF).
    MajorRotation,
    /// Rotations by 30°, 45°, 60°.
    MinorRotation,
    /// Shears with factors 0.55, 1.0, 0.9.
    Shearing,
    /// Horizontal flip.
    HorizontalFlip,
    /// Vertical flip.
    VerticalFlip,
    /// Major rotation + shearing combined (paper: needed vs CAH).
    MajorRotationShearing,
}

impl PolicyKind {
    /// All seven policy kinds, in the order the paper's figures use.
    pub fn all() -> [PolicyKind; 7] {
        [
            PolicyKind::Without,
            PolicyKind::MajorRotation,
            PolicyKind::MinorRotation,
            PolicyKind::Shearing,
            PolicyKind::HorizontalFlip,
            PolicyKind::VerticalFlip,
            PolicyKind::MajorRotationShearing,
        ]
    }

    /// The figure-legend abbreviation ("WO", "MR", "mR", "SH",
    /// "HFlip", "VFlip", "MR+SH").
    pub fn abbrev(&self) -> &'static str {
        match self {
            PolicyKind::Without => "WO",
            PolicyKind::MajorRotation => "MR",
            PolicyKind::MinorRotation => "mR",
            PolicyKind::Shearing => "SH",
            PolicyKind::HorizontalFlip => "HFlip",
            PolicyKind::VerticalFlip => "VFlip",
            PolicyKind::MajorRotationShearing => "MR+SH",
        }
    }

    /// Builds the policy with the paper's exact transform parameters.
    pub fn policy(&self) -> AugmentationPolicy {
        match self {
            PolicyKind::Without => AugmentationPolicy::none(),
            PolicyKind::MajorRotation => AugmentationPolicy::major_rotation(),
            PolicyKind::MinorRotation => AugmentationPolicy::minor_rotation(),
            PolicyKind::Shearing => AugmentationPolicy::shearing(),
            PolicyKind::HorizontalFlip => AugmentationPolicy::horizontal_flip(),
            PolicyKind::VerticalFlip => AugmentationPolicy::vertical_flip(),
            PolicyKind::MajorRotationShearing => AugmentationPolicy::major_rotation_shearing(),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Error returned when parsing a [`PolicyKind`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy `{}` (expected one of WO, MR, mR, SH, HFlip, VFlip, MR+SH)",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl std::str::FromStr for PolicyKind {
    type Err = ParsePolicyError;

    /// Parses the figure-legend abbreviation ([`PolicyKind::abbrev`]).
    ///
    /// `MR` and `mR` differ only by case, so abbreviations match
    /// case-sensitively; the spelled-out names (`without`,
    /// `major-rotation`, `minor-rotation`, `shearing`, `hflip`,
    /// `vflip`, `major-rotation-shearing`) match case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(kind) = PolicyKind::all().into_iter().find(|k| k.abbrev() == s) {
            return Ok(kind);
        }
        match s.to_ascii_lowercase().as_str() {
            "without" => Ok(PolicyKind::Without),
            "major-rotation" => Ok(PolicyKind::MajorRotation),
            "minor-rotation" => Ok(PolicyKind::MinorRotation),
            "shearing" => Ok(PolicyKind::Shearing),
            "hflip" | "horizontal-flip" => Ok(PolicyKind::HorizontalFlip),
            "vflip" | "vertical-flip" => Ok(PolicyKind::VerticalFlip),
            "major-rotation-shearing" => Ok(PolicyKind::MajorRotationShearing),
            _ => Err(ParsePolicyError {
                input: s.to_owned(),
            }),
        }
    }
}

/// A set of transforms that, applied to a training sample `x_t`,
/// produces the augmentation set `X′_t` of paper Eq. 7.
///
/// ```
/// use oasis_augment::AugmentationPolicy;
/// use oasis_image::Image;
///
/// let policy = AugmentationPolicy::major_rotation();
/// let img = Image::new(3, 16, 16);
/// let augmented = policy.expand(&img);
/// assert_eq!(augmented.len(), 3); // 90°, 180°, 270°
/// assert_eq!(policy.expansion_factor(), 4); // original + 3
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AugmentationPolicy {
    name: String,
    transforms: Vec<Transform>,
}

impl AugmentationPolicy {
    /// A policy from an explicit transform list.
    pub fn new(name: impl Into<String>, transforms: Vec<Transform>) -> Self {
        AugmentationPolicy {
            name: name.into(),
            transforms,
        }
    }

    /// The empty policy (no augmentation; `X′_t = ∅`).
    pub fn none() -> Self {
        Self::new("WO", Vec::new())
    }

    /// Major rotation: 90°, 180°, 270° (paper §IV-A).
    pub fn major_rotation() -> Self {
        Self::new(
            "MR",
            vec![
                Transform::MajorRotation { quarter_turns: 1 },
                Transform::MajorRotation { quarter_turns: 2 },
                Transform::MajorRotation { quarter_turns: 3 },
            ],
        )
    }

    /// Minor rotation: 30°, 45°, 60° (paper §IV-A), reflection-padded
    /// and mean-preserving.
    ///
    /// The interpolated rotations use reflection padding (so the
    /// augmented copies keep the source's pixel statistics and behave
    /// like calibration data under trap-weight neurons) and are
    /// wrapped in [`Transform::MeanPreserving`] so the RTF measurement
    /// collides (see that variant's docs).
    pub fn minor_rotation() -> Self {
        Self::new(
            "mR",
            vec![
                Transform::rotation_reflect(30.0).mean_preserving(),
                Transform::rotation_reflect(45.0).mean_preserving(),
                Transform::rotation_reflect(60.0).mean_preserving(),
            ],
        )
    }

    /// Shearing with factors 0.55, 1.0, 0.9 (paper §IV-A),
    /// reflection-padded and mean-preserving (see
    /// [`AugmentationPolicy::minor_rotation`]).
    pub fn shearing() -> Self {
        Self::new(
            "SH",
            vec![
                Transform::shear_reflect(0.55).mean_preserving(),
                Transform::shear_reflect(1.0).mean_preserving(),
                Transform::shear_reflect(0.9).mean_preserving(),
            ],
        )
    }

    /// Horizontal flip only.
    pub fn horizontal_flip() -> Self {
        Self::new("HFlip", vec![Transform::FlipHorizontal])
    }

    /// Vertical flip only.
    pub fn vertical_flip() -> Self {
        Self::new("VFlip", vec![Transform::FlipVertical])
    }

    /// Integration of major rotation and shearing — the combination
    /// the paper found necessary to defeat the CAH attack (§IV-B).
    pub fn major_rotation_shearing() -> Self {
        let mut transforms = AugmentationPolicy::major_rotation().transforms;
        transforms.extend(AugmentationPolicy::shearing().transforms);
        Self::new("MR+SH", transforms)
    }

    /// The policy's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transforms making up `X′_t`.
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Applies every transform to `image`, producing `X′_t`.
    pub fn expand(&self, image: &Image) -> Vec<Image> {
        self.transforms.iter().map(|t| t.apply(image)).collect()
    }

    /// `|{x_t} ∪ X′_t|` — how many images a single sample becomes.
    pub fn expansion_factor(&self) -> usize {
        self.transforms.len() + 1
    }

    /// Whether every transform preserves the pixel-mean measurement
    /// exactly (see [`Transform::is_mean_preserving`]).
    pub fn is_mean_preserving(&self) -> bool {
        self.transforms.iter().all(Transform::is_mean_preserving)
    }
}

impl fmt::Display for AugmentationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policies_have_expected_sizes() {
        assert_eq!(AugmentationPolicy::none().expansion_factor(), 1);
        assert_eq!(AugmentationPolicy::major_rotation().expansion_factor(), 4);
        assert_eq!(AugmentationPolicy::minor_rotation().expansion_factor(), 4);
        assert_eq!(AugmentationPolicy::shearing().expansion_factor(), 4);
        assert_eq!(AugmentationPolicy::horizontal_flip().expansion_factor(), 2);
        assert_eq!(AugmentationPolicy::vertical_flip().expansion_factor(), 2);
        assert_eq!(
            AugmentationPolicy::major_rotation_shearing().expansion_factor(),
            7
        );
    }

    #[test]
    fn all_policies_preserve_the_measurement() {
        // MR and the flips are exact pixel permutations; mR and SH are
        // wrapped in MeanPreserving — every OASIS policy keeps the
        // RTF measurement stable (paper §IV-B).
        for kind in PolicyKind::all() {
            assert!(
                kind.policy().is_mean_preserving(),
                "policy {} must preserve the measurement",
                kind.abbrev()
            );
        }
    }

    #[test]
    fn expand_produces_distinct_images() {
        let mut img = Image::new(1, 8, 8);
        img.set(0, 0, 0, 1.0).unwrap();
        let out = AugmentationPolicy::major_rotation().expand(&img);
        assert_eq!(out.len(), 3);
        assert_ne!(out[0], out[1]);
        assert_ne!(out[1], out[2]);
        for o in &out {
            assert_ne!(*o, img);
        }
    }

    #[test]
    fn policy_kind_round_trip() {
        for kind in PolicyKind::all() {
            let p = kind.policy();
            assert_eq!(p.name(), kind.abbrev());
        }
    }

    #[test]
    fn kind_parses_back_from_abbrev() {
        for kind in PolicyKind::all() {
            assert_eq!(kind.abbrev().parse::<PolicyKind>().unwrap(), kind);
        }
        assert_eq!(
            "major-rotation".parse::<PolicyKind>().unwrap(),
            PolicyKind::MajorRotation
        );
        assert_eq!(
            "mr".parse::<PolicyKind>(),
            Err(ParsePolicyError { input: "mr".into() })
        );
        assert!("bogus".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn kind_abbrevs_are_unique() {
        let mut names: Vec<_> = PolicyKind::all().iter().map(|k| k.abbrev()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn shearing_uses_paper_factors() {
        let p = AugmentationPolicy::shearing();
        let factors: Vec<f32> = p
            .transforms()
            .iter()
            .map(|t| match t {
                Transform::MeanPreserving(inner) => match inner.as_ref() {
                    Transform::Shear { factor, .. } => *factor,
                    other => panic!("expected shear, got {other}"),
                },
                other => panic!("expected mean-preserving shear, got {other}"),
            })
            .collect();
        assert_eq!(factors, vec![0.55, 1.0, 0.9]);
    }

    #[test]
    fn minor_rotation_uses_paper_angles() {
        let p = AugmentationPolicy::minor_rotation();
        let degs: Vec<f32> = p
            .transforms()
            .iter()
            .map(|t| match t {
                Transform::MeanPreserving(inner) => match inner.as_ref() {
                    Transform::Rotation { degrees, .. } => *degrees,
                    other => panic!("expected rotation, got {other}"),
                },
                other => panic!("expected mean-preserving rotation, got {other}"),
            })
            .collect();
        assert_eq!(degs, vec![30.0, 45.0, 60.0]);
    }
}
