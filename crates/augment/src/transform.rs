//! The image transformations used by OASIS (paper §II-B, Eq. 2–5).

use oasis_image::{AffineMap, FillMode, Image};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single label-preserving image transformation.
///
/// Major rotations and flips are exact pixel permutations (they
/// preserve the pixel-mean measurement *exactly*, which is what makes
/// them effective against the RTF attack — paper §IV-B); arbitrary
/// rotations and shears go through bilinear warping with zero fill.
///
/// ```
/// use oasis_augment::Transform;
/// use oasis_image::Image;
///
/// let img = Image::new(3, 8, 8);
/// let rotated = Transform::MajorRotation { quarter_turns: 1 }.apply(&img);
/// assert_eq!(rotated.dims(), (3, 8, 8));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Transform {
    /// Exact rotation by `quarter_turns · 90°` counter-clockwise.
    MajorRotation {
        /// Number of 90° turns, 1–3.
        quarter_turns: u8,
    },
    /// Interpolated rotation by an arbitrary angle in degrees
    /// (paper Eq. 2). Angles < 90° are the paper's "minor rotations".
    Rotation {
        /// Rotation angle in degrees, counter-clockwise.
        degrees: f32,
        /// Out-of-frame fill behaviour (defaults to zero fill).
        #[serde(default)]
        fill: FillMode,
    },
    /// Reflection across the vertical axis (paper Eq. 3).
    FlipHorizontal,
    /// Reflection across the horizontal axis (paper Eq. 4).
    FlipVertical,
    /// Horizontal shear `I'(i, j) = I(i + µj, j)` (paper Eq. 5).
    Shear {
        /// Shear factor µ controlling the shearing intensity.
        factor: f32,
        /// Out-of-frame fill behaviour (defaults to zero fill).
        #[serde(default)]
        fill: FillMode,
    },
    /// Sequential composition: apply each transform in order.
    Compose(Vec<Transform>),
    /// Applies the inner transform, then shifts all pixels by a
    /// constant so the output's mean equals the input's mean.
    ///
    /// Interpolated warps with zero fill change the pixel-mean
    /// "measurement" that the RTF attack bins on; the paper's §IV-B
    /// identifies measurement preservation as the property that makes
    /// a transform effective against RTF ("it does not change the
    /// average of pixel values"). Wrapping a rotation or shear in
    /// `MeanPreserving` restores that property for the defense's
    /// interpolated transforms. The shift may push a few values
    /// slightly outside `[0, 1]`; training consumes raw floats, and
    /// display paths clamp.
    MeanPreserving(Box<Transform>),
}

impl Transform {
    /// Applies the transformation, producing a new image of the same
    /// dimensions (square images assumed for major rotation; for
    /// non-square inputs `MajorRotation` of odd quarter turns swaps
    /// height and width).
    pub fn apply(&self, img: &Image) -> Image {
        match self {
            Transform::MajorRotation { quarter_turns } => img.rotate90(*quarter_turns),
            Transform::Rotation { degrees, fill } => {
                img.warp_affine_with(&AffineMap::rotation(*degrees), *fill)
            }
            Transform::FlipHorizontal => img.flip_horizontal(),
            Transform::FlipVertical => img.flip_vertical(),
            Transform::Shear { factor, fill } => {
                img.warp_affine_with(&AffineMap::shear_x(*factor), *fill)
            }
            Transform::Compose(list) => {
                let mut out = img.clone();
                for t in list {
                    out = t.apply(&out);
                }
                out
            }
            Transform::MeanPreserving(inner) => {
                let mut out = inner.apply(img);
                let delta = img.mean() - out.mean();
                for v in out.data_mut() {
                    *v += delta;
                }
                out
            }
        }
    }

    /// Whether this transform preserves the pixel-mean measurement
    /// (exactly for pixel permutations, up to one float rounding step
    /// for [`Transform::MeanPreserving`]).
    pub fn is_mean_preserving(&self) -> bool {
        match self {
            Transform::MajorRotation { .. }
            | Transform::FlipHorizontal
            | Transform::FlipVertical => true,
            Transform::Rotation { .. } | Transform::Shear { .. } => false,
            Transform::Compose(list) => list.iter().all(Transform::is_mean_preserving),
            Transform::MeanPreserving(_) => true,
        }
    }

    /// Wraps `self` in a [`Transform::MeanPreserving`] shell.
    pub fn mean_preserving(self) -> Transform {
        Transform::MeanPreserving(Box::new(self))
    }

    /// Zero-fill rotation by `degrees` (torchvision's default fill).
    pub fn rotation(degrees: f32) -> Transform {
        Transform::Rotation {
            degrees,
            fill: FillMode::Zero,
        }
    }

    /// Reflection-padded rotation by `degrees` — the fill the OASIS
    /// policies use (see [`FillMode::Reflect`]).
    pub fn rotation_reflect(degrees: f32) -> Transform {
        Transform::Rotation {
            degrees,
            fill: FillMode::Reflect,
        }
    }

    /// Zero-fill horizontal shear with factor `factor`.
    pub fn shear(factor: f32) -> Transform {
        Transform::Shear {
            factor,
            fill: FillMode::Zero,
        }
    }

    /// Reflection-padded horizontal shear with factor `factor`.
    pub fn shear_reflect(factor: f32) -> Transform {
        Transform::Shear {
            factor,
            fill: FillMode::Reflect,
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::MajorRotation { quarter_turns } => {
                write!(f, "rot{}", *quarter_turns as u32 * 90)
            }
            Transform::Rotation { degrees, .. } => write!(f, "rot{degrees:.0}"),
            Transform::FlipHorizontal => write!(f, "hflip"),
            Transform::FlipVertical => write!(f, "vflip"),
            Transform::Shear { factor, .. } => write!(f, "shear{factor:.2}"),
            Transform::Compose(list) => {
                for (i, t) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, "∘")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Transform::MeanPreserving(inner) => write!(f, "mp({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        let mut img = Image::new(1, 8, 8);
        for y in 0..8 {
            for x in 0..8 {
                img.set(0, y, x, ((y * 3 + x * 5) % 11) as f32 / 11.0)
                    .unwrap();
            }
        }
        img
    }

    #[test]
    fn major_rotation_is_exact_permutation() {
        let img = sample();
        let r = Transform::MajorRotation { quarter_turns: 1 }.apply(&img);
        let mut a: Vec<_> = img.data().to_vec();
        let mut b: Vec<_> = r.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_preserving_classification() {
        assert!(Transform::MajorRotation { quarter_turns: 2 }.is_mean_preserving());
        assert!(Transform::FlipHorizontal.is_mean_preserving());
        assert!(!Transform::rotation(30.0).is_mean_preserving());
        assert!(!Transform::shear(0.5).is_mean_preserving());
        assert!(
            Transform::Compose(vec![Transform::FlipHorizontal, Transform::FlipVertical])
                .is_mean_preserving()
        );
        assert!(
            !Transform::Compose(vec![Transform::FlipHorizontal, Transform::shear(0.5)])
                .is_mean_preserving()
        );
    }

    #[test]
    fn compose_applies_in_order() {
        let img = sample();
        let composed = Transform::Compose(vec![Transform::FlipHorizontal, Transform::FlipVertical])
            .apply(&img);
        let manual = img.flip_horizontal().flip_vertical();
        assert_eq!(composed, manual);
    }

    #[test]
    fn rotation_by_zero_is_identity_up_to_interpolation() {
        let img = sample();
        let r = Transform::rotation(0.0).apply(&img);
        for (a, b) in img.data().iter().zip(r.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(
            Transform::MajorRotation { quarter_turns: 3 }.to_string(),
            "rot270"
        );
        assert_eq!(Transform::FlipHorizontal.to_string(), "hflip");
        assert_eq!(Transform::shear(0.55).to_string(), "shear0.55");
        assert_eq!(
            Transform::Compose(vec![
                Transform::MajorRotation { quarter_turns: 1 },
                Transform::shear(1.0)
            ])
            .to_string(),
            "rot90∘shear1.00"
        );
    }

    #[test]
    fn shear_preserves_dimensions() {
        let img = sample();
        let s = Transform::shear(1.0).apply(&img);
        assert_eq!(s.dims(), img.dims());
    }
}
