//! Training batches.

use oasis_image::Image;
use oasis_tensor::Tensor;

use crate::LabeledImage;

/// A batch of images with labels — the user's local training data `D`
/// in the paper's notation.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The images `x_j`.
    pub images: Vec<Image>,
    /// Their labels.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Builds a batch from labeled samples.
    pub fn from_items(items: Vec<LabeledImage>) -> Self {
        let mut images = Vec::with_capacity(items.len());
        let mut labels = Vec::with_capacity(items.len());
        for it in items {
            images.push(it.image);
            labels.push(it.label);
        }
        Batch { images, labels }
    }

    /// Builds a batch from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn new(images: Vec<Image>, labels: Vec<usize>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        Batch { images, labels }
    }

    /// Batch size `B`.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Flattens the batch into a `[B, c·h·w]` design matrix.
    ///
    /// # Panics
    ///
    /// Panics if images have inconsistent dimensions.
    pub fn to_matrix(&self) -> Tensor {
        let d = self.images.first().map(|i| i.numel()).unwrap_or(0);
        let mut data = Vec::with_capacity(self.images.len() * d);
        for img in &self.images {
            assert_eq!(img.numel(), d, "inconsistent image dims in batch");
            data.extend_from_slice(img.data());
        }
        Tensor::from_vec(data, &[self.images.len(), d]).expect("consistent dims")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_matrix_stacks_rows() {
        let mut a = Image::new(1, 1, 2);
        a.fill(0.25);
        let mut b = Image::new(1, 1, 2);
        b.fill(0.75);
        let batch = Batch::new(vec![a, b], vec![0, 1]);
        let m = batch.to_matrix();
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(0).unwrap(), &[0.25, 0.25]);
        assert_eq!(m.row(1).unwrap(), &[0.75, 0.75]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn new_checks_lengths() {
        Batch::new(vec![Image::new(1, 1, 1)], vec![]);
    }

    #[test]
    fn empty_batch_matrix() {
        let b = Batch::new(vec![], vec![]);
        assert_eq!(b.to_matrix().dims(), &[0, 0]);
        assert!(b.is_empty());
    }
}
