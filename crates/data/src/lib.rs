//! # oasis-data
//!
//! Synthetic image classification datasets standing in for the paper's
//! ImageNet (Imagenette 10-class subset) and CIFAR100 workloads.
//!
//! The real datasets cannot be downloaded in this environment, so the
//! generators in this crate produce *structured procedural images*:
//! every class has a deterministic visual identity (background
//! gradient, primary shape, texture overlay) and every sample adds
//! instance-level jitter (position, scale, brightness, pixel noise).
//! Two properties matter for faithfulness to the paper:
//!
//! 1. **Recognizable content** — PSNR-based reconstruction quality is
//!    only meaningful when images have structure an attacker would
//!    want to steal.
//! 2. **Natural-image statistics where the attacks care** — content is
//!    centrally concentrated with darker borders (vignette), so the
//!    pixel-mean "measurement" used by the RTF attack shifts only
//!    slightly under minor rotations, as with photographs; and
//!    per-image brightness jitter spreads the measurement distribution
//!    across RTF's CDF bins.
//!
//! ```
//! use oasis_data::imagenette_like;
//!
//! let ds = imagenette_like(4, 42); // 4 samples per class, seed 42
//! assert_eq!(ds.num_classes(), 10);
//! assert_eq!(ds.len(), 40);
//! ```

#![warn(missing_docs)]

mod batch;
mod cifar_like;
mod dataset;
mod imagenette_like;
mod patterns;

pub use batch::Batch;
pub use cifar_like::{cifar100_like, cifar100_like_at, cifar_like_with, synthetic_dataset};
pub use dataset::{Dataset, LabeledImage};
pub use imagenette_like::{imagenette_like, imagenette_like_with, IMAGENETTE_CLASSES};
pub use patterns::ClassSpec;
