//! Dataset containers and splits.

use oasis_image::Image;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::Batch;

/// An image with its class label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledImage {
    /// The image.
    pub image: Image,
    /// Class index in `[0, num_classes)`.
    pub label: usize,
}

/// An in-memory labeled image dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    num_classes: usize,
    items: Vec<LabeledImage>,
}

impl Dataset {
    /// Creates a dataset from parts.
    ///
    /// # Panics
    ///
    /// Panics if any label is `>= num_classes`.
    pub fn new(name: impl Into<String>, num_classes: usize, items: Vec<LabeledImage>) -> Self {
        for it in &items {
            assert!(
                it.label < num_classes,
                "label {} out of range for {num_classes} classes",
                it.label
            );
        }
        Dataset {
            name: name.into(),
            num_classes,
            items,
        }
    }

    /// The dataset's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The samples.
    pub fn items(&self) -> &[LabeledImage] {
        &self.items
    }

    /// `(channels, height, width)` of the first sample, or `(0,0,0)`
    /// when empty.
    pub fn geometry(&self) -> (usize, usize, usize) {
        self.items
            .first()
            .map(|it| it.image.dims())
            .unwrap_or((0, 0, 0))
    }

    /// Flat feature dimension `c·h·w`.
    pub fn feature_dim(&self) -> usize {
        let (c, h, w) = self.geometry();
        c * h * w
    }

    /// Splits into train/test by shuffling with `rng` and taking
    /// `train_fraction` of samples for training.
    pub fn split(&self, train_fraction: f32, rng: &mut impl Rng) -> (Dataset, Dataset) {
        let mut items = self.items.clone();
        items.shuffle(rng);
        let cut = ((items.len() as f32) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let test = items.split_off(cut.min(items.len()));
        (
            Dataset::new(format!("{}-train", self.name), self.num_classes, items),
            Dataset::new(format!("{}-test", self.name), self.num_classes, test),
        )
    }

    /// Draws one batch of `size` samples uniformly without replacement.
    ///
    /// # Panics
    ///
    /// Panics if `size > len()`.
    pub fn sample_batch(&self, size: usize, rng: &mut impl Rng) -> Batch {
        assert!(
            size <= self.items.len(),
            "batch {size} > dataset {}",
            self.items.len()
        );
        let mut idx: Vec<usize> = (0..self.items.len()).collect();
        idx.shuffle(rng);
        let chosen = &idx[..size];
        Batch::from_items(chosen.iter().map(|&i| self.items[i].clone()).collect())
    }

    /// Draws a batch whose labels are all distinct (one sample per
    /// sampled class) — the setting of the linear-model gradient
    /// inversion experiment (paper §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `size` classes have samples.
    pub fn sample_batch_unique_labels(&self, size: usize, rng: &mut impl Rng) -> Batch {
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, it) in self.items.iter().enumerate() {
            by_class[it.label].push(i);
        }
        let mut classes: Vec<usize> = (0..self.num_classes)
            .filter(|&c| !by_class[c].is_empty())
            .collect();
        assert!(
            classes.len() >= size,
            "only {} populated classes for batch {size}",
            classes.len()
        );
        classes.shuffle(rng);
        let items = classes[..size]
            .iter()
            .map(|&c| {
                let i = by_class[c][rng.gen_range(0..by_class[c].len())];
                self.items[i].clone()
            })
            .collect();
        Batch::from_items(items)
    }

    /// Iterates over sequential (non-shuffled) batches of `size`,
    /// including a trailing partial batch.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = Batch> + '_ {
        self.items
            .chunks(size.max(1))
            .map(|chunk| Batch::from_items(chunk.to_vec()))
    }

    /// Iterates over shuffled batches of `size` (one epoch).
    pub fn shuffled_batches(&self, size: usize, rng: &mut impl Rng) -> Vec<Batch> {
        let mut items = self.items.clone();
        items.shuffle(rng);
        items
            .chunks(size.max(1))
            .map(|chunk| Batch::from_items(chunk.to_vec()))
            .collect()
    }

    /// A new dataset with at most `per_class` samples of each class.
    pub fn take_per_class(&self, per_class: usize) -> Dataset {
        let mut counts = vec![0usize; self.num_classes];
        let items: Vec<LabeledImage> = self
            .items
            .iter()
            .filter(|it| {
                counts[it.label] += 1;
                counts[it.label] <= per_class
            })
            .cloned()
            .collect();
        Dataset::new(self.name.clone(), self.num_classes, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_dataset(classes: usize, per_class: usize) -> Dataset {
        let mut items = Vec::new();
        for c in 0..classes {
            for s in 0..per_class {
                let mut img = Image::new(1, 2, 2);
                img.fill((c * per_class + s) as f32 / 100.0);
                items.push(LabeledImage {
                    image: img,
                    label: c,
                });
            }
        }
        Dataset::new("tiny", classes, items)
    }

    #[test]
    fn split_partitions_everything() {
        let ds = tiny_dataset(4, 5);
        let (train, test) = ds.split(0.8, &mut StdRng::seed_from_u64(0));
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(train.len(), 16);
    }

    #[test]
    fn sample_batch_has_requested_size() {
        let ds = tiny_dataset(3, 4);
        let b = ds.sample_batch(5, &mut StdRng::seed_from_u64(1));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn unique_label_batch_has_distinct_labels() {
        let ds = tiny_dataset(10, 3);
        let b = ds.sample_batch_unique_labels(8, &mut StdRng::seed_from_u64(2));
        let mut labels = b.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    #[should_panic(expected = "populated classes")]
    fn unique_label_batch_requires_enough_classes() {
        let ds = tiny_dataset(3, 2);
        ds.sample_batch_unique_labels(5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn batches_cover_dataset() {
        let ds = tiny_dataset(2, 5);
        let total: usize = ds.batches(3).map(|b| b.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn take_per_class_limits() {
        let ds = tiny_dataset(3, 5);
        let small = ds.take_per_class(2);
        assert_eq!(small.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_bad_labels() {
        let img = Image::new(1, 2, 2);
        Dataset::new(
            "bad",
            1,
            vec![LabeledImage {
                image: img,
                label: 1,
            }],
        );
    }

    #[test]
    fn geometry_and_feature_dim() {
        let ds = tiny_dataset(1, 1);
        assert_eq!(ds.geometry(), (1, 2, 2));
        assert_eq!(ds.feature_dim(), 4);
    }
}
