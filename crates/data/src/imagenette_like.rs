//! The ImageNet stand-in.
//!
//! The paper evaluates on a 10-class ImageNet subset (the Imagenette
//! classes: tench, English springer, cassette player, …). This
//! generator produces 10 classes of 64×64×3 procedural images — the
//! same class count, at a resolution that keeps the `n×d` malicious
//! layer (`d = 12288`) CPU-friendly while remaining 4× larger than the
//! CIFAR stand-in, preserving the paper's two-dataset size contrast.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{ClassSpec, Dataset, LabeledImage};

/// The ten Imagenette class names, kept for readable experiment
/// output.
pub const IMAGENETTE_CLASSES: [&str; 10] = [
    "tench",
    "english_springer",
    "cassette_player",
    "chain_saw",
    "church",
    "french_horn",
    "garbage_truck",
    "gas_pump",
    "golf_ball",
    "parachute",
];

/// Generates the ImageNette-like dataset: 10 classes, 64×64×3.
pub fn imagenette_like(samples_per_class: usize, seed: u64) -> Dataset {
    imagenette_like_with(samples_per_class, 64, seed)
}

/// Generator with explicit resolution.
pub fn imagenette_like_with(samples_per_class: usize, side: usize, seed: u64) -> Dataset {
    let classes = IMAGENETTE_CLASSES.len();
    let mut items = Vec::with_capacity(classes * samples_per_class);
    for class in 0..classes {
        let spec = ClassSpec::derive(seed ^ SALT, class);
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(class as u64) ^ SALT);
        for _ in 0..samples_per_class {
            items.push(LabeledImage {
                image: spec.render(side, side, &mut rng),
                label: class,
            });
        }
    }
    Dataset::new("ImageNette-like", classes, items)
}

const SALT: u64 = 0x1A6E_7E77;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_ten_classes_at_64px() {
        let ds = imagenette_like(2, 0);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.geometry(), (3, 64, 64));
    }

    #[test]
    fn class_names_count_matches() {
        assert_eq!(IMAGENETTE_CLASSES.len(), 10);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = imagenette_like_with(2, 32, 5);
        let b = imagenette_like_with(2, 32, 5);
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn differs_from_cifar_generator() {
        let a = imagenette_like_with(1, 32, 5);
        let b = crate::cifar_like_with(10, 1, 32, 5);
        assert_ne!(a.items(), b.items());
    }
}
