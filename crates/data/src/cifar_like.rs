//! The CIFAR100 stand-in: 100 classes of 32×32×3 procedural images.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{ClassSpec, Dataset, LabeledImage};

/// Generates the CIFAR100-like dataset: 100 classes, 32×32×3.
///
/// `samples_per_class` controls the dataset size;
/// everything is deterministic in `seed`.
pub fn cifar100_like(samples_per_class: usize, seed: u64) -> Dataset {
    cifar_like_with(100, samples_per_class, 32, seed)
}

/// The CIFAR100 stand-in at an explicit resolution (reduced-scale
/// benchmark runs use smaller sides to stay CPU-friendly).
pub fn cifar100_like_at(samples_per_class: usize, side: usize, seed: u64) -> Dataset {
    cifar_like_with(100, samples_per_class, side, seed)
}

/// Generator with explicit class count and resolution (used by tests
/// and by experiments that subsample classes for speed).
pub fn cifar_like_with(
    classes: usize,
    samples_per_class: usize,
    side: usize,
    seed: u64,
) -> Dataset {
    synthetic_dataset("CIFAR100-like", classes, samples_per_class, side, seed)
}

/// Fully generic procedural dataset constructor: `classes` procedural
/// class identities rendered `samples_per_class` times at
/// `side`×`side`. All named dataset constructors delegate here.
pub fn synthetic_dataset(
    name: &str,
    classes: usize,
    samples_per_class: usize,
    side: usize,
    seed: u64,
) -> Dataset {
    let mut items = Vec::with_capacity(classes * samples_per_class);
    for class in 0..classes {
        let spec = ClassSpec::derive(seed, class);
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(class as u64) ^ SALT);
        for _ in 0..samples_per_class {
            items.push(LabeledImage {
                image: spec.render(side, side, &mut rng),
                label: class,
            });
        }
    }
    Dataset::new(name, classes, items)
}

/// Salt mixed into per-class RNG streams so sample jitter is
/// decorrelated from the class-identity stream.
const SALT: u64 = 0xC1FA_5EED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_expected_shape() {
        let ds = cifar_like_with(10, 3, 32, 1);
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.geometry(), (3, 32, 32));
        assert_eq!(ds.feature_dim(), 3 * 32 * 32);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = cifar_like_with(5, 2, 16, 7);
        let b = cifar_like_with(5, 2, 16, 7);
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn different_seeds_differ() {
        let a = cifar_like_with(5, 2, 16, 7);
        let b = cifar_like_with(5, 2, 16, 8);
        assert_ne!(a.items(), b.items());
    }

    #[test]
    fn full_dataset_has_100_classes() {
        let ds = cifar100_like(1, 0);
        assert_eq!(ds.num_classes(), 100);
        assert_eq!(ds.len(), 100);
    }
}
