//! Procedural class patterns.
//!
//! Each class gets a deterministic visual identity derived from the
//! dataset seed; each sample renders that identity with instance-level
//! jitter. Classes are separable (a classifier can learn them) and
//! samples are individually recognizable (an attacker reconstructing
//! one learns something).

use oasis_image::{Color, Image};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What primary shape a class draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShapeKind {
    Disc,
    Ring,
    Square,
    Bars,
    Cross,
    Checker,
}

const SHAPES: [ShapeKind; 6] = [
    ShapeKind::Disc,
    ShapeKind::Ring,
    ShapeKind::Square,
    ShapeKind::Bars,
    ShapeKind::Cross,
    ShapeKind::Checker,
];

/// A deterministic visual identity for one class.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    shape: ShapeKind,
    background_angle: f32,
    bg_from: Color,
    bg_to: Color,
    fg: Color,
    texture_angle: f32,
    texture_on: bool,
}

impl ClassSpec {
    /// Derives the identity of class `class_id` under `dataset_seed`.
    pub fn derive(dataset_seed: u64, class_id: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(
            dataset_seed ^ (class_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let shape = SHAPES[class_id % SHAPES.len()];
        let hue = |rng: &mut StdRng| {
            Color(
                rng.gen_range(0.15..0.95),
                rng.gen_range(0.15..0.95),
                rng.gen_range(0.15..0.95),
            )
        };
        ClassSpec {
            shape,
            background_angle: rng.gen_range(0.0..180.0),
            bg_from: hue(&mut rng),
            bg_to: hue(&mut rng),
            fg: hue(&mut rng),
            texture_angle: rng.gen_range(0.0..180.0),
            texture_on: rng.gen_bool(0.5),
        }
    }

    /// Renders one sample of this class at `h`×`w` with instance
    /// jitter drawn from `rng`.
    pub fn render(&self, h: usize, w: usize, rng: &mut impl Rng) -> Image {
        let mut img = Image::new(3, h, w);
        img.linear_gradient(
            self.background_angle + rng.gen_range(-10.0..10.0),
            self.bg_from,
            self.bg_to,
        );
        if self.texture_on {
            let stripe = (w / 8).max(2);
            let faded = Color(self.fg.0 * 0.5, self.fg.1 * 0.5, self.fg.2 * 0.5);
            img.stripes(self.texture_angle, stripe, faded);
        }

        let cy = h as f32 / 2.0 + rng.gen_range(-0.12..0.12) * h as f32;
        let cx = w as f32 / 2.0 + rng.gen_range(-0.12..0.12) * w as f32;
        let scale = rng.gen_range(0.22..0.34) * h.min(w) as f32;
        match self.shape {
            ShapeKind::Disc => img.fill_circle(cy, cx, scale, self.fg),
            ShapeKind::Ring => img.fill_ring(cy, cx, scale * 0.55, scale, self.fg),
            ShapeKind::Square => {
                let r = scale as usize;
                let y0 = (cy as usize).saturating_sub(r);
                let x0 = (cx as usize).saturating_sub(r);
                img.fill_rect(y0, x0, cy as usize + r, cx as usize + r, self.fg);
            }
            ShapeKind::Bars => {
                // Orientation is sampled per instance so the *population*
                // stays approximately closed under rotation, like photo
                // datasets — a property the augmentation defense relies
                // on (augmented copies must look like ordinary data to
                // the attacker's calibrated neurons).
                let bar_w = (scale / 2.0).max(1.0) as usize;
                let vertical = rng.gen_bool(0.5);
                for k in 0..3 {
                    if k % 2 != 0 {
                        continue;
                    }
                    if vertical {
                        let x0 = (cx as usize).saturating_sub(bar_w * 3 / 2) + k * bar_w + k;
                        let y0 = (cy - scale) as usize;
                        img.fill_rect(y0, x0, (cy + scale) as usize, x0 + bar_w, self.fg);
                    } else {
                        let y0 = (cy as usize).saturating_sub(bar_w * 3 / 2) + k * bar_w + k;
                        let x0 = (cx - scale) as usize;
                        img.fill_rect(y0, x0, y0 + bar_w, (cx + scale) as usize, self.fg);
                    }
                }
            }
            ShapeKind::Cross => {
                let t = (scale / 2.2).max(1.5);
                img.draw_line(cy - scale, cx - scale, cy + scale, cx + scale, t, self.fg);
                img.draw_line(cy - scale, cx + scale, cy + scale, cx - scale, t, self.fg);
            }
            ShapeKind::Checker => {
                let cell = (scale as usize / 2).max(1);
                let mut patch = Image::new(3, h, w);
                patch.checkerboard(cell, self.fg);
                // Copy only the central region of the checker.
                let r = scale as usize;
                for c in 0..3 {
                    for y in (cy as usize).saturating_sub(r)..(cy as usize + r).min(h) {
                        for x in (cx as usize).saturating_sub(r)..(cx as usize + r).min(w) {
                            let v = patch.get(c, y, x).expect("in bounds");
                            if v > 0.0 {
                                img.set(c, y, x, v).expect("in bounds");
                            }
                        }
                    }
                }
            }
        }

        // Natural-image border statistics: content centered, borders
        // darker — keeps the pixel-mean measurement stable under small
        // rotations (like photographs with background at the edges).
        img.vignette(0.55);

        // Per-image brightness jitter spreads the RTF measurement
        // distribution so the attack's CDF bins are exercised.
        let gain = rng.gen_range(0.65..1.25);
        let mut img = img.map(|v| (v * gain).clamp(0.0, 1.0));
        img.add_noise(0.02, rng);
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic() {
        let a = ClassSpec::derive(7, 3);
        let b = ClassSpec::derive(7, 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn different_classes_differ() {
        let a = ClassSpec::derive(7, 0);
        let b = ClassSpec::derive(7, 1);
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn render_is_deterministic_per_rng_seed() {
        let spec = ClassSpec::derive(1, 2);
        let a = spec.render(16, 16, &mut StdRng::seed_from_u64(9));
        let b = spec.render(16, 16, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn render_jitters_between_samples() {
        let spec = ClassSpec::derive(1, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let a = spec.render(16, 16, &mut rng);
        let b = spec.render(16, 16, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn rendered_values_are_unit_range() {
        let spec = ClassSpec::derive(3, 11);
        let img = spec.render(32, 32, &mut StdRng::seed_from_u64(0));
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn rendered_images_have_structure() {
        // Not flat: per-image std must be well above the noise floor.
        let spec = ClassSpec::derive(5, 4);
        let img = spec.render(32, 32, &mut StdRng::seed_from_u64(1));
        let mean = img.mean();
        let var: f32 = img
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / img.numel() as f32;
        assert!(var.sqrt() > 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn brightness_jitter_spreads_measurements() {
        let spec = ClassSpec::derive(5, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let means: Vec<f32> = (0..50)
            .map(|_| spec.render(32, 32, &mut rng).mean())
            .collect();
        let lo = means.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = means.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(hi - lo > 0.05, "measurement spread {}", hi - lo);
    }

    #[test]
    fn all_shape_kinds_render() {
        for class in 0..SHAPES.len() {
            let spec = ClassSpec::derive(0, class);
            let img = spec.render(16, 16, &mut StdRng::seed_from_u64(0));
            assert_eq!(img.dims(), (3, 16, 16));
        }
    }
}
