//! Property tests for the wire layer: codec round-trip guarantees and
//! malformed-buffer rejection.

use oasis_wire::{
    CodecSpec, EncodedUpdate, NetSpec, Q8Codec, RawCodec, SignCodec, Submission, TopKCodec,
    UpdateCodec, WireView,
};
use proptest::prelude::*;

/// A finite, moderately-ranged update vector (quantizing codecs
/// document their bounds over finite inputs).
fn update_from(seed: u64, n: usize) -> Vec<f32> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-100.0f32..100.0)).collect()
}

proptest! {
    /// `raw` is bit-exact for arbitrary finite tensors — including
    /// negative zero and denormals-by-division.
    #[test]
    fn raw_round_trip_is_bit_exact(
        seed in 0u64..10_000,
        n in 0usize..600,
    ) {
        let mut x = update_from(seed, n);
        if n > 1 {
            x[0] = -0.0;
            x[1] = f32::MIN_POSITIVE / 8.0;
        }
        let enc = RawCodec.encode(&x).expect("finite input");
        let back = RawCodec.decode(&enc).expect("own payload");
        prop_assert_eq!(x.len(), back.len());
        for (a, b) in x.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `q8` stays within its documented bound: half a quantization
    /// level, `(max − min)/255 · ½` (plus float rounding slack).
    #[test]
    fn q8_round_trip_is_within_half_level(
        seed in 0u64..10_000,
        n in 1usize..600,
    ) {
        let x = update_from(seed, n);
        let (lo, hi) = x.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
        let bound = (hi - lo) / 255.0 * 0.5 + (hi - lo).abs() * 1e-5 + 1e-6;
        let enc = Q8Codec.encode(&x).expect("finite input");
        let back = Q8Codec.decode(&enc).expect("own payload");
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// `topk:K` keeps its K largest-magnitude entries bit-exactly and
    /// zeroes everything else; no dropped entry outranks a kept one.
    #[test]
    fn topk_round_trip_keeps_top_magnitudes(
        seed in 0u64..10_000,
        n in 1usize..400,
        k in 1usize..64,
    ) {
        let x = update_from(seed, n);
        let codec = TopKCodec { k };
        let back = codec.decode(&codec.encode(&x).expect("finite input")).expect("own payload");
        prop_assert_eq!(back.len(), x.len());
        let mut kept_min = f32::INFINITY;
        let mut dropped_max = 0.0f32;
        let mut kept = 0usize;
        for (a, b) in x.iter().zip(&back) {
            if *b != 0.0 || (*a == 0.0 && *b == 0.0) {
                // Kept (or genuinely zero): must be bit-exact.
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            if *b != 0.0 {
                kept += 1;
                kept_min = kept_min.min(a.abs());
            } else {
                dropped_max = dropped_max.max(a.abs());
            }
        }
        prop_assert!(kept <= k.min(n));
        if kept > 0 && kept < n {
            prop_assert!(
                kept_min >= dropped_max || (kept_min - dropped_max).abs() < f32::EPSILON,
                "kept |{}| < dropped |{}|", kept_min, dropped_max
            );
        }
    }

    /// `sign` preserves every non-zero entry's sign, and all decoded
    /// magnitudes equal the update's mean |·|.
    #[test]
    fn sign_round_trip_preserves_signs(
        seed in 0u64..10_000,
        n in 1usize..600,
    ) {
        let x = update_from(seed, n);
        let back = SignCodec.decode(&SignCodec.encode(&x).expect("finite input")).expect("own payload");
        let mag = (x.iter().map(|&v| f64::from(v.abs())).sum::<f64>() / x.len() as f64) as f32;
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((b.abs() - mag).abs() <= mag.abs() * 1e-6 + 1e-12);
            if *a != 0.0 {
                prop_assert_eq!(a.is_sign_positive(), b.is_sign_positive());
            }
        }
    }

    /// Arbitrary byte garbage never panics the parser — it errors.
    #[test]
    fn garbage_buffers_error_not_panic(
        seed in 0u64..10_000,
        len in 0usize..200,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        // Either a parse error or (vanishingly unlikely) a valid view.
        let _ = WireView::parse(&bytes);
    }

    /// Bit-flipping a valid encoded update never panics any decoder.
    #[test]
    fn corrupted_payloads_error_not_panic(
        seed in 0u64..2_000,
        flip in 0usize..1_000,
    ) {
        let x = update_from(seed, 64);
        for spec in [CodecSpec::Raw, CodecSpec::Q8, CodecSpec::TopK { k: 8 }, CodecSpec::Sign] {
            let codec = spec.build();
            let enc = codec.encode(&x).expect("finite input");
            let mut payload = enc.payload.clone();
            let i = flip % payload.len();
            payload[i] ^= 0x5A;
            let corrupted = EncodedUpdate { payload, ..enc.clone() };
            // Must not panic; may error or decode to garbage values.
            let _ = codec.decode(&corrupted);
        }
    }

    /// Alignment fallback: a raw frame decoded as a borrowed view
    /// yields bit-identical values whether the payload sits at its
    /// natural (aligned, borrowed) position or at a forced-misaligned
    /// one (copied through scratch). Route never changes result.
    #[test]
    fn raw_decode_view_is_alignment_independent(
        seed in 0u64..10_000,
        n in 1usize..300,
        pad in 1usize..8,
    ) {
        let x = update_from(seed, n);
        let enc = RawCodec.encode(&x).expect("finite input");

        // Natural frame: decode_view must agree with decode bit for bit.
        let mut scratch = oasis_wire::FrameBuf::new();
        let view = RawCodec.decode_view(&enc, &mut scratch).expect("own payload");
        for (a, b) in x.iter().zip(view) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Same bytes behind `pad` junk bytes of header slack removed:
        // forge a frame whose payload offset is shifted by rebuilding
        // the buffer at offset `pad` inside a larger allocation, so the
        // tensor bytes land at an arbitrary alignment class.
        let mut shifted_backing = vec![0u8; enc.payload.len() + pad];
        shifted_backing[pad..].copy_from_slice(&enc.payload);
        let shifted_view = WireView::parse(&shifted_backing[pad..]).expect("same bytes");
        let t = shifted_view.require("update").expect("raw frame tensor");
        let vals = t.to_f32_vec().expect("read");
        prop_assert_eq!(vals.len(), x.len());
        for (a, b) in x.iter().zip(&vals) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Transport determinism: the same (seed, round, submissions)
    /// replay identical deliveries, byte counts, and round time.
    #[test]
    fn transport_is_deterministic(
        seed in 0u64..10_000,
        round in 0u64..100,
        clients in 1usize..32,
    ) {
        let net: NetSpec = "sim:15,2,0.25,5000".parse().expect("valid spec");
        let subs: Vec<Submission> = (0..clients)
            .map(|client_id| Submission { client_id, bytes_up: 5_000 + client_id, bytes_down: 20_000 })
            .collect();
        let a = net.deliver(seed, round, &subs);
        let b = net.deliver(seed, round, &subs);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.delivered + a.dropped, clients);
    }
}

/// Hand-crafted malformed headers: every strict-validation branch
/// errors, never panics.
#[test]
fn malformed_headers_are_rejected() {
    let frame = |json: &str, payload: &[u8]| {
        let mut bytes = (json.len() as u64).to_le_bytes().to_vec();
        bytes.extend_from_slice(json.as_bytes());
        bytes.extend_from_slice(payload);
        bytes
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty buffer", Vec::new()),
        ("length prefix only", 16u64.to_le_bytes().to_vec()),
        ("non-json header", frame("not json", &[])),
        ("wrong version", frame(r#"{"version":9,"tensors":[]}"#, &[])),
        ("missing fields", frame(r#"{"version":1}"#, &[])),
        (
            "offsets not starting at zero",
            frame(
                r#"{"version":1,"tensors":[{"name":"a","dtype":"u8","shape":[2],"offsets":[1,3]}]}"#,
                &[0, 0, 0],
            ),
        ),
        (
            "overlapping offsets",
            frame(
                r#"{"version":1,"tensors":[
                    {"name":"a","dtype":"u8","shape":[2],"offsets":[0,2]},
                    {"name":"b","dtype":"u8","shape":[2],"offsets":[1,3]}]}"#,
                &[0, 0, 0],
            ),
        ),
        (
            "extent exceeding payload",
            frame(
                r#"{"version":1,"tensors":[{"name":"a","dtype":"u8","shape":[4],"offsets":[0,4]}]}"#,
                &[0, 0],
            ),
        ),
        (
            "shape disagreeing with extent",
            frame(
                r#"{"version":1,"tensors":[{"name":"a","dtype":"f32","shape":[3],"offsets":[0,4]}]}"#,
                &[0, 0, 0, 0],
            ),
        ),
        (
            "unknown dtype",
            frame(
                r#"{"version":1,"tensors":[{"name":"a","dtype":"f16","shape":[2],"offsets":[0,4]}]}"#,
                &[0, 0, 0, 0],
            ),
        ),
        (
            "duplicate names",
            frame(
                r#"{"version":1,"tensors":[
                    {"name":"a","dtype":"u8","shape":[1],"offsets":[0,1]},
                    {"name":"a","dtype":"u8","shape":[1],"offsets":[1,2]}]}"#,
                &[0, 0],
            ),
        ),
        (
            "trailing payload bytes",
            frame(
                r#"{"version":1,"tensors":[{"name":"a","dtype":"u8","shape":[1],"offsets":[0,1]}]}"#,
                &[0, 0xFF],
            ),
        ),
        (
            "shape product overflow",
            frame(
                r#"{"version":1,"tensors":[{"name":"a","dtype":"f32","shape":[4294967295,4294967295,4294967295],"offsets":[0,4]}]}"#,
                &[0, 0, 0, 0],
            ),
        ),
    ];
    for (what, bytes) in cases {
        assert!(
            WireView::parse(&bytes).is_err(),
            "`{what}` should be rejected"
        );
    }
}

/// A decoded update must match the frame's declared element count.
#[test]
fn length_lies_are_rejected() {
    let x = vec![1.0f32; 16];
    for spec in [CodecSpec::Raw, CodecSpec::Q8] {
        let codec = spec.build();
        let mut enc = codec.encode(&x).unwrap();
        enc.n = 99;
        assert!(codec.decode(&enc).is_err(), "{spec:?} accepted a bad n");
    }
    // topk rebuilds from n: indices past the declared length error.
    let codec = TopKCodec { k: 4 };
    let mut enc = codec.encode(&x).unwrap();
    enc.n = 2;
    assert!(codec.decode(&enc).is_err());
}

/// Encoded bytes must not depend on the SIMD backend: q8 and sign
/// payloads travel on the wire (they are part of the threat model),
/// so the vectorized encode paths have to produce the exact byte
/// stream the scalar reference does — quantized levels, packed sign
/// bits, and the affine/magnitude headers alike. Decoding must agree
/// bit for bit too.
#[test]
fn q8_and_sign_wire_bytes_are_backend_independent() {
    use oasis_tensor::simd::{self, Backend};
    let best = Backend::detect();
    for n in (0usize..=33).chain([255, 256, 257, 1000]) {
        for seed in [3u64, 17, 99] {
            let mut x = update_from(seed, n);
            if n > 1 {
                x[0] = -0.0;
                x[1] = 0.0;
            }
            for spec in [CodecSpec::Q8, CodecSpec::Sign] {
                let codec = spec.build();
                let enc_scalar = simd::with_backend(Backend::Scalar, || codec.encode(&x).unwrap());
                let enc_vector = simd::with_backend(best, || codec.encode(&x).unwrap());
                assert_eq!(
                    enc_scalar.payload, enc_vector.payload,
                    "{spec} n={n} seed={seed}: wire bytes diverged across backends"
                );
                let dec_scalar =
                    simd::with_backend(Backend::Scalar, || codec.decode(&enc_scalar).unwrap());
                let dec_vector = simd::with_backend(best, || codec.decode(&enc_vector).unwrap());
                for (a, b) in dec_scalar.iter().zip(&dec_vector) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{spec} n={n} seed={seed}");
                }
            }
        }
    }
}
