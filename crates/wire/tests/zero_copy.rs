//! The zero-copy wire & checkpoint path, pinned end to end:
//!
//! * a delivered raw frame reaches the fold as a slice borrowed
//!   straight off the wire payload (pointer-identity checked) with
//!   zero post-decode copies and zero scratch;
//! * misaligned frames fall back to exactly one copy, bit-identically;
//! * mmap-backed checkpoint loads equal the byte-path loads bit for
//!   bit, and malformed checkpoint files (truncated, overlapping
//!   offsets) error — never panic.

use oasis_nn::{flatten_params, flatten_params_ref, Linear, Relu, Sequential};
use oasis_wire::checkpoint::{load_model, load_model_bytes, save_model};
use oasis_wire::mmap::MappedFile;
use oasis_wire::{FrameBuf, RawCodec, UpdateCodec, WireView, PAYLOAD_ALIGN};
use rand::{rngs::StdRng, SeedableRng};

fn model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new();
    m.push(Linear::new(10, 7, &mut rng));
    m.push(Relu::new());
    m.push(Linear::new(7, 4, &mut rng));
    m
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis_zero_copy_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// Assembles a wire buffer from a handcrafted header (no builder, no
/// validation) — for forging layouts the builder refuses to produce.
fn forge_wire(json: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = (json.len() as u64).to_le_bytes().to_vec();
    out.extend_from_slice(json.as_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------
// borrowed decode
// ---------------------------------------------------------------------

#[test]
#[cfg_attr(miri, ignore = "route depends on real allocator alignment")]
fn raw_frame_folds_with_zero_post_decode_copies() {
    // The tentpole pin: decode_view's slice IS the wire payload.
    let update: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin()).collect();
    let encoded = RawCodec.encode(&update).unwrap();
    let mut scratch = FrameBuf::new();
    let view = RawCodec.decode_view(&encoded, &mut scratch).unwrap();
    assert_eq!(view.len(), update.len());
    for (a, b) in update.iter().zip(view) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // Pointer identity: the decoded slice lies inside the frame's
    // payload allocation — no bytes moved after the wire. (Heap
    // payloads are ≥ 4-byte aligned under every real allocator; the
    // runtime check would fall back rather than misbehave elsewhere.)
    let payload = encoded.payload.as_ptr_range();
    let first = view.as_ptr().cast::<u8>();
    let last = unsafe { view.as_ptr().add(view.len()).cast::<u8>().sub(1) };
    assert!(
        payload.contains(&first) && payload.contains(&last),
        "decoded view must borrow the wire payload in place"
    );
    // Zero copies also means zero scratch: the arena slot was never
    // materialized.
    assert_eq!(scratch.capacity_bytes(), 0, "borrowed decode used scratch");
}

#[test]
fn builder_payloads_are_alignment_padded() {
    let mut b = oasis_wire::WireBuilder::new();
    b.push_f32("update", &[3], &[1.0, 2.0, 3.0]).unwrap();
    let buf = b.finish();
    let header_len = u64::from_le_bytes(buf[..8].try_into().unwrap()) as usize;
    assert_eq!(
        (8 + header_len) % PAYLOAD_ALIGN,
        0,
        "payload must start at a PAYLOAD_ALIGN boundary"
    );
    // The padding is trailing JSON whitespace — old readers parse it
    // unchanged.
    let json = std::str::from_utf8(&buf[8..8 + header_len]).unwrap();
    assert!(json.ends_with('}') || json.trim_end().ends_with('}'));
    WireView::parse(&buf).unwrap();
}

#[test]
fn misaligned_frame_falls_back_to_one_bit_identical_copy() {
    // Forge an unpadded frame: the header length leaves the payload
    // at an odd buffer offset, so the borrowed cast must refuse and
    // decode_view must land in scratch with identical values.
    let update = [1.5f32, -2.25, 0.0625];
    let mut payload = Vec::new();
    for v in &update {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let json = r#"{"version":1,"tensors":[{"name":"update","dtype":"f32","shape":[3],"offsets":[0,12]}]} "#;
    assert_eq!(
        (8 + json.len()) % 2,
        1,
        "forged header must leave the payload at an odd offset"
    );
    let frame = oasis_wire::EncodedUpdate {
        codec: "raw".into(),
        n: 3,
        payload: forge_wire(json, &payload),
    };
    // Unpadded (pre-zero-copy) buffers still parse: compatibility.
    let mut scratch = FrameBuf::new();
    let view = RawCodec.decode_view(&frame, &mut scratch).unwrap();
    for (a, b) in update.iter().zip(view) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // Route assertions hold for any real allocator (heap base ≥
    // 4-aligned, so an odd payload offset is always misaligned);
    // miri deliberately scrambles base alignments, so only the value
    // identity above is checked there.
    if cfg!(not(miri)) {
        let payload_range = frame.payload.as_ptr_range();
        assert!(
            !payload_range.contains(&view.as_ptr().cast::<u8>()),
            "odd-offset payload cannot be borrowed in place"
        );
        assert!(
            scratch.capacity_bytes() >= update.len() * 4,
            "fallback must have copied into the scratch slot"
        );
    }
}

#[test]
fn shifted_buffer_reads_match_aligned_reads() {
    // The same frame bytes at a deliberately misaligned base decode
    // to the same values through the copying path as the aligned
    // borrow does — alignment affects the route, never the result.
    let mut b = oasis_wire::WireBuilder::new();
    let values: Vec<f32> = (0..257).map(|i| (i as f32).cos()).collect();
    b.push_f32("w", &[values.len()], &values).unwrap();
    let buf = b.finish();

    // Aligned backing (u64 words), then parse at byte offset 1.
    let mut words = vec![0u64; buf.len() / 8 + 2];
    let bytes: &mut [u8] = unsafe {
        // SAFETY: u64 words are 8 plain bytes each; the view covers
        // exactly the words' extent and is dropped with them.
        std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
    };
    bytes[1..1 + buf.len()].copy_from_slice(&buf);
    let shifted = &bytes[1..1 + buf.len()];

    let aligned_view = WireView::parse(&buf).unwrap();
    let shifted_view = WireView::parse(shifted).unwrap();
    let aligned_tensor = aligned_view.tensor("w").unwrap();
    let shifted_tensor = shifted_view.tensor("w").unwrap();
    if cfg!(not(miri)) {
        assert!(
            aligned_tensor.as_f32s().unwrap().is_some(),
            "padded frame at an 8-aligned base must borrow"
        );
        assert!(
            shifted_tensor.as_f32s().unwrap().is_none(),
            "offset-by-1 base must refuse the cast"
        );
    }
    let a = aligned_tensor.to_f32_vec().unwrap();
    let s = shifted_tensor.to_f32_vec().unwrap();
    for (x, y) in a.iter().zip(&s) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.len(), values.len());
}

#[test]
fn owned_decode_agrees_with_slice_decode() {
    // The allocating convenience form (`decode`) is a wrapper over
    // the slice primitive (`decode_to`); they must agree bit for bit.
    let update: Vec<f32> = (0..100).map(|i| i as f32 / 7.0).collect();
    let encoded = RawCodec.encode(&update).unwrap();
    let owned = RawCodec.decode(&encoded).unwrap();
    let mut slice_out = vec![0.0f32; update.len()];
    RawCodec.decode_to(&encoded, &mut slice_out).unwrap();
    assert_eq!(owned.len(), slice_out.len());
    for (a, b) in owned.iter().zip(&slice_out) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

// ---------------------------------------------------------------------
// mmap checkpoints
// ---------------------------------------------------------------------

#[test]
fn mmap_load_is_bit_identical_to_byte_load() {
    let path = tmp("mmap_vs_bytes.oasis");
    let a = model(1);
    save_model(&path, &a).unwrap();

    let mut via_mmap = model(2);
    load_model(&path, &mut via_mmap).unwrap();

    let mut via_bytes = model(3);
    let raw = std::fs::read(&path).unwrap();
    load_model_bytes(&mut via_bytes, &raw).unwrap();

    let pa = flatten_params_ref(&a);
    let pm = flatten_params(&mut via_mmap);
    let pb = flatten_params(&mut via_bytes);
    assert_eq!(pa.len(), pm.len());
    for i in 0..pa.len() {
        assert_eq!(
            pa[i].to_bits(),
            pm[i].to_bits(),
            "mmap path diverged at {i}"
        );
        assert_eq!(
            pm[i].to_bits(),
            pb[i].to_bits(),
            "byte path diverged at {i}"
        );
    }

    #[cfg(all(target_os = "linux", not(miri)))]
    assert!(
        MappedFile::open(&path).unwrap().is_mapped(),
        "checkpoint loads should take the mmap path on linux"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "asserts the mmap borrow route; miri runs the heap fallback"
)]
fn checkpoint_tensors_borrow_straight_from_the_mapping() {
    // The mapping is page-aligned and the header is padded, so every
    // f32 tensor in a checkpoint is eligible for the borrowed read —
    // `load_model`'s single copy is mapping → parameters, nothing in
    // between.
    let path = tmp("mapped_borrow.oasis");
    let a = model(4);
    save_model(&path, &a).unwrap();
    let mapped = MappedFile::open(&path).unwrap();
    let view = WireView::parse(mapped.bytes()).unwrap();
    assert!(!view.is_empty());
    for t in view.tensors() {
        assert!(
            t.as_f32s().unwrap().is_some(),
            "tensor `{}` not borrowable from the mapping",
            t.meta().name
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_checkpoint_files_error_never_panic() {
    let path = tmp("truncated.oasis");
    let a = model(5);
    save_model(&path, &a).unwrap();
    let full = std::fs::read(&path).unwrap();
    // Every prefix class: empty, partial length prefix, partial
    // header, partial payload, one byte short.
    let mut cuts = vec![0, 1, 7, 8, 9, full.len() - 1];
    cuts.extend((0..full.len()).step_by(23));
    for cut in cuts {
        let cut_path = tmp("truncated_cut.oasis");
        std::fs::write(&cut_path, &full[..cut]).unwrap();
        let mut m = model(5);
        assert!(
            load_model(&cut_path, &mut m).is_err(),
            "truncation at {cut}/{} must error",
            full.len()
        );
        let _ = std::fs::remove_file(&cut_path);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn overlapping_offset_checkpoint_errors_never_panics() {
    // Two tensors claiming intersecting extents: strict validation
    // rejects the layout before any copy happens.
    let json = r#"{"version":1,"tensors":[{"name":"a","dtype":"f32","shape":[2],"offsets":[0,8]},{"name":"b","dtype":"f32","shape":[2],"offsets":[4,12]}]}"#;
    let forged = forge_wire(json, &[0u8; 12]);
    assert!(WireView::parse(&forged).is_err(), "overlap must not parse");
    let path = tmp("overlap.oasis");
    std::fs::write(&path, &forged).unwrap();
    let mut m = model(6);
    assert!(load_model(&path, &mut m).is_err());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_with_foreign_tensor_set_errors() {
    // A valid wire buffer that is not this model's parameter walk:
    // strict name matching refuses it (and the model is untouched).
    let mut b = oasis_wire::WireBuilder::new();
    b.push_f32("not_a_param", &[4], &[1.0, 2.0, 3.0, 4.0])
        .unwrap();
    let bytes = b.finish();
    let mut m = model(7);
    let before = flatten_params(&mut m);
    assert!(load_model_bytes(&mut m, &bytes).is_err());
    assert_eq!(flatten_params(&mut m), before);
}
