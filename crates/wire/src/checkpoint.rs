//! Whole-model checkpointing in the wire tensor format: save the
//! global model at round *k*, reload it later (or on another host),
//! and continue training with a bit-identical trajectory.
//!
//! The load path is single-copy: [`load_model`] memory-maps the file
//! ([`crate::mmap::MappedFile`]), validates the header and every
//! name/shape against the model *before mutating anything*, then
//! copies each tensor exactly once — mapping → parameter storage —
//! via [`crate::TensorView::read_f32`]. There is no intermediate
//! `Vec<Vec<f32>>` staging, so peak load memory is the file mapping
//! plus the model itself. The save path takes `&Sequential` (models
//! are read, not borrowed exclusively, while serializing).

use std::path::Path;

use oasis_nn::Sequential;

use crate::format::{Dtype, WireBuilder, WireView};
use crate::WireError;

/// Walks the model's parameter tensors read-only, yielding
/// `(name, shape, data)` in visit order — the single source of the
/// checkpoint naming scheme (`"{layer:03}.{layer_name}.{param}"`),
/// shared by save and load so the two can never diverge.
type ParamEntryVisitor<'a> = &'a mut dyn FnMut(&str, &[usize], &[f32]) -> Result<(), WireError>;

fn for_each_param_entry(model: &Sequential, f: ParamEntryVisitor) -> Result<(), WireError> {
    let mut err = None;
    for li in 0..model.len() {
        let layer = model.layer(li).expect("index in range");
        let name = layer.name();
        let mut pi = 0usize;
        layer.visit_params_ref(&mut |p| {
            if err.is_none() {
                let tensor_name = format!("{li:03}.{name}.{pi}");
                if let Err(e) = f(&tensor_name, p.dims(), p.data()) {
                    err = Some(e);
                }
            }
            pi += 1;
        });
    }
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Serializes every parameter tensor of `model` into a wire buffer.
/// Tensor names are `"{layer:03}.{layer_name}.{param}"` in visit
/// order, so the buffer is self-describing and order-stable.
pub fn model_to_bytes(model: &Sequential) -> Result<Vec<u8>, WireError> {
    let payload_bytes = oasis_nn::param_count_ref(model) * std::mem::size_of::<f32>();
    let mut builder = WireBuilder::with_payload_capacity(payload_bytes);
    for_each_param_entry(model, &mut |name, shape, data| {
        builder.push_f32(name, shape, data).map(|_| ())
    })?;
    Ok(builder.finish())
}

/// Loads a checkpoint produced by [`model_to_bytes`] into `model`.
/// Strict: the architecture must match — same tensor names, same
/// shapes, no extras, no omissions.
///
/// The copy is single-pass after validation: each checkpoint tensor is
/// written straight into its parameter's storage, with no staging
/// buffers. Validation runs first over the whole buffer, so on any
/// error the model is untouched.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed buffers or any
/// name/shape/count mismatch with `model`.
pub fn load_model_bytes(model: &mut Sequential, bytes: &[u8]) -> Result<(), WireError> {
    let view = WireView::parse(bytes)?;

    // Pass 1: read-only walk checking names, shapes, dtypes, and the
    // tensor count against the checkpoint before mutating anything.
    let mut expected = 0usize;
    for_each_param_entry(model, &mut |tensor_name, dims, _| {
        expected += 1;
        let t = view.require(tensor_name)?;
        if t.meta().shape != dims {
            return Err(WireError::Header(format!(
                "checkpoint tensor `{tensor_name}` has shape {:?}, model expects {:?}",
                t.meta().shape,
                dims
            )));
        }
        if t.meta().dtype != Dtype::F32 {
            return Err(WireError::Header(format!(
                "checkpoint tensor `{tensor_name}` has dtype {}, model parameters are f32",
                t.meta().dtype.as_str()
            )));
        }
        Ok(())
    })?;
    if expected != view.len() {
        return Err(WireError::Header(format!(
            "checkpoint holds {} tensors, model expects {expected}",
            view.len(),
        )));
    }

    // Pass 2: copy each tensor exactly once, mapping → parameter
    // storage, in the same visit order.
    let mut copy_err = None;
    for li in 0..model.len() {
        let layer = model.layer_mut(li).expect("index in range");
        let name = layer.name();
        let mut pi = 0usize;
        layer.visit_params(&mut |p, _| {
            if copy_err.is_none() {
                let tensor_name = format!("{li:03}.{name}.{pi}");
                let res = view
                    .require(&tensor_name)
                    .and_then(|t| t.read_f32(p.data_mut()));
                if let Err(e) = res {
                    copy_err = Some(e);
                }
            }
            pi += 1;
        });
    }
    match copy_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Writes `model` as a wire-format checkpoint file.
///
/// # Errors
///
/// Propagates serialization and filesystem failures.
pub fn save_model(path: impl AsRef<Path>, model: &Sequential) -> Result<(), WireError> {
    let bytes = model_to_bytes(model)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Loads a checkpoint file written by [`save_model`] into `model`.
///
/// The file is memory-mapped (read-only, private), so its bytes are
/// paged in on demand and each tensor is copied exactly once from the
/// mapping into parameter storage — the whole-file heap buffer of a
/// read-then-parse load never exists.
///
/// # Errors
///
/// Propagates filesystem failures and the strict checks of
/// [`load_model_bytes`].
pub fn load_model(path: impl AsRef<Path>, model: &mut Sequential) -> Result<(), WireError> {
    let mapped = crate::mmap::MappedFile::open(path)?;
    load_model_bytes(model, mapped.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_nn::{flatten_params, flatten_params_ref, Linear, Relu};
    use rand::{rngs::StdRng, SeedableRng};

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Linear::new(6, 4, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(4, 3, &mut rng));
        m
    }

    #[test]
    fn checkpoint_round_trip_is_bit_exact() {
        let a = model(1);
        let bytes = model_to_bytes(&a).unwrap();
        let mut b = model(2);
        assert_ne!(flatten_params_ref(&a), flatten_params(&mut b));
        load_model_bytes(&mut b, &bytes).unwrap();
        let pa = flatten_params_ref(&a);
        let pb = flatten_params(&mut b);
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let a = model(1);
        let bytes = model_to_bytes(&a).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut narrow = Sequential::new();
        narrow.push(Linear::new(6, 2, &mut rng));
        assert!(load_model_bytes(&mut narrow, &bytes).is_err());
    }

    #[test]
    fn failed_load_leaves_model_untouched() {
        let a = model(1);
        let bytes = model_to_bytes(&a).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut narrow = Sequential::new();
        narrow.push(Linear::new(6, 2, &mut rng));
        let before = flatten_params(&mut narrow);
        assert!(load_model_bytes(&mut narrow, &bytes).is_err());
        assert_eq!(
            flatten_params(&mut narrow),
            before,
            "validation must run before any mutation"
        );
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let a = model(1);
        let mut bytes = model_to_bytes(&a).unwrap();
        bytes.truncate(bytes.len() - 5);
        let mut b = model(1);
        assert!(load_model_bytes(&mut b, &bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("oasis_wire_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.oasis");
        let a = model(7);
        save_model(&path, &a).unwrap();
        let mut b = model(8);
        load_model(&path, &mut b).unwrap();
        assert_eq!(flatten_params_ref(&a), flatten_params(&mut b));
        let _ = std::fs::remove_file(&path);
    }
}
