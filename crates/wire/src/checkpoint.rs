//! Whole-model checkpointing in the wire tensor format: save the
//! global model at round *k*, reload it later (or on another host),
//! and continue training with a bit-identical trajectory.

use std::path::Path;

use oasis_nn::Sequential;

use crate::format::{WireBuilder, WireView};
use crate::WireError;

/// The model's parameter tensors as `(name, dims, data)` in visit
/// order — the single source of the checkpoint naming scheme
/// (`"{layer:03}.{layer_name}.{param}"`), shared by save and load so
/// the two can never diverge.
fn param_entries(model: &mut Sequential) -> Vec<(String, Vec<usize>, Vec<f32>)> {
    let mut entries = Vec::new();
    for li in 0..model.len() {
        let layer = model.layer_mut(li).expect("index in range");
        let name = layer.name();
        let mut pi = 0usize;
        layer.visit_params(&mut |p, _| {
            entries.push((
                format!("{li:03}.{name}.{pi}"),
                p.dims().to_vec(),
                p.data().to_vec(),
            ));
            pi += 1;
        });
    }
    entries
}

/// Serializes every parameter tensor of `model` into a wire buffer.
/// Tensor names are `"{layer:03}.{layer_name}.{param}"` in visit
/// order, so the buffer is self-describing and order-stable.
pub fn model_to_bytes(model: &mut Sequential) -> Result<Vec<u8>, WireError> {
    let mut builder = WireBuilder::new();
    for (tensor_name, shape, data) in param_entries(model) {
        builder.push_f32(&tensor_name, &shape, &data)?;
    }
    Ok(builder.finish())
}

/// Loads a checkpoint produced by [`model_to_bytes`] into `model`.
/// Strict: the architecture must match — same tensor names, same
/// shapes, no extras, no omissions.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed buffers or any
/// name/shape/count mismatch with `model`.
pub fn load_model_bytes(model: &mut Sequential, bytes: &[u8]) -> Result<(), WireError> {
    let view = WireView::parse(bytes)?;

    // Pass 1: collect the model's expected tensor names and shapes,
    // and validate the whole checkpoint before mutating anything.
    let expected: Vec<(String, Vec<usize>)> = param_entries(model)
        .into_iter()
        .map(|(name, dims, _)| (name, dims))
        .collect();
    if expected.len() != view.len() {
        return Err(WireError::Header(format!(
            "checkpoint holds {} tensors, model expects {}",
            view.len(),
            expected.len()
        )));
    }
    let mut loads: Vec<Vec<f32>> = Vec::with_capacity(expected.len());
    for (tensor_name, dims) in &expected {
        let t = view.require(tensor_name)?;
        if &t.meta().shape != dims {
            return Err(WireError::Header(format!(
                "checkpoint tensor `{tensor_name}` has shape {:?}, model expects {:?}",
                t.meta().shape,
                dims
            )));
        }
        loads.push(t.to_f32_vec()?);
    }

    // Pass 2: copy into the model, in the same visit order.
    let mut idx = 0usize;
    for li in 0..model.len() {
        let layer = model.layer_mut(li).expect("index in range");
        layer.visit_params(&mut |p, _| {
            p.data_mut().copy_from_slice(&loads[idx]);
            idx += 1;
        });
    }
    Ok(())
}

/// Writes `model` as a wire-format checkpoint file.
///
/// # Errors
///
/// Propagates serialization and filesystem failures.
pub fn save_model(path: impl AsRef<Path>, model: &mut Sequential) -> Result<(), WireError> {
    let bytes = model_to_bytes(model)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Loads a checkpoint file written by [`save_model`] into `model`.
///
/// # Errors
///
/// Propagates filesystem failures and the strict checks of
/// [`load_model_bytes`].
pub fn load_model(path: impl AsRef<Path>, model: &mut Sequential) -> Result<(), WireError> {
    let bytes = std::fs::read(path)?;
    load_model_bytes(model, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_nn::{flatten_params, Linear, Relu};
    use rand::{rngs::StdRng, SeedableRng};

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Linear::new(6, 4, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(4, 3, &mut rng));
        m
    }

    #[test]
    fn checkpoint_round_trip_is_bit_exact() {
        let mut a = model(1);
        let bytes = model_to_bytes(&mut a).unwrap();
        let mut b = model(2);
        assert_ne!(flatten_params(&mut a), flatten_params(&mut b));
        load_model_bytes(&mut b, &bytes).unwrap();
        let pa = flatten_params(&mut a);
        let pb = flatten_params(&mut b);
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let mut a = model(1);
        let bytes = model_to_bytes(&mut a).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut narrow = Sequential::new();
        narrow.push(Linear::new(6, 2, &mut rng));
        assert!(load_model_bytes(&mut narrow, &bytes).is_err());
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let mut a = model(1);
        let mut bytes = model_to_bytes(&mut a).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(load_model_bytes(&mut a, &bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("oasis_wire_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.oasis");
        let mut a = model(7);
        save_model(&path, &mut a).unwrap();
        let mut b = model(8);
        load_model(&path, &mut b).unwrap();
        assert_eq!(flatten_params(&mut a), flatten_params(&mut b));
        let _ = std::fs::remove_file(&path);
    }
}
