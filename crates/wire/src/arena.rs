//! Reusable, aligned decode buffers for the zero-copy update path.
//!
//! A decoded update is a flat `[f32; n]`. The borrow-based decode API
//! ([`crate::UpdateCodec::decode_view`]) needs somewhere to land the
//! *copying* cases — lossy codecs, misaligned raw frames — without
//! allocating per frame, and the FL server's parallel decode waves
//! need one such buffer per concurrent slot. [`FrameBuf`] is that
//! buffer (a grow-only `f32` slab, 4-byte aligned by construction)
//! and [`FrameArena`] is the pool the server checks slots out of and
//! back into across waves and rounds, keeping per-round scratch at
//! `O(threads · model)` with zero steady-state allocation.

/// One reusable decode buffer: an aligned `f32` slab that grows to
/// the largest frame it has ever held and never shrinks, so
/// steady-state rounds decode with zero allocations.
#[derive(Debug, Default)]
pub struct FrameBuf {
    data: Vec<f32>,
}

impl FrameBuf {
    /// An empty buffer (no capacity until first use).
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Hands out exactly `n` zero-initialized elements, reusing the
    /// existing allocation whenever `n` fits its capacity.
    pub fn reset(&mut self, n: usize) -> &mut [f32] {
        self.data.clear();
        self.data.resize(n, 0.0);
        &mut self.data
    }

    /// The elements handed out by the last [`FrameBuf::reset`] —
    /// lets a fold read a wave slot after the parallel decode wrote
    /// it.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The slab's current heap footprint in bytes — what memory-bound
    /// assertions sum over.
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }
}

/// A pool of [`FrameBuf`]s sized by demand: `acquire` hands back a
/// warm buffer when one is free and a fresh empty one otherwise;
/// `release` returns it for the next wave. The pool never frees —
/// a round with fewer deliveries must not drop model-sized buffers
/// the next full round would immediately reallocate.
#[derive(Debug, Default)]
pub struct FrameArena {
    free: Vec<FrameBuf>,
}

impl FrameArena {
    /// An empty arena.
    pub fn new() -> Self {
        FrameArena::default()
    }

    /// Checks a buffer out of the pool (warm if available).
    pub fn acquire(&mut self) -> FrameBuf {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse.
    pub fn release(&mut self, buf: FrameBuf) {
        self.free.push(buf);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Total bytes retained across every pooled buffer — the
    /// machine-checked side of the `O(threads · model)` scratch
    /// bound.
    pub fn retained_bytes(&self) -> usize {
        self.free.iter().map(FrameBuf::capacity_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reuses_capacity() {
        let mut buf = FrameBuf::new();
        {
            let s = buf.reset(100);
            s[0] = 7.0;
            s[99] = -1.0;
        }
        let cap = buf.capacity_bytes();
        assert!(cap >= 400);
        let s = buf.reset(50);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&v| v == 0.0), "reset must zero the slab");
        assert_eq!(buf.capacity_bytes(), cap, "shrinking reset must not free");
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = FrameArena::new();
        let mut a = arena.acquire();
        a.reset(64);
        let bytes = a.capacity_bytes();
        arena.release(a);
        assert_eq!(arena.pooled(), 1);
        assert_eq!(arena.retained_bytes(), bytes);
        let b = arena.acquire();
        assert_eq!(b.capacity_bytes(), bytes, "acquire must hand back warm");
        assert_eq!(arena.pooled(), 0);
    }
}
