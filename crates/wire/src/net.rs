//! A deterministic simulated network between FL clients and the
//! server: per-client latency, bandwidth, loss, and a straggler
//! cutoff, so rounds have a simulated wall-clock and partial
//! participation without any real sockets.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::WireError;

/// A network condition, as a value. Spec grammar (round-tripping
/// through `Display` / `FromStr`):
///
/// * `ideal` — zero latency, infinite bandwidth, no loss (the
///   default; reproduces the in-process loop exactly),
/// * `sim:LAT,BW,DROP` — mean one-way latency `LAT` ms, bandwidth
///   `BW` Mbit/s, i.i.d. drop probability `DROP`,
/// * `sim:LAT,BW,DROP,DEADLINE` — additionally cuts off stragglers
///   whose delivery would arrive after `DEADLINE` ms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NetSpec {
    /// Zero latency, infinite bandwidth, no loss.
    #[default]
    Ideal,
    /// Simulated latency/bandwidth/loss (and optional deadline).
    Sim {
        /// One-way latency in milliseconds.
        latency_ms: f64,
        /// Link bandwidth in Mbit/s.
        bandwidth_mbps: f64,
        /// Probability an upload is lost, in `[0, 1)`.
        drop_rate: f64,
        /// Straggler cutoff in milliseconds (`0` = wait forever).
        deadline_ms: f64,
    },
}

impl NetSpec {
    /// A lossy-network spec without a deadline.
    pub fn sim(latency_ms: f64, bandwidth_mbps: f64, drop_rate: f64) -> Result<Self, WireError> {
        NetSpec::validated(latency_ms, bandwidth_mbps, drop_rate, 0.0)
    }

    fn validated(
        latency_ms: f64,
        bandwidth_mbps: f64,
        drop_rate: f64,
        deadline_ms: f64,
    ) -> Result<Self, WireError> {
        if !latency_ms.is_finite() || latency_ms < 0.0 {
            return Err(WireError::Net(format!(
                "latency {latency_ms} must be ≥ 0 ms"
            )));
        }
        if !bandwidth_mbps.is_finite() || bandwidth_mbps <= 0.0 {
            return Err(WireError::Net(format!(
                "bandwidth {bandwidth_mbps} must be > 0 Mbit/s"
            )));
        }
        if !(0.0..1.0).contains(&drop_rate) {
            return Err(WireError::Net(format!(
                "drop rate {drop_rate} must be in [0, 1)"
            )));
        }
        if !deadline_ms.is_finite() || deadline_ms < 0.0 {
            return Err(WireError::Net(format!(
                "deadline {deadline_ms} must be ≥ 0 ms (0 = none)"
            )));
        }
        Ok(NetSpec::Sim {
            latency_ms,
            bandwidth_mbps,
            drop_rate,
            deadline_ms,
        })
    }

    /// Simulates one submission's fate in isolation. Pure in
    /// `(seed, round, submission)` — no cross-submission state — so a
    /// round's delivery plan can be computed one participant at a
    /// time, in any order, before any update payload exists.
    /// [`NetSpec::deliver`] folds exactly these per-submission fates,
    /// making the two views bit-identical.
    pub fn delivery(&self, seed: u64, round: u64, sub: &Submission) -> Delivery {
        let (status, arrival_ms) = match *self {
            NetSpec::Ideal => (DeliveryStatus::Delivered, 0.0),
            NetSpec::Sim {
                latency_ms,
                bandwidth_mbps,
                drop_rate,
                deadline_ms,
            } => {
                // Round-trip: broadcast down, update back up; two
                // latency legs plus transfer time for both payloads.
                let bits = (sub.bytes_down + sub.bytes_up) as f64 * 8.0;
                let transfer_ms = bits / (bandwidth_mbps * 1e6) * 1e3;
                let arrival = 2.0 * latency_ms + transfer_ms;
                let mut rng = StdRng::seed_from_u64(
                    seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (sub.client_id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                );
                if rng.gen::<f64>() < drop_rate {
                    (DeliveryStatus::Dropped, arrival)
                } else if deadline_ms > 0.0 && arrival > deadline_ms {
                    (DeliveryStatus::Straggler, arrival)
                } else {
                    (DeliveryStatus::Delivered, arrival)
                }
            }
        };
        Delivery {
            client_id: sub.client_id,
            status,
            arrival_ms,
        }
    }

    /// How long the server waits on a round with missing updates: its
    /// straggler cutoff, or zero when no deadline is configured (the
    /// model then idealizes the server as knowing the participation
    /// set, so losses add no wait).
    pub fn straggler_wait_ms(&self) -> f64 {
        match *self {
            NetSpec::Sim { deadline_ms, .. } if deadline_ms > 0.0 => deadline_ms,
            _ => 0.0,
        }
    }

    /// Simulates one round of deliveries. Deterministic: the outcome
    /// is a pure function of `(seed, round)` and the submissions — the
    /// same inputs replay the same drops and arrival times regardless
    /// of thread interleaving or submission evaluation order.
    pub fn deliver(&self, seed: u64, round: u64, submissions: &[Submission]) -> RoundTraffic {
        let mut deliveries = Vec::with_capacity(submissions.len());
        let mut bytes_up = 0u64;
        let mut bytes_down = 0u64;
        let mut round_ms = 0.0f64;
        let mut any_missing = false;
        for sub in submissions {
            bytes_down += sub.bytes_down as u64;
            bytes_up += sub.bytes_up as u64;
            let delivery = self.delivery(seed, round, sub);
            match delivery.status {
                DeliveryStatus::Delivered => round_ms = round_ms.max(delivery.arrival_ms),
                DeliveryStatus::Straggler | DeliveryStatus::Dropped => any_missing = true,
            }
            deliveries.push(delivery);
        }
        if any_missing {
            // The server cannot tell a lost update from a late one —
            // any missing client makes it wait out its full cutoff
            // before closing the round.
            round_ms = round_ms.max(self.straggler_wait_ms());
        }
        let delivered = deliveries
            .iter()
            .filter(|d| d.status == DeliveryStatus::Delivered)
            .count();
        RoundTraffic {
            delivered,
            dropped: deliveries.len() - delivered,
            bytes_up,
            bytes_down,
            round_ms,
            deliveries,
        }
    }
}

impl fmt::Display for NetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NetSpec::Ideal => f.write_str("ideal"),
            NetSpec::Sim {
                latency_ms,
                bandwidth_mbps,
                drop_rate,
                deadline_ms,
            } => {
                write!(f, "sim:{latency_ms},{bandwidth_mbps},{drop_rate}")?;
                if deadline_ms > 0.0 {
                    write!(f, ",{deadline_ms}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for NetSpec {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            None => match s {
                "ideal" => Ok(NetSpec::Ideal),
                other => Err(WireError::Net(format!(
                    "unknown net `{other}` (expected ideal or sim:LAT,BW,DROP[,DEADLINE])"
                ))),
            },
            Some(("sim", args)) => {
                let fields: Vec<&str> = args.split(',').collect();
                if fields.len() != 3 && fields.len() != 4 {
                    return Err(WireError::Net(format!(
                        "sim spec `{args}` needs LAT,BW,DROP[,DEADLINE]"
                    )));
                }
                let num = |what: &str, v: &str| -> Result<f64, WireError> {
                    v.trim()
                        .parse()
                        .map_err(|_| WireError::Net(format!("bad {what} `{v}` in `sim:` spec")))
                };
                NetSpec::validated(
                    num("latency", fields[0])?,
                    num("bandwidth", fields[1])?,
                    num("drop rate", fields[2])?,
                    fields
                        .get(3)
                        .map(|v| num("deadline", v))
                        .transpose()?
                        .unwrap_or(0.0),
                )
            }
            Some((other, _)) => Err(WireError::Net(format!(
                "unknown net `{other}` (expected ideal or sim:LAT,BW,DROP[,DEADLINE])"
            ))),
        }
    }
}

impl Serialize for NetSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for NetSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("net spec", value))?;
        s.parse()
            .map_err(|e: WireError| serde::Error::msg(e.to_string()))
    }
}

/// One client's traffic in a round: the broadcast it downloaded and
/// the encoded update it sent back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// The uploading client.
    pub client_id: usize,
    /// Encoded update size (uplink).
    pub bytes_up: usize,
    /// Broadcast model size (downlink).
    pub bytes_down: usize,
}

/// What happened to one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// Arrived before the cutoff.
    Delivered,
    /// Lost in transit.
    Dropped,
    /// Arrived after the straggler cutoff; the server did not wait.
    Straggler,
}

/// One submission's simulated fate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// The uploading client.
    pub client_id: usize,
    /// Delivered, dropped, or straggler.
    pub status: DeliveryStatus,
    /// When the update would have completed arriving (ms into the
    /// round).
    pub arrival_ms: f64,
}

/// Aggregate traffic statistics of one simulated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTraffic {
    /// Per-submission outcomes, in submission order.
    pub deliveries: Vec<Delivery>,
    /// Updates that arrived in time.
    pub delivered: usize,
    /// Updates lost or cut off.
    pub dropped: usize,
    /// Total uplink bytes sent (including lost updates).
    pub bytes_up: u64,
    /// Total downlink bytes broadcast.
    pub bytes_down: u64,
    /// Simulated round wall-clock: the last in-time arrival, or the
    /// straggler cutoff when the server had to wait it out.
    pub round_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subs(n: usize, bytes_up: usize) -> Vec<Submission> {
        (0..n)
            .map(|client_id| Submission {
                client_id,
                bytes_up,
                bytes_down: 1000,
            })
            .collect()
    }

    #[test]
    fn ideal_delivers_everything_at_zero_ms() {
        let t = NetSpec::Ideal.deliver(7, 0, &subs(5, 4000));
        assert_eq!(t.delivered, 5);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.round_ms, 0.0);
        assert_eq!(t.bytes_up, 5 * 4000);
        assert_eq!(t.bytes_down, 5 * 1000);
    }

    #[test]
    fn deliveries_are_deterministic() {
        let spec: NetSpec = "sim:20,1,0.3".parse().unwrap();
        let a = spec.deliver(42, 3, &subs(64, 10_000));
        let b = spec.deliver(42, 3, &subs(64, 10_000));
        assert_eq!(a, b);
        let c = spec.deliver(42, 4, &subs(64, 10_000));
        assert_ne!(
            a.deliveries.iter().map(|d| d.status).collect::<Vec<_>>(),
            c.deliveries.iter().map(|d| d.status).collect::<Vec<_>>(),
            "different rounds should reshuffle drops"
        );
    }

    #[test]
    fn drop_rate_drops_roughly_that_fraction() {
        let spec: NetSpec = "sim:1,100,0.5".parse().unwrap();
        let t = spec.deliver(0, 0, &subs(400, 100));
        assert!(
            (120..=280).contains(&t.dropped),
            "dropped {} of 400 at p=0.5",
            t.dropped
        );
    }

    #[test]
    fn deadline_cuts_off_big_updates() {
        // 1 Mbit/s, 10 ms deadline: a 1 MB update takes ~8000 ms.
        let spec: NetSpec = "sim:1,1,0,10".parse().unwrap();
        let t = spec.deliver(0, 0, &subs(3, 1_000_000));
        assert_eq!(t.delivered, 0);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.round_ms, 10.0);
        // Raise the deadline and they all make it.
        let spec: NetSpec = "sim:1,1,0,20000".parse().unwrap();
        let t = spec.deliver(0, 0, &subs(3, 1_000_000));
        assert_eq!(t.delivered, 3);
        assert!(t.round_ms > 1000.0);
    }

    #[test]
    fn lost_updates_also_make_the_server_wait_out_its_deadline() {
        // Fast arrivals (~2 ms) but p=0.5 loss and a 1000 ms cutoff:
        // the server cannot distinguish lost from late, so the round
        // lasts the full deadline whenever anyone is missing.
        let spec: NetSpec = "sim:1,100,0.5,1000".parse().unwrap();
        let t = spec.deliver(0, 0, &subs(16, 100));
        assert!(t.dropped > 0, "p=0.5 over 16 clients");
        assert_eq!(t.round_ms, 1000.0);
        // Without a cutoff the model idealizes: only real arrivals
        // count toward the round clock.
        let spec: NetSpec = "sim:1,100,0.5".parse().unwrap();
        let t = spec.deliver(0, 0, &subs(16, 100));
        assert!(t.round_ms < 10.0, "{}", t.round_ms);
    }

    #[test]
    fn arrival_time_scales_with_bytes_and_bandwidth() {
        let spec: NetSpec = "sim:5,8,0".parse().unwrap();
        // 8 Mbit/s = 1 byte/µs: 1000 bytes down + 1000 up = 2 ms + 10 ms latency.
        let t = spec.deliver(0, 0, &subs(1, 1000));
        assert!((t.round_ms - 12.0).abs() < 1e-9, "{}", t.round_ms);
    }

    #[test]
    fn per_submission_delivery_matches_batch_deliver() {
        // The streaming view (one `delivery` call per participant)
        // must replay the batch view fate-for-fate, including the
        // straggler wait on the aggregate clock.
        for raw in ["sim:20,1,0.3,500", "sim:5,8,0", "ideal"] {
            let spec: NetSpec = raw.parse().unwrap();
            let submissions = subs(64, 10_000);
            let batch = spec.deliver(42, 3, &submissions);
            let mut round_ms = 0.0f64;
            let mut any_missing = false;
            for (sub, expected) in submissions.iter().zip(&batch.deliveries) {
                let one = spec.delivery(42, 3, sub);
                assert_eq!(
                    &one, expected,
                    "{raw} diverged for client {}",
                    sub.client_id
                );
                match one.status {
                    DeliveryStatus::Delivered => round_ms = round_ms.max(one.arrival_ms),
                    _ => any_missing = true,
                }
            }
            if any_missing {
                round_ms = round_ms.max(spec.straggler_wait_ms());
            }
            assert_eq!(round_ms, batch.round_ms, "{raw} round clock diverged");
        }
    }

    #[test]
    fn specs_round_trip() {
        for spec in [
            NetSpec::Ideal,
            "sim:20,10,0.05".parse().unwrap(),
            "sim:5,1.5,0,250".parse().unwrap(),
        ] {
            assert_eq!(spec.to_string().parse::<NetSpec>().unwrap(), spec);
        }
        for bad in [
            "sim:1,0,0",    // zero bandwidth
            "sim:-1,1,0",   // negative latency
            "sim:1,1,1.5",  // drop rate out of range
            "sim:1,1",      // missing field
            "wifi",         // unknown family
            "sim:1,1,0,-5", // negative deadline
        ] {
            assert!(bad.parse::<NetSpec>().is_err(), "`{bad}` should not parse");
        }
    }
}
