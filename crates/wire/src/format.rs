//! The wire tensor format: a safetensors-inspired binary layout for
//! named tensors.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [ u64: header byte length N ][ N bytes: JSON header ][ payload bytes ]
//! ```
//!
//! The JSON header lists every tensor in payload order — name, dtype,
//! shape, and `[start, end)` byte offsets into the payload. Parsing is
//! **strict**: offsets must be contiguous from zero and cover the
//! payload exactly, shapes must match their byte extents, names must
//! be unique, and every violation is a [`WireError`] — never a panic.
//! Parsing is also **zero-copy**: a [`WireView`] only borrows the
//! buffer; tensor bytes are sliced, not copied, until a typed
//! conversion such as [`TensorView::to_f32_vec`] is requested.

use serde::{Deserialize, Serialize};

use crate::WireError;

/// Element type of a wire tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// 32-bit IEEE-754 float, little-endian.
    F32,
    /// Unsigned byte.
    U8,
    /// 32-bit unsigned integer, little-endian.
    U32,
}

impl Dtype {
    /// Bytes per element.
    pub fn size(&self) -> usize {
        match self {
            Dtype::F32 | Dtype::U32 => 4,
            Dtype::U8 => 1,
        }
    }

    /// The header tag ("f32", "u8", "u32").
    pub fn as_str(&self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::U8 => "u8",
            Dtype::U32 => "u32",
        }
    }

    fn parse(s: &str) -> Result<Self, WireError> {
        match s {
            "f32" => Ok(Dtype::F32),
            "u8" => Ok(Dtype::U8),
            "u32" => Ok(Dtype::U32),
            other => Err(WireError::Header(format!("unknown dtype `{other}`"))),
        }
    }
}

impl Serialize for Dtype {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Dtype {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("dtype string", value))?;
        Dtype::parse(s).map_err(|e| serde::Error::msg(e.to_string()))
    }
}

/// One tensor's header entry: name, dtype, shape, and its `[start,
/// end)` byte extent within the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorMeta {
    /// Unique tensor name.
    pub name: String,
    /// Element type.
    pub dtype: Dtype,
    /// Dimensions (empty = scalar).
    pub shape: Vec<usize>,
    /// `[start, end)` byte offsets into the payload.
    pub offsets: (usize, usize),
}

impl TensorMeta {
    /// Number of elements (product of the shape).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] on arithmetic overflow.
    pub fn numel(&self) -> Result<usize, WireError> {
        self.shape.iter().try_fold(1usize, |acc, &d| {
            acc.checked_mul(d)
                .ok_or_else(|| WireError::Header(format!("shape overflow in `{}`", self.name)))
        })
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    version: u32,
    tensors: Vec<TensorMeta>,
}

/// Format version written by this crate.
const WIRE_VERSION: u32 = 1;

/// Hard cap on the JSON header size: a malformed length prefix must
/// not drive a huge allocation.
const MAX_HEADER_BYTES: usize = 16 << 20;

/// Incrementally assembles a wire buffer (header + payload).
///
/// ```
/// use oasis_wire::{Dtype, WireBuilder, WireView};
///
/// let mut b = WireBuilder::new();
/// b.push_f32("update", &[3], &[1.0, -2.0, 0.5]).unwrap();
/// let bytes = b.finish();
/// let view = WireView::parse(&bytes).unwrap();
/// assert_eq!(view.tensor("update").unwrap().to_f32_vec().unwrap(), vec![1.0, -2.0, 0.5]);
/// ```
#[derive(Debug, Default)]
pub struct WireBuilder {
    tensors: Vec<TensorMeta>,
    payload: Vec<u8>,
}

impl WireBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        WireBuilder::default()
    }

    /// Appends a tensor of raw `bytes` with the given dtype and shape.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and byte lengths that disagree with
    /// `shape × dtype`.
    pub fn push(
        &mut self,
        name: &str,
        dtype: Dtype,
        shape: &[usize],
        bytes: &[u8],
    ) -> Result<&mut Self, WireError> {
        if self.tensors.iter().any(|t| t.name == name) {
            return Err(WireError::Header(format!("duplicate tensor name `{name}`")));
        }
        let meta = TensorMeta {
            name: name.to_owned(),
            dtype,
            shape: shape.to_vec(),
            offsets: (0, 0),
        };
        let expected = meta
            .numel()?
            .checked_mul(dtype.size())
            .ok_or_else(|| WireError::Header(format!("byte-size overflow in `{name}`")))?;
        if bytes.len() != expected {
            return Err(WireError::Header(format!(
                "tensor `{name}` has {} bytes, shape {:?} ({}) needs {expected}",
                bytes.len(),
                shape,
                dtype.as_str(),
            )));
        }
        let start = self.payload.len();
        self.payload.extend_from_slice(bytes);
        self.tensors.push(TensorMeta {
            offsets: (start, self.payload.len()),
            ..meta
        });
        Ok(self)
    }

    /// Appends an `f32` tensor, encoding little-endian.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WireBuilder::push`].
    pub fn push_f32(
        &mut self,
        name: &str,
        shape: &[usize],
        values: &[f32],
    ) -> Result<&mut Self, WireError> {
        self.push(name, Dtype::F32, shape, &f32s_to_le_bytes(values))
    }

    /// Appends a `u32` tensor, encoding little-endian.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WireBuilder::push`].
    pub fn push_u32(
        &mut self,
        name: &str,
        shape: &[usize],
        values: &[u32],
    ) -> Result<&mut Self, WireError> {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.push(name, Dtype::U32, shape, &bytes)
    }

    /// Serializes the header + payload into the final buffer.
    pub fn finish(self) -> Vec<u8> {
        let header = Header {
            version: WIRE_VERSION,
            tensors: self.tensors,
        };
        let json = serde_json::to_string(&header).expect("header serialization is infallible");
        let mut out = Vec::with_capacity(8 + json.len() + self.payload.len());
        out.extend_from_slice(&(json.len() as u64).to_le_bytes());
        out.extend_from_slice(json.as_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// A zero-copy view over a parsed wire buffer.
#[derive(Debug)]
pub struct WireView<'a> {
    tensors: Vec<TensorMeta>,
    payload: &'a [u8],
}

impl<'a> WireView<'a> {
    /// Parses and strictly validates a wire buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] for any malformed header
    /// (truncated length prefix, non-UTF-8 or non-JSON header, unknown
    /// dtype, duplicate names, non-contiguous or out-of-bounds
    /// offsets, shape/extent mismatch) and [`WireError::Payload`] when
    /// the payload does not match the header's extents.
    pub fn parse(buffer: &'a [u8]) -> Result<Self, WireError> {
        if buffer.len() < 8 {
            return Err(WireError::Header(format!(
                "buffer of {} bytes is shorter than the 8-byte length prefix",
                buffer.len()
            )));
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&buffer[..8]);
        let header_len = u64::from_le_bytes(len_bytes);
        let header_len = usize::try_from(header_len)
            .ok()
            .filter(|&n| n <= MAX_HEADER_BYTES)
            .ok_or_else(|| WireError::Header(format!("header length {header_len} out of range")))?;
        let body = &buffer[8..];
        if body.len() < header_len {
            return Err(WireError::Header(format!(
                "header claims {header_len} bytes but only {} remain",
                body.len()
            )));
        }
        let json = std::str::from_utf8(&body[..header_len])
            .map_err(|_| WireError::Header("header is not valid UTF-8".into()))?;
        let header: Header = serde_json::from_str(json)
            .map_err(|e| WireError::Header(format!("header is not a valid wire header: {e}")))?;
        if header.version != WIRE_VERSION {
            return Err(WireError::Header(format!(
                "unsupported wire version {} (this build reads {WIRE_VERSION})",
                header.version
            )));
        }
        let payload = &body[header_len..];

        // Strict layout validation: tensors tile the payload exactly,
        // in order, with extents matching their shapes.
        let mut cursor = 0usize;
        for meta in &header.tensors {
            let (start, end) = meta.offsets;
            if start != cursor {
                return Err(WireError::Header(format!(
                    "tensor `{}` starts at {start}, expected {cursor} (offsets must be contiguous)",
                    meta.name
                )));
            }
            if end < start || end > payload.len() {
                return Err(WireError::Payload(format!(
                    "tensor `{}` extent [{start}, {end}) exceeds payload of {} bytes",
                    meta.name,
                    payload.len()
                )));
            }
            let expected = meta
                .numel()?
                .checked_mul(meta.dtype.size())
                .ok_or_else(|| {
                    WireError::Header(format!("byte-size overflow in `{}`", meta.name))
                })?;
            if end - start != expected {
                return Err(WireError::Header(format!(
                    "tensor `{}` occupies {} bytes but shape {:?} ({}) needs {expected}",
                    meta.name,
                    end - start,
                    meta.shape,
                    meta.dtype.as_str(),
                )));
            }
            if header
                .tensors
                .iter()
                .filter(|t| t.name == meta.name)
                .count()
                > 1
            {
                return Err(WireError::Header(format!(
                    "duplicate tensor name `{}`",
                    meta.name
                )));
            }
            cursor = end;
        }
        if cursor != payload.len() {
            return Err(WireError::Payload(format!(
                "payload has {} bytes but tensors cover {cursor} (trailing bytes rejected)",
                payload.len()
            )));
        }
        Ok(WireView {
            tensors: header.tensors,
            payload,
        })
    }

    /// Number of tensors in the buffer.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the buffer holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// All tensors in payload order.
    pub fn tensors(&self) -> impl Iterator<Item = TensorView<'a, '_>> {
        self.tensors.iter().map(|meta| TensorView {
            meta,
            bytes: &self.payload[meta.offsets.0..meta.offsets.1],
        })
    }

    /// Looks a tensor up by name.
    pub fn tensor(&self, name: &str) -> Option<TensorView<'a, '_>> {
        self.tensors
            .iter()
            .find(|t| t.name == name)
            .map(|meta| TensorView {
                meta,
                bytes: &self.payload[meta.offsets.0..meta.offsets.1],
            })
    }

    /// Like [`WireView::tensor`] but a missing name is a
    /// [`WireError::Header`] — for decoders that require the entry.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when `name` is absent.
    pub fn require(&self, name: &str) -> Result<TensorView<'a, '_>, WireError> {
        self.tensor(name)
            .ok_or_else(|| WireError::Header(format!("missing tensor `{name}`")))
    }
}

/// A borrowed view of one tensor's metadata and payload bytes.
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a, 'm> {
    meta: &'m TensorMeta,
    bytes: &'a [u8],
}

impl TensorView<'_, '_> {
    /// The tensor's header entry.
    pub fn meta(&self) -> &TensorMeta {
        self.meta
    }

    /// The raw payload bytes (zero-copy slice of the parsed buffer).
    pub fn bytes(&self) -> &[u8] {
        self.bytes
    }

    /// Decodes the payload as little-endian `f32`s.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `f32`.
    pub fn to_f32_vec(&self) -> Result<Vec<f32>, WireError> {
        self.expect_dtype(Dtype::F32)?;
        Ok(le_bytes_to_f32s(self.bytes))
    }

    /// Decodes the payload as little-endian `f32`s into a reused
    /// buffer (cleared first) — the allocation-free twin of
    /// [`TensorView::to_f32_vec`] for per-round hot paths.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `f32`.
    pub fn read_f32_into(&self, out: &mut Vec<f32>) -> Result<(), WireError> {
        self.expect_dtype(Dtype::F32)?;
        out.clear();
        out.reserve(self.bytes.len() / 4);
        out.extend(
            self.bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        Ok(())
    }

    /// Decodes the payload as little-endian `u32`s.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `u32`.
    pub fn to_u32_vec(&self) -> Result<Vec<u32>, WireError> {
        self.expect_dtype(Dtype::U32)?;
        Ok(self
            .bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// The payload as bytes, checked to be dtype `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `u8`.
    pub fn to_u8_slice(&self) -> Result<&[u8], WireError> {
        self.expect_dtype(Dtype::U8)?;
        Ok(self.bytes)
    }

    fn expect_dtype(&self, want: Dtype) -> Result<(), WireError> {
        if self.meta.dtype != want {
            return Err(WireError::Header(format!(
                "tensor `{}` is {}, expected {}",
                self.meta.name,
                self.meta.dtype.as_str(),
                want.as_str()
            )));
        }
        Ok(())
    }
}

/// Encodes `f32`s as contiguous little-endian bytes.
pub fn f32s_to_le_bytes(values: &[f32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Decodes contiguous little-endian bytes into `f32`s (bit-exact
/// inverse of [`f32s_to_le_bytes`]).
pub fn le_bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_tensor_buffer() -> Vec<u8> {
        let mut b = WireBuilder::new();
        b.push_f32("w", &[2, 2], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        b.push("mask", Dtype::U8, &[3], &[0, 1, 255]).unwrap();
        b.finish()
    }

    #[test]
    fn round_trip_preserves_tensors() {
        let bytes = one_tensor_buffer();
        let view = WireView::parse(&bytes).unwrap();
        assert_eq!(view.len(), 2);
        let w = view.tensor("w").unwrap();
        assert_eq!(w.meta().shape, vec![2, 2]);
        assert_eq!(w.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            view.tensor("mask").unwrap().to_u8_slice().unwrap(),
            &[0, 1, 255]
        );
        assert!(view.tensor("absent").is_none());
    }

    #[test]
    fn f32_bytes_are_bit_exact() {
        let values = [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::MAX, -123.456];
        let back = le_bytes_to_f32s(&f32s_to_le_bytes(&values));
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = one_tensor_buffer();
        for cut in [0, 4, 9, bytes.len() - 1] {
            assert!(WireView::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = one_tensor_buffer();
        bytes.push(0);
        assert!(matches!(
            WireView::parse(&bytes),
            Err(WireError::Payload(_))
        ));
    }

    #[test]
    fn huge_header_length_is_rejected_without_allocating() {
        let mut bytes = u64::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"xxxx");
        assert!(matches!(WireView::parse(&bytes), Err(WireError::Header(_))));
    }

    #[test]
    fn garbage_header_is_rejected() {
        let json = b"not json at all";
        let mut bytes = (json.len() as u64).to_le_bytes().to_vec();
        bytes.extend_from_slice(json);
        assert!(matches!(WireView::parse(&bytes), Err(WireError::Header(_))));
    }

    #[test]
    fn builder_rejects_shape_mismatch_and_duplicates() {
        let mut b = WireBuilder::new();
        assert!(b.push_f32("w", &[3], &[1.0]).is_err());
        b.push_f32("w", &[1], &[1.0]).unwrap();
        assert!(b.push_f32("w", &[1], &[2.0]).is_err());
    }

    #[test]
    fn wrong_dtype_reads_error() {
        let bytes = one_tensor_buffer();
        let view = WireView::parse(&bytes).unwrap();
        assert!(view.tensor("w").unwrap().to_u8_slice().is_err());
        assert!(view.tensor("mask").unwrap().to_f32_vec().is_err());
    }
}
