//! The wire tensor format: a safetensors-inspired binary layout for
//! named tensors.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [ u64: header byte length N ][ N bytes: JSON header ][ payload bytes ]
//! ```
//!
//! The JSON header lists every tensor in payload order — name, dtype,
//! shape, and `[start, end)` byte offsets into the payload. Parsing is
//! **strict**: offsets must be contiguous from zero and cover the
//! payload exactly, shapes must match their byte extents, names must
//! be unique, and every violation is a [`WireError`] — never a panic.
//! Parsing is also **zero-copy**: a [`WireView`] only borrows the
//! buffer; tensor bytes are sliced, not copied, until a typed
//! conversion such as [`TensorView::to_f32_vec`] is requested.
//!
//! **Alignment.** [`WireBuilder::finish`] pads the JSON header with
//! trailing spaces (valid JSON whitespace) so the payload starts at
//! an 8-byte-aligned offset *within the buffer*. When the buffer
//! itself lands on an aligned base address — heap allocations and
//! page-aligned memory maps both do — an `f32` tensor at a
//! 4-byte-aligned payload offset can be borrowed directly as
//! `&[f32]` via [`TensorView::as_f32s`], no copy. Alignment is
//! checked at runtime, never assumed: a misaligned buffer (old
//! unpadded checkpoints, arbitrary slices) simply takes the copying
//! path instead.

use serde::{Deserialize, Serialize};

use crate::WireError;

/// Element type of a wire tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// 32-bit IEEE-754 float, little-endian.
    F32,
    /// Unsigned byte.
    U8,
    /// 32-bit unsigned integer, little-endian.
    U32,
}

impl Dtype {
    /// Bytes per element.
    pub fn size(&self) -> usize {
        match self {
            Dtype::F32 | Dtype::U32 => 4,
            Dtype::U8 => 1,
        }
    }

    /// The header tag ("f32", "u8", "u32").
    pub fn as_str(&self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::U8 => "u8",
            Dtype::U32 => "u32",
        }
    }

    fn parse(s: &str) -> Result<Self, WireError> {
        match s {
            "f32" => Ok(Dtype::F32),
            "u8" => Ok(Dtype::U8),
            "u32" => Ok(Dtype::U32),
            other => Err(WireError::Header(format!("unknown dtype `{other}`"))),
        }
    }
}

impl Serialize for Dtype {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Dtype {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("dtype string", value))?;
        Dtype::parse(s).map_err(|e| serde::Error::msg(e.to_string()))
    }
}

/// One tensor's header entry: name, dtype, shape, and its `[start,
/// end)` byte extent within the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorMeta {
    /// Unique tensor name.
    pub name: String,
    /// Element type.
    pub dtype: Dtype,
    /// Dimensions (empty = scalar).
    pub shape: Vec<usize>,
    /// `[start, end)` byte offsets into the payload.
    pub offsets: (usize, usize),
}

impl TensorMeta {
    /// Number of elements (product of the shape).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] on arithmetic overflow.
    pub fn numel(&self) -> Result<usize, WireError> {
        self.shape.iter().try_fold(1usize, |acc, &d| {
            acc.checked_mul(d)
                .ok_or_else(|| WireError::Header(format!("shape overflow in `{}`", self.name)))
        })
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    version: u32,
    tensors: Vec<TensorMeta>,
}

/// Format version written by this crate.
const WIRE_VERSION: u32 = 1;

/// Hard cap on the JSON header size: a malformed length prefix must
/// not drive a huge allocation.
const MAX_HEADER_BYTES: usize = 16 << 20;

/// Payload alignment written by [`WireBuilder::finish`]: the header
/// is space-padded so the payload begins at a multiple of this many
/// bytes from the buffer start. 8 covers every dtype the format can
/// carry (and any future f64/u64).
pub const PAYLOAD_ALIGN: usize = 8;

/// Reinterprets little-endian `f32` payload bytes as a borrowed
/// `&[f32]` — the zero-copy read underneath [`TensorView::as_f32s`].
/// Returns `None` (caller copies instead) unless every precondition
/// for the cast holds: little-endian target, whole number of
/// elements, and a 4-byte-aligned base pointer.
fn try_cast_f32s(bytes: &[u8]) -> Option<&[f32]> {
    if cfg!(target_endian = "big")
        || !bytes.len().is_multiple_of(4)
        || bytes.as_ptr().align_offset(std::mem::align_of::<f32>()) != 0
    {
        return None;
    }
    // SAFETY: the guards above establish everything the cast needs —
    // `bytes.as_ptr()` is 4-byte aligned, the length is an exact
    // element count, every bit pattern is a valid `f32`, and on a
    // little-endian target the in-memory byte order *is* the wire's.
    // The returned slice borrows `bytes` (same lifetime, same
    // provenance, length / 4 elements over the same extent), so the
    // borrow checker upholds the aliasing rules for us.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) })
}

/// Decodes little-endian `f32` payload bytes into `out`, which must
/// be exactly the right length. Takes the memcpy fast path whenever
/// [`try_cast_f32s`] allows, falling back to per-element decoding.
fn copy_le_f32s(bytes: &[u8], out: &mut [f32]) {
    debug_assert_eq!(bytes.len(), out.len() * 4);
    if let Some(src) = try_cast_f32s(bytes) {
        out.copy_from_slice(src);
    } else {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
    }
}

/// Appends `values` to `out` as little-endian bytes without an
/// intermediate allocation. On little-endian targets this is one
/// `memcpy` of the reinterpreted slice; the portable per-element loop
/// is kept as the big-endian fallback.
fn extend_f32_le_bytes(out: &mut Vec<u8>, values: &[f32]) {
    if cfg!(target_endian = "little") {
        // SAFETY: `f32` has size 4, alignment ≥ 1 (u8 needs none),
        // and no padding bytes, so viewing `values`' backing memory
        // as `4 · len` initialized bytes is always valid; on a
        // little-endian target those bytes are already in wire
        // order. The borrow lasts only for the extend call.
        let bytes =
            unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 4) };
        out.extend_from_slice(bytes);
    } else {
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Appends `values` to `out` as little-endian bytes — the `u32` twin
/// of [`extend_f32_le_bytes`].
fn extend_u32_le_bytes(out: &mut Vec<u8>, values: &[u32]) {
    if cfg!(target_endian = "little") {
        // SAFETY: identical argument to `extend_f32_le_bytes` — u32
        // is 4 padding-free bytes already in wire order here.
        let bytes =
            unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 4) };
        out.extend_from_slice(bytes);
    } else {
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Incrementally assembles a wire buffer (header + payload).
///
/// ```
/// use oasis_wire::{Dtype, WireBuilder, WireView};
///
/// let mut b = WireBuilder::new();
/// b.push_f32("update", &[3], &[1.0, -2.0, 0.5]).unwrap();
/// let bytes = b.finish();
/// let view = WireView::parse(&bytes).unwrap();
/// assert_eq!(view.tensor("update").unwrap().to_f32_vec().unwrap(), vec![1.0, -2.0, 0.5]);
/// ```
#[derive(Debug, Default)]
pub struct WireBuilder {
    tensors: Vec<TensorMeta>,
    payload: Vec<u8>,
}

impl WireBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        WireBuilder::default()
    }

    /// An empty builder with `payload_bytes` of payload capacity
    /// pre-reserved — for encoders that know the frame size up front
    /// (every codec does) and want one allocation, not a growth
    /// sequence.
    pub fn with_payload_capacity(payload_bytes: usize) -> Self {
        WireBuilder {
            tensors: Vec::new(),
            payload: Vec::with_capacity(payload_bytes),
        }
    }

    /// Validates a prospective entry (unique name, byte length
    /// agreeing with `shape × dtype`) without touching the payload.
    fn check_entry(
        &self,
        name: &str,
        dtype: Dtype,
        shape: &[usize],
        byte_len: usize,
    ) -> Result<(), WireError> {
        if self.tensors.iter().any(|t| t.name == name) {
            return Err(WireError::Header(format!("duplicate tensor name `{name}`")));
        }
        let numel = shape.iter().try_fold(1usize, |acc, &d| {
            acc.checked_mul(d)
                .ok_or_else(|| WireError::Header(format!("shape overflow in `{name}`")))
        })?;
        let expected = numel
            .checked_mul(dtype.size())
            .ok_or_else(|| WireError::Header(format!("byte-size overflow in `{name}`")))?;
        if byte_len != expected {
            return Err(WireError::Header(format!(
                "tensor `{name}` has {byte_len} bytes, shape {:?} ({}) needs {expected}",
                shape,
                dtype.as_str(),
            )));
        }
        Ok(())
    }

    fn record_entry(&mut self, name: &str, dtype: Dtype, shape: &[usize], start: usize) {
        self.tensors.push(TensorMeta {
            name: name.to_owned(),
            dtype,
            shape: shape.to_vec(),
            offsets: (start, self.payload.len()),
        });
    }

    /// Appends a tensor of raw `bytes` with the given dtype and shape.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and byte lengths that disagree with
    /// `shape × dtype`.
    pub fn push(
        &mut self,
        name: &str,
        dtype: Dtype,
        shape: &[usize],
        bytes: &[u8],
    ) -> Result<&mut Self, WireError> {
        self.check_entry(name, dtype, shape, bytes.len())?;
        let start = self.payload.len();
        self.payload.extend_from_slice(bytes);
        self.record_entry(name, dtype, shape, start);
        Ok(self)
    }

    /// Appends an `f32` tensor, encoding little-endian straight into
    /// the payload (no intermediate byte buffer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`WireBuilder::push`].
    pub fn push_f32(
        &mut self,
        name: &str,
        shape: &[usize],
        values: &[f32],
    ) -> Result<&mut Self, WireError> {
        self.check_entry(name, Dtype::F32, shape, values.len() * 4)?;
        let start = self.payload.len();
        extend_f32_le_bytes(&mut self.payload, values);
        self.record_entry(name, Dtype::F32, shape, start);
        Ok(self)
    }

    /// Appends a `u32` tensor, encoding little-endian straight into
    /// the payload (no intermediate byte buffer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`WireBuilder::push`].
    pub fn push_u32(
        &mut self,
        name: &str,
        shape: &[usize],
        values: &[u32],
    ) -> Result<&mut Self, WireError> {
        self.check_entry(name, Dtype::U32, shape, values.len() * 4)?;
        let start = self.payload.len();
        extend_u32_le_bytes(&mut self.payload, values);
        self.record_entry(name, Dtype::U32, shape, start);
        Ok(self)
    }

    /// Serializes the header + payload into the final buffer. The
    /// JSON header is space-padded to a [`PAYLOAD_ALIGN`]ed length so
    /// the payload's buffer offset supports the borrowed-`&[f32]`
    /// decode path (trailing whitespace is valid JSON, so old readers
    /// parse padded headers unchanged).
    pub fn finish(self) -> Vec<u8> {
        let header = Header {
            version: WIRE_VERSION,
            tensors: self.tensors,
        };
        let json = serde_json::to_string(&header).expect("header serialization is infallible");
        let header_len = (8 + json.len()).next_multiple_of(PAYLOAD_ALIGN) - 8;
        let mut out = Vec::with_capacity(8 + header_len + self.payload.len());
        out.extend_from_slice(&(header_len as u64).to_le_bytes());
        out.extend_from_slice(json.as_bytes());
        out.resize(8 + header_len, b' ');
        out.extend_from_slice(&self.payload);
        out
    }
}

/// A zero-copy view over a parsed wire buffer.
#[derive(Debug)]
pub struct WireView<'a> {
    tensors: Vec<TensorMeta>,
    payload: &'a [u8],
}

impl<'a> WireView<'a> {
    /// Parses and strictly validates a wire buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] for any malformed header
    /// (truncated length prefix, non-UTF-8 or non-JSON header, unknown
    /// dtype, duplicate names, non-contiguous or out-of-bounds
    /// offsets, shape/extent mismatch) and [`WireError::Payload`] when
    /// the payload does not match the header's extents.
    pub fn parse(buffer: &'a [u8]) -> Result<Self, WireError> {
        if buffer.len() < 8 {
            return Err(WireError::Header(format!(
                "buffer of {} bytes is shorter than the 8-byte length prefix",
                buffer.len()
            )));
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&buffer[..8]);
        let header_len = u64::from_le_bytes(len_bytes);
        let header_len = usize::try_from(header_len)
            .ok()
            .filter(|&n| n <= MAX_HEADER_BYTES)
            .ok_or_else(|| WireError::Header(format!("header length {header_len} out of range")))?;
        let body = &buffer[8..];
        if body.len() < header_len {
            return Err(WireError::Header(format!(
                "header claims {header_len} bytes but only {} remain",
                body.len()
            )));
        }
        let json = std::str::from_utf8(&body[..header_len])
            .map_err(|_| WireError::Header("header is not valid UTF-8".into()))?;
        let header: Header = serde_json::from_str(json)
            .map_err(|e| WireError::Header(format!("header is not a valid wire header: {e}")))?;
        if header.version != WIRE_VERSION {
            return Err(WireError::Header(format!(
                "unsupported wire version {} (this build reads {WIRE_VERSION})",
                header.version
            )));
        }
        let payload = &body[header_len..];

        // Strict layout validation: tensors tile the payload exactly,
        // in order, with extents matching their shapes.
        let mut cursor = 0usize;
        for meta in &header.tensors {
            let (start, end) = meta.offsets;
            if start != cursor {
                return Err(WireError::Header(format!(
                    "tensor `{}` starts at {start}, expected {cursor} (offsets must be contiguous)",
                    meta.name
                )));
            }
            if end < start || end > payload.len() {
                return Err(WireError::Payload(format!(
                    "tensor `{}` extent [{start}, {end}) exceeds payload of {} bytes",
                    meta.name,
                    payload.len()
                )));
            }
            let expected = meta
                .numel()?
                .checked_mul(meta.dtype.size())
                .ok_or_else(|| {
                    WireError::Header(format!("byte-size overflow in `{}`", meta.name))
                })?;
            if end - start != expected {
                return Err(WireError::Header(format!(
                    "tensor `{}` occupies {} bytes but shape {:?} ({}) needs {expected}",
                    meta.name,
                    end - start,
                    meta.shape,
                    meta.dtype.as_str(),
                )));
            }
            if header
                .tensors
                .iter()
                .filter(|t| t.name == meta.name)
                .count()
                > 1
            {
                return Err(WireError::Header(format!(
                    "duplicate tensor name `{}`",
                    meta.name
                )));
            }
            cursor = end;
        }
        if cursor != payload.len() {
            return Err(WireError::Payload(format!(
                "payload has {} bytes but tensors cover {cursor} (trailing bytes rejected)",
                payload.len()
            )));
        }
        Ok(WireView {
            tensors: header.tensors,
            payload,
        })
    }

    /// Number of tensors in the buffer.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the buffer holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// All tensors in payload order.
    pub fn tensors(&self) -> impl Iterator<Item = TensorView<'a, '_>> {
        self.tensors.iter().map(|meta| TensorView {
            meta,
            bytes: &self.payload[meta.offsets.0..meta.offsets.1],
        })
    }

    /// Looks a tensor up by name.
    pub fn tensor(&self, name: &str) -> Option<TensorView<'a, '_>> {
        self.tensors
            .iter()
            .find(|t| t.name == name)
            .map(|meta| TensorView {
                meta,
                bytes: &self.payload[meta.offsets.0..meta.offsets.1],
            })
    }

    /// Like [`WireView::tensor`] but a missing name is a
    /// [`WireError::Header`] — for decoders that require the entry.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when `name` is absent.
    pub fn require(&self, name: &str) -> Result<TensorView<'a, '_>, WireError> {
        self.tensor(name)
            .ok_or_else(|| WireError::Header(format!("missing tensor `{name}`")))
    }
}

/// A borrowed view of one tensor's metadata and payload bytes.
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a, 'm> {
    meta: &'m TensorMeta,
    bytes: &'a [u8],
}

impl<'a> TensorView<'a, '_> {
    /// The tensor's header entry.
    pub fn meta(&self) -> &TensorMeta {
        self.meta
    }

    /// The raw payload bytes (zero-copy slice of the parsed buffer).
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Borrows the payload directly as `&[f32]` — the zero-copy read.
    ///
    /// Returns `Some` when the bytes can be reinterpreted in place
    /// (little-endian target, 4-byte-aligned extent — which
    /// [`WireBuilder::finish`]-padded buffers on heap or mmap bases
    /// always satisfy for a leading `f32` tensor) and `None` when the
    /// caller must fall back to a copying read such as
    /// [`TensorView::read_f32`]. The borrow lives as long as the
    /// parsed buffer, not the view.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `f32`.
    pub fn as_f32s(&self) -> Result<Option<&'a [f32]>, WireError> {
        self.expect_dtype(Dtype::F32)?;
        Ok(try_cast_f32s(self.bytes))
    }

    /// Decodes the payload as little-endian `f32`s.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `f32`.
    pub fn to_f32_vec(&self) -> Result<Vec<f32>, WireError> {
        let mut out = vec![0.0f32; self.bytes.len() / 4];
        self.read_f32(&mut out)?;
        Ok(out)
    }

    /// Decodes the payload as little-endian `f32`s into a
    /// caller-sized slice — exactly one copy, memcpy-speed when the
    /// source is aligned. This is the copying half of the zero-copy
    /// pair ([`TensorView::as_f32s`] is the borrowing half); decode
    /// arenas hand their slots here.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `f32`, or
    /// [`WireError::Payload`] when `out.len()` disagrees with the
    /// tensor's element count.
    pub fn read_f32(&self, out: &mut [f32]) -> Result<(), WireError> {
        self.expect_dtype(Dtype::F32)?;
        if self.bytes.len() != out.len() * 4 {
            return Err(WireError::Payload(format!(
                "tensor `{}` holds {} f32s, destination expects {}",
                self.meta.name,
                self.bytes.len() / 4,
                out.len()
            )));
        }
        copy_le_f32s(self.bytes, out);
        Ok(())
    }

    /// Decodes the payload as little-endian `u32`s.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `u32`.
    pub fn to_u32_vec(&self) -> Result<Vec<u32>, WireError> {
        self.expect_dtype(Dtype::U32)?;
        Ok(self
            .bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// The payload as bytes, checked to be dtype `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Header`] when the dtype is not `u8`.
    pub fn to_u8_slice(&self) -> Result<&[u8], WireError> {
        self.expect_dtype(Dtype::U8)?;
        Ok(self.bytes)
    }

    fn expect_dtype(&self, want: Dtype) -> Result<(), WireError> {
        if self.meta.dtype != want {
            return Err(WireError::Header(format!(
                "tensor `{}` is {}, expected {}",
                self.meta.name,
                self.meta.dtype.as_str(),
                want.as_str()
            )));
        }
        Ok(())
    }
}

/// Encodes `f32`s as contiguous little-endian bytes.
pub fn f32s_to_le_bytes(values: &[f32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    extend_f32_le_bytes(&mut bytes, values);
    bytes
}

/// Decodes contiguous little-endian bytes into `f32`s (bit-exact
/// inverse of [`f32s_to_le_bytes`]).
pub fn le_bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_tensor_buffer() -> Vec<u8> {
        let mut b = WireBuilder::new();
        b.push_f32("w", &[2, 2], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        b.push("mask", Dtype::U8, &[3], &[0, 1, 255]).unwrap();
        b.finish()
    }

    #[test]
    fn round_trip_preserves_tensors() {
        let bytes = one_tensor_buffer();
        let view = WireView::parse(&bytes).unwrap();
        assert_eq!(view.len(), 2);
        let w = view.tensor("w").unwrap();
        assert_eq!(w.meta().shape, vec![2, 2]);
        assert_eq!(w.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            view.tensor("mask").unwrap().to_u8_slice().unwrap(),
            &[0, 1, 255]
        );
        assert!(view.tensor("absent").is_none());
    }

    #[test]
    fn f32_bytes_are_bit_exact() {
        let values = [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::MAX, -123.456];
        let back = le_bytes_to_f32s(&f32s_to_le_bytes(&values));
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = one_tensor_buffer();
        for cut in [0, 4, 9, bytes.len() - 1] {
            assert!(WireView::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = one_tensor_buffer();
        bytes.push(0);
        assert!(matches!(
            WireView::parse(&bytes),
            Err(WireError::Payload(_))
        ));
    }

    #[test]
    fn huge_header_length_is_rejected_without_allocating() {
        let mut bytes = u64::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"xxxx");
        assert!(matches!(WireView::parse(&bytes), Err(WireError::Header(_))));
    }

    #[test]
    fn garbage_header_is_rejected() {
        let json = b"not json at all";
        let mut bytes = (json.len() as u64).to_le_bytes().to_vec();
        bytes.extend_from_slice(json);
        assert!(matches!(WireView::parse(&bytes), Err(WireError::Header(_))));
    }

    #[test]
    fn builder_rejects_shape_mismatch_and_duplicates() {
        let mut b = WireBuilder::new();
        assert!(b.push_f32("w", &[3], &[1.0]).is_err());
        b.push_f32("w", &[1], &[1.0]).unwrap();
        assert!(b.push_f32("w", &[1], &[2.0]).is_err());
    }

    #[test]
    fn wrong_dtype_reads_error() {
        let bytes = one_tensor_buffer();
        let view = WireView::parse(&bytes).unwrap();
        assert!(view.tensor("w").unwrap().to_u8_slice().is_err());
        assert!(view.tensor("mask").unwrap().to_f32_vec().is_err());
    }
}
