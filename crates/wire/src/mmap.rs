//! Read-only memory-mapped files for zero-copy checkpoint loading.
//!
//! [`MappedFile`] maps a file into the address space so
//! [`crate::checkpoint::load_model`] can validate the wire header and
//! copy each tensor **exactly once** — mapping → model parameters —
//! instead of staging the whole file through a heap `Vec<u8>` first.
//! The mapping is page-aligned by the kernel, so together with the
//! [`crate::PAYLOAD_ALIGN`]ed headers written by
//! [`crate::WireBuilder::finish`] every `f32` tensor is eligible for
//! the borrowed-slice read ([`crate::TensorView::as_f32s`]).
//!
//! Platform coverage: the real `mmap(2)` path is compiled on Linux
//! (the only target this repo's toolchain builds for); everywhere
//! else — including Miri, which cannot model foreign memory — the
//! type degrades to an ordinary buffered read with the same API and
//! semantics, so callers never branch on platform.

#[cfg(all(target_os = "linux", not(miri)))]
use std::fs::File;
use std::io;
use std::path::Path;

/// A file's contents, memory-mapped read-only when the platform
/// supports it and read into a heap buffer otherwise. Either way,
/// [`MappedFile::bytes`] is the whole file.
#[derive(Debug)]
pub struct MappedFile {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(all(target_os = "linux", not(miri)))]
    Mapped(sys::Mapping),
    Heap(Vec<u8>),
}

impl MappedFile {
    /// Opens `path` and makes its contents addressable.
    ///
    /// On Linux this is a private read-only `mmap` — O(1) memory
    /// up-front, pages faulted in on first touch — falling back to a
    /// buffered read if the map fails (empty files, exotic
    /// filesystems). Elsewhere it is always the buffered read.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (missing file, permissions).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        #[cfg(all(target_os = "linux", not(miri)))]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if let Ok(len) = usize::try_from(len) {
                if len > 0 {
                    if let Some(mapping) = sys::Mapping::map(&file, len) {
                        return Ok(MappedFile {
                            inner: Inner::Mapped(mapping),
                        });
                    }
                }
            }
            // Zero-length or unmappable: fall through to the read.
            drop(file);
        }
        Ok(MappedFile {
            inner: Inner::Heap(std::fs::read(path)?),
        })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", not(miri)))]
            Inner::Mapped(m) => m.bytes(),
            Inner::Heap(v) => v,
        }
    }

    /// Whether the contents are actually memory-mapped (false on the
    /// buffered-read fallback) — lets tests pin that the zero-copy
    /// path was exercised.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(target_os = "linux", not(miri)))]
            Inner::Mapped(_) => true,
            Inner::Heap(_) => false,
        }
    }
}

#[cfg(all(target_os = "linux", not(miri)))]
mod sys {
    //! The raw `mmap(2)` binding. std links libc on Linux, so the
    //! symbols are declared here directly rather than pulling in the
    //! `libc` crate (the workspace vendors every dependency).

    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::os::unix::io::AsRawFd;
    use std::ptr::NonNull;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned `PROT_READ`/`MAP_PRIVATE` mapping of `len` bytes,
    /// unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: NonNull<u8>,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ) and private
    // (MAP_PRIVATE — writes by other processes to the underlying
    // file are not required to appear), so shared references to its
    // bytes are data-race-free across threads, exactly like a
    // `Box<[u8]>`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the first `len > 0` bytes of `file` read-only.
        /// Returns `None` when the kernel refuses (caller falls back
        /// to a buffered read).
        pub(super) fn map(file: &File, len: usize) -> Option<Self> {
            // SAFETY: a null addr + PROT_READ + MAP_PRIVATE request
            // over an open fd is always a sound mmap call; the kernel
            // picks the placement. The result is checked against
            // MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return None;
            }
            Some(Mapping {
                ptr: NonNull::new(ptr.cast::<u8>())?,
                len,
            })
        }

        /// The mapped bytes.
        ///
        /// Lifetime invariants upheld by this type (the "one new
        /// unsafe block" of the zero-copy checkpoint path):
        ///
        /// 1. The region `[ptr, ptr + len)` stays mapped for exactly
        ///    the lifetime of `self` — it is created in
        ///    [`Mapping::map`] and only unmapped in `Drop`, and the
        ///    returned slice's borrow of `self` prevents a drop while
        ///    any reader is alive.
        /// 2. The mapping is `PROT_READ`: nothing can write through
        ///    it, so `&[u8]` immutability holds. `MAP_PRIVATE`
        ///    additionally decouples the pages from later file writes.
        /// 3. The mapped length equals the file length captured at
        ///    open time. If another process *truncates* the file
        ///    below that length, Linux raises `SIGBUS` on a touch
        ///    past EOF — checkpoints are private, single-writer files
        ///    here, and callers that cannot assume that should read
        ///    the file instead (`Inner::Heap`).
        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: invariants 1–3 above: valid, immutable,
            // correctly-sized region for the borrow's whole lifetime.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are the exact region returned by a
            // successful mmap, unmapped exactly once (Drop runs once
            // and nothing else calls munmap).
            unsafe {
                munmap(self.ptr.as_ptr().cast::<c_void>(), self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("oasis_wire_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn maps_whole_file() {
        let path = tmp("whole.bin");
        let data: Vec<u8> = (0..=255).collect();
        std::fs::write(&path, &data).unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        #[cfg(all(target_os = "linux", not(miri)))]
        assert!(m.is_mapped(), "non-empty file on linux should mmap");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_reads_empty() {
        let path = tmp("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert_eq!(m.bytes(), b"");
        assert!(!m.is_mapped(), "empty files take the buffered path");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors() {
        assert!(MappedFile::open(tmp("definitely_absent.bin")).is_err());
    }
}
