//! Pluggable update codecs: how a client's flat update vector becomes
//! bytes on the wire.
//!
//! Every codec frames its payload in the wire tensor format of
//! [`crate::format`], so an encoded update is self-describing and the
//! strict format validation guards every decode. Each
//! [`EncodedUpdate`] reports its exact byte size, making compression
//! ratio a first-class metric of the FL loop.
//!
//! | spec      | scheme                                   | error bound |
//! |-----------|------------------------------------------|-------------|
//! | `raw`     | lossless little-endian `f32`             | bit-exact |
//! | `q8`      | per-tensor affine int8 quantization      | ≤ `(max−min)/255 · ½` per element |
//! | `topk:K`  | K largest-magnitude entries, rest zeroed | kept entries bit-exact, dropped entries read 0 |
//! | `sign`    | 1-bit sign + shared mean magnitude       | sign preserved for non-zero entries |

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::arena::FrameBuf;
use crate::format::{WireBuilder, WireView};
use crate::WireError;

/// A client update after encoding: codec provenance, the original
/// element count, and the framed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedUpdate {
    /// Spec string of the codec that produced the payload.
    pub codec: String,
    /// Element count of the original update vector.
    pub n: usize,
    /// Wire-format payload (see the `format` module).
    pub payload: Vec<u8>,
}

impl EncodedUpdate {
    /// Bytes this update occupies on the wire.
    pub fn byte_size(&self) -> usize {
        self.payload.len()
    }

    /// Bytes the update would occupy uncompressed (`4·n`).
    pub fn raw_byte_size(&self) -> usize {
        self.n * 4
    }

    /// `raw / encoded` — > 1 means the codec compresses.
    pub fn compression_ratio(&self) -> f64 {
        if self.payload.is_empty() {
            return 1.0;
        }
        self.raw_byte_size() as f64 / self.payload.len() as f64
    }
}

/// Encodes and decodes flat update vectors (the `G_j` of paper Eq. 1)
/// for transmission.
pub trait UpdateCodec: Send + Sync {
    /// The spec this codec implements.
    fn spec(&self) -> CodecSpec;

    /// Encodes a flat update vector.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Codec`] when the input cannot be encoded
    /// (e.g. non-finite values in a quantizing codec).
    fn encode(&self, update: &[f32]) -> Result<EncodedUpdate, WireError>;

    /// Decodes into a caller-provided slice of exactly `encoded.n`
    /// elements — the borrowed-output primitive every other decode
    /// form is built on. The destination is typically an arena slot
    /// ([`FrameBuf::reset`]), so steady-state rounds decode with zero
    /// allocations and exactly one write per element.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed payloads or when
    /// `out.len() != encoded.n` — never panics. `out`'s contents are
    /// unspecified on error.
    fn decode_to(&self, encoded: &EncodedUpdate, out: &mut [f32]) -> Result<(), WireError>;

    /// Decodes to a borrowed view: the returned slice lives as long
    /// as the *frame* (not this call), and points either straight
    /// into the wire payload — the raw codec's zero-copy fast path,
    /// alignment-checked at runtime — or into `scratch` after a
    /// [`UpdateCodec::decode_to`] fill. Callers that fold updates
    /// (FedAvg) should prefer this form: with the default raw wire a
    /// delivered update is then never copied between the transport
    /// and the aggregation arithmetic.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed payloads — never panics.
    fn decode_view<'a>(
        &self,
        encoded: &'a EncodedUpdate,
        scratch: &'a mut FrameBuf,
    ) -> Result<&'a [f32], WireError> {
        let out = scratch.reset(encoded.n);
        self.decode_to(encoded, out)?;
        Ok(out)
    }

    /// Decodes an encoded update back into a flat vector of the
    /// original length.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed payloads — never panics.
    fn decode(&self, encoded: &EncodedUpdate) -> Result<Vec<f32>, WireError> {
        let mut out = vec![0.0f32; encoded.n];
        self.decode_to(encoded, &mut out)?;
        Ok(out)
    }

    /// Exact wire size of any `n`-element update under this codec.
    ///
    /// Every built-in codec's frame size is a pure function of the
    /// element count — values never change the byte count — which is
    /// what lets a round's delivery plan be computed before any update
    /// is materialized (the population scheduler relies on this). The
    /// default implementation encodes an all-zeros probe vector once;
    /// a codec whose size *did* depend on values would have to
    /// override it (and would break the size-determinism property
    /// test in doing so).
    fn encoded_len(&self, n: usize) -> usize {
        self.encode(&vec![0.0; n])
            .map(|e| e.byte_size())
            .unwrap_or(0)
    }
}

/// A codec choice, as a value. Spec grammar (round-tripping through
/// `Display` / `FromStr`): `raw` · `q8` · `topk:K` · `sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecSpec {
    /// Lossless `f32` (the default; reproduces the in-process loop
    /// bit-exactly).
    #[default]
    Raw,
    /// Per-tensor affine int8 quantization.
    Q8,
    /// Magnitude sparsification keeping the `k` largest entries.
    TopK {
        /// How many entries survive.
        k: usize,
    },
    /// 1-bit sign-SGD style compression.
    Sign,
}

impl CodecSpec {
    /// Constructs the codec behind this spec.
    pub fn build(&self) -> Box<dyn UpdateCodec> {
        match *self {
            CodecSpec::Raw => Box::new(RawCodec),
            CodecSpec::Q8 => Box::new(Q8Codec),
            CodecSpec::TopK { k } => Box::new(TopKCodec { k }),
            CodecSpec::Sign => Box::new(SignCodec),
        }
    }

    /// Whether decode(encode(x)) == x for every finite input.
    pub fn is_lossless(&self) -> bool {
        matches!(self, CodecSpec::Raw)
    }
}

impl fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecSpec::Raw => f.write_str("raw"),
            CodecSpec::Q8 => f.write_str("q8"),
            CodecSpec::TopK { k } => write!(f, "topk:{k}"),
            CodecSpec::Sign => f.write_str("sign"),
        }
    }
}

impl FromStr for CodecSpec {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            None => match s {
                "raw" => Ok(CodecSpec::Raw),
                "q8" => Ok(CodecSpec::Q8),
                "sign" => Ok(CodecSpec::Sign),
                other => Err(WireError::Codec(format!(
                    "unknown codec `{other}` (expected raw, q8, topk:K, or sign)"
                ))),
            },
            Some(("topk", k)) => {
                let k: usize = k
                    .trim()
                    .parse()
                    .map_err(|_| WireError::Codec(format!("bad K `{k}` in `topk:` codec")))?;
                if k == 0 {
                    return Err(WireError::Codec("topk needs K ≥ 1".into()));
                }
                Ok(CodecSpec::TopK { k })
            }
            Some((other, _)) => Err(WireError::Codec(format!(
                "unknown codec `{other}` (expected raw, q8, topk:K, or sign)"
            ))),
        }
    }
}

impl Serialize for CodecSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for CodecSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("codec spec", value))?;
        s.parse()
            .map_err(|e: WireError| serde::Error::msg(e.to_string()))
    }
}

fn parse_payload(encoded: &EncodedUpdate) -> Result<WireView<'_>, WireError> {
    WireView::parse(&encoded.payload)
}

fn check_out_len(out: &[f32], n: usize) -> Result<(), WireError> {
    if out.len() != n {
        return Err(WireError::Codec(format!(
            "decode destination holds {} elements, update frame says {n}",
            out.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// raw
// ---------------------------------------------------------------------

/// Lossless `f32` transport: `decode ∘ encode` is bit-exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawCodec;

impl UpdateCodec for RawCodec {
    fn spec(&self) -> CodecSpec {
        CodecSpec::Raw
    }

    fn encode(&self, update: &[f32]) -> Result<EncodedUpdate, WireError> {
        let _span = oasis_telemetry::span("wire.encode.raw");
        let mut b = WireBuilder::with_payload_capacity(update.len() * 4);
        b.push_f32("update", &[update.len()], update)?;
        let payload = b.finish();
        oasis_telemetry::counter!("wire.bytes_encoded").add(payload.len() as u64);
        Ok(EncodedUpdate {
            codec: self.spec().to_string(),
            n: update.len(),
            payload,
        })
    }

    fn decode_to(&self, encoded: &EncodedUpdate, out: &mut [f32]) -> Result<(), WireError> {
        let _span = oasis_telemetry::span("wire.decode.raw");
        oasis_telemetry::counter!("wire.bytes_decoded").add(encoded.payload.len() as u64);
        check_out_len(out, encoded.n)?;
        let view = parse_payload(encoded)?;
        view.require("update")?.read_f32(out)
    }

    /// The zero-copy fast path: a raw frame's `update` tensor is
    /// borrowed straight off the wire payload when its extent is
    /// 4-byte aligned (which [`WireBuilder::finish`]'s padded headers
    /// make the steady state); `scratch` is touched only by the
    /// misaligned fallback.
    fn decode_view<'a>(
        &self,
        encoded: &'a EncodedUpdate,
        scratch: &'a mut FrameBuf,
    ) -> Result<&'a [f32], WireError> {
        let _span = oasis_telemetry::span("wire.decode.raw");
        oasis_telemetry::counter!("wire.bytes_decoded").add(encoded.payload.len() as u64);
        let view = parse_payload(encoded)?;
        let tensor = view.require("update")?;
        if let Some(borrowed) = tensor.as_f32s()? {
            check_out_len(borrowed, encoded.n)?;
            oasis_telemetry::counter!("wire.decode.borrowed").add(1);
            return Ok(borrowed);
        }
        oasis_telemetry::counter!("wire.decode.copied").add(1);
        let out = scratch.reset(encoded.n);
        tensor.read_f32(out)?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// q8
// ---------------------------------------------------------------------

/// Per-tensor affine int8 quantization: the update range `[min, max]`
/// is split into 255 levels; each element becomes one byte plus a
/// shared `(min, scale)` pair. Worst-case error per element is half a
/// level, `(max − min)/255 · ½`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Q8Codec;

impl UpdateCodec for Q8Codec {
    fn spec(&self) -> CodecSpec {
        CodecSpec::Q8
    }

    fn encode(&self, update: &[f32]) -> Result<EncodedUpdate, WireError> {
        let _span = oasis_telemetry::span("wire.encode.q8");
        if update.iter().any(|v| !v.is_finite()) {
            return Err(WireError::Codec("q8 requires finite values".into()));
        }
        let (mut lo, mut hi) = oasis_tensor::simd::minmax(update);
        if update.is_empty() {
            lo = 0.0;
            hi = 0.0;
        }
        // The range arithmetic runs in f64: `hi − lo` can overflow
        // f32 (e.g. MAX..−MAX), which would poison every level with
        // inf/NaN while the finite-input guard still passes.
        let range = f64::from(hi) - f64::from(lo);
        let scale = if range > 0.0 { range / 255.0 } else { 0.0 };
        // Zero range (constant vector) quantizes everything to level
        // 0; otherwise the kernel's preconditions hold: positive
        // finite scale, every value finite and ≥ lo.
        let mut q = vec![0u8; update.len()];
        if scale > 0.0 {
            oasis_tensor::simd::quantize_q8(update, lo, scale, &mut q);
        }
        let mut b = WireBuilder::new();
        b.push("q", crate::Dtype::U8, &[q.len()], &q)?;
        b.push_f32("affine", &[2], &[lo, scale as f32])?;
        let payload = b.finish();
        oasis_telemetry::counter!("wire.bytes_encoded").add(payload.len() as u64);
        Ok(EncodedUpdate {
            codec: self.spec().to_string(),
            n: update.len(),
            payload,
        })
    }

    fn decode_to(&self, encoded: &EncodedUpdate, out: &mut [f32]) -> Result<(), WireError> {
        let _span = oasis_telemetry::span("wire.decode.q8");
        oasis_telemetry::counter!("wire.bytes_decoded").add(encoded.payload.len() as u64);
        check_out_len(out, encoded.n)?;
        let view = parse_payload(encoded)?;
        let affine = view.require("affine")?.to_f32_vec()?;
        let [lo, scale] = affine[..] else {
            return Err(WireError::Codec(format!(
                "q8 affine tensor has {} values, expected 2",
                affine.len()
            )));
        };
        let q_tensor = view.require("q")?;
        let q = q_tensor.to_u8_slice()?;
        if q.len() != out.len() {
            return Err(WireError::Codec(format!(
                "q8 payload has {} levels, update frame says {}",
                q.len(),
                out.len()
            )));
        }
        // Dequantize in f64 and clamp into f32's finite range: for
        // extreme updates `lo + 255·scale` can land one rounding step
        // past f32::MAX, and the decoder must never emit inf/NaN.
        oasis_tensor::simd::dequantize_q8(q, lo, scale, out);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// topk
// ---------------------------------------------------------------------

/// Magnitude sparsification: only the `k` largest-|·| entries travel
/// (as `(u32 index, f32 value)` pairs); the decoder reads zeros
/// elsewhere. Kept entries are bit-exact.
#[derive(Debug, Clone, Copy)]
pub struct TopKCodec {
    /// How many entries survive (clamped to the update length).
    pub k: usize,
}

impl UpdateCodec for TopKCodec {
    fn spec(&self) -> CodecSpec {
        CodecSpec::TopK { k: self.k }
    }

    fn encode(&self, update: &[f32]) -> Result<EncodedUpdate, WireError> {
        let _span = oasis_telemetry::span("wire.encode.topk");
        let k = self.k.min(update.len());
        // Linear-time selection of the k largest magnitudes (with a
        // deterministic index tiebreak) instead of a full O(n log n)
        // sort — this runs on every client every round.
        let magnitude_desc = |&a: &usize, &b: &usize| {
            f32::total_cmp(&update[b].abs(), &update[a].abs()).then(a.cmp(&b))
        };
        let mut kept: Vec<usize> = (0..update.len()).collect();
        if k < kept.len() {
            kept.select_nth_unstable_by(k, magnitude_desc);
            kept.truncate(k);
        }
        kept.sort_unstable();
        let indices: Vec<u32> = kept
            .iter()
            .map(|&i| {
                u32::try_from(i)
                    .map_err(|_| WireError::Codec(format!("index {i} exceeds u32 (topk)")))
            })
            .collect::<Result<_, _>>()?;
        let values: Vec<f32> = kept.iter().map(|&i| update[i]).collect();
        let mut b = WireBuilder::new();
        b.push_u32("idx", &[k], &indices)?;
        b.push_f32("val", &[k], &values)?;
        let payload = b.finish();
        oasis_telemetry::counter!("wire.bytes_encoded").add(payload.len() as u64);
        Ok(EncodedUpdate {
            codec: self.spec().to_string(),
            n: update.len(),
            payload,
        })
    }

    fn decode_to(&self, encoded: &EncodedUpdate, out: &mut [f32]) -> Result<(), WireError> {
        let _span = oasis_telemetry::span("wire.decode.topk");
        oasis_telemetry::counter!("wire.bytes_decoded").add(encoded.payload.len() as u64);
        check_out_len(out, encoded.n)?;
        let view = parse_payload(encoded)?;
        let indices = view.require("idx")?.to_u32_vec()?;
        let values = view.require("val")?.to_f32_vec()?;
        if indices.len() != values.len() {
            return Err(WireError::Codec(format!(
                "topk payload has {} indices but {} values",
                indices.len(),
                values.len()
            )));
        }
        out.fill(0.0);
        for (&i, &v) in indices.iter().zip(&values) {
            let slot = out.get_mut(i as usize).ok_or_else(|| {
                WireError::Codec(format!("topk index {i} out of range for n={}", encoded.n))
            })?;
            *slot = v;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// sign
// ---------------------------------------------------------------------

/// 1-bit sign-SGD style compression: one sign bit per element plus a
/// single shared magnitude (the mean |·| of the update). Decoded
/// entries are `±magnitude` with the original sign.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignCodec;

impl UpdateCodec for SignCodec {
    fn spec(&self) -> CodecSpec {
        CodecSpec::Sign
    }

    fn encode(&self, update: &[f32]) -> Result<EncodedUpdate, WireError> {
        let _span = oasis_telemetry::span("wire.encode.sign");
        if update.iter().any(|v| !v.is_finite()) {
            return Err(WireError::Codec("sign requires finite values".into()));
        }
        let mut bits = vec![0u8; update.len().div_ceil(8)];
        oasis_tensor::simd::pack_signs(update, &mut bits);
        // Strictly sequential f64 accumulation: the magnitude goes on
        // the wire, so its bits must not depend on the SIMD backend —
        // lane-blocking this sum would change them.
        let mag = if update.is_empty() {
            0.0
        } else {
            (update.iter().map(|&v| f64::from(v.abs())).sum::<f64>() / update.len() as f64) as f32
        };
        let mut b = WireBuilder::new();
        b.push("bits", crate::Dtype::U8, &[bits.len()], &bits)?;
        b.push_f32("mag", &[1], &[mag])?;
        let payload = b.finish();
        oasis_telemetry::counter!("wire.bytes_encoded").add(payload.len() as u64);
        Ok(EncodedUpdate {
            codec: self.spec().to_string(),
            n: update.len(),
            payload,
        })
    }

    fn decode_to(&self, encoded: &EncodedUpdate, out: &mut [f32]) -> Result<(), WireError> {
        let _span = oasis_telemetry::span("wire.decode.sign");
        oasis_telemetry::counter!("wire.bytes_decoded").add(encoded.payload.len() as u64);
        check_out_len(out, encoded.n)?;
        let view = parse_payload(encoded)?;
        let bits_tensor = view.require("bits")?;
        let bits = bits_tensor.to_u8_slice()?;
        let mag_tensor = view.require("mag")?.to_f32_vec()?;
        let [mag] = mag_tensor[..] else {
            return Err(WireError::Codec(format!(
                "sign magnitude tensor has {} values, expected 1",
                mag_tensor.len()
            )));
        };
        if bits.len() < encoded.n.div_ceil(8) {
            return Err(WireError::Codec(format!(
                "sign payload has {} bit-bytes, n={} needs {}",
                bits.len(),
                encoded.n,
                encoded.n.div_ceil(8)
            )));
        }
        oasis_tensor::simd::unpack_signs(bits, mag, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f32> {
        vec![0.5, -1.25, 3.0, 0.0, -0.125, 2.75, -3.5, 0.03125]
    }

    #[test]
    fn raw_is_bit_exact() {
        let x = sample();
        let enc = RawCodec.encode(&x).unwrap();
        assert_eq!(enc.raw_byte_size(), x.len() * 4);
        assert!(
            enc.byte_size() > enc.raw_byte_size(),
            "header adds overhead"
        );
        let back = RawCodec.decode(&enc).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn q8_error_within_half_level() {
        let x = sample();
        let enc = Q8Codec.encode(&x).unwrap();
        let back = Q8Codec.decode(&enc).unwrap();
        let (lo, hi) = (-3.5f32, 3.0f32);
        let bound = (hi - lo) / 255.0 * 0.5 + 1e-6;
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn q8_constant_vector_is_exact() {
        let x = vec![2.5f32; 10];
        let back = Q8Codec.decode(&Q8Codec.encode(&x).unwrap()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn q8_extreme_range_stays_finite() {
        // hi − lo overflows f32 here; the round trip must stay finite
        // (not NaN-poison downstream aggregation) and keep ordering.
        let x = vec![f32::MAX, -f32::MAX, 0.0];
        let back = Q8Codec.decode(&Q8Codec.encode(&x).unwrap()).unwrap();
        assert!(back.iter().all(|v| v.is_finite()), "{back:?}");
        assert!(back[0] > back[2] && back[2] > back[1], "{back:?}");
    }

    #[test]
    fn topk_keeps_largest_magnitudes_exactly() {
        let x = sample();
        let codec = TopKCodec { k: 3 };
        let back = codec.decode(&codec.encode(&x).unwrap()).unwrap();
        assert_eq!(back, vec![0.0, 0.0, 3.0, 0.0, 0.0, 2.75, -3.5, 0.0]);
    }

    #[test]
    fn topk_compresses() {
        let x = vec![1.0f32; 1000];
        let enc = TopKCodec { k: 10 }.encode(&x).unwrap();
        assert!(
            enc.compression_ratio() > 10.0,
            "{}",
            enc.compression_ratio()
        );
    }

    #[test]
    fn sign_preserves_signs_with_shared_magnitude() {
        let x = sample();
        let enc = SignCodec.encode(&x).unwrap();
        let back = SignCodec.decode(&enc).unwrap();
        let mag = x.iter().map(|v| v.abs()).sum::<f32>() / x.len() as f32;
        for (a, b) in x.iter().zip(&back) {
            assert!((b.abs() - mag).abs() < 1e-5);
            if *a != 0.0 {
                assert_eq!(a.is_sign_positive(), b.is_sign_positive(), "{a} vs {b}");
            }
        }
        // On a long update the 1-bit encoding approaches 32× compression.
        let long: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let enc = SignCodec.encode(&long).unwrap();
        assert!(
            enc.compression_ratio() > 20.0,
            "{}",
            enc.compression_ratio()
        );
    }

    #[test]
    fn specs_round_trip() {
        for spec in [
            CodecSpec::Raw,
            CodecSpec::Q8,
            CodecSpec::TopK { k: 128 },
            CodecSpec::Sign,
        ] {
            assert_eq!(spec.to_string().parse::<CodecSpec>().unwrap(), spec);
        }
        for bad in ["gzip", "topk", "topk:0", "topk:x", "q8:1"] {
            assert!(
                bad.parse::<CodecSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn decoding_foreign_payload_errors_not_panics() {
        let enc = RawCodec.encode(&sample()).unwrap();
        // Feed the raw payload to the wrong decoders.
        assert!(Q8Codec.decode(&enc).is_err());
        assert!(SignCodec.decode(&enc).is_err());
        // Truncate the payload.
        let cut = EncodedUpdate {
            payload: enc.payload[..enc.payload.len() - 3].to_vec(),
            ..enc.clone()
        };
        assert!(RawCodec.decode(&cut).is_err());
    }

    #[test]
    fn encoded_len_is_value_independent() {
        // The size-determinism contract behind `encoded_len`: the
        // frame size of every codec depends only on the element
        // count, so a delivery plan computed from `encoded_len`
        // matches the bytes a real encode would put on the wire.
        let vectors: Vec<Vec<f32>> = vec![
            sample(),
            vec![0.0; 8],
            (0..257).map(|i| (i as f32).sin() * 1e3).collect(),
            vec![f32::MAX, -f32::MAX, 0.0, 1.0],
        ];
        for spec in [
            CodecSpec::Raw,
            CodecSpec::Q8,
            CodecSpec::TopK { k: 3 },
            CodecSpec::TopK { k: 1000 },
            CodecSpec::Sign,
        ] {
            let codec = spec.build();
            for v in &vectors {
                let enc = codec.encode(v).unwrap();
                assert_eq!(
                    codec.encoded_len(v.len()),
                    enc.byte_size(),
                    "codec {spec} size drifted for n={}",
                    v.len()
                );
            }
        }
    }

    #[test]
    fn empty_updates_round_trip() {
        for spec in [
            CodecSpec::Raw,
            CodecSpec::Q8,
            CodecSpec::TopK { k: 4 },
            CodecSpec::Sign,
        ] {
            let codec = spec.build();
            let enc = codec.encode(&[]).unwrap();
            assert_eq!(codec.decode(&enc).unwrap(), Vec::<f32>::new());
        }
    }
}
