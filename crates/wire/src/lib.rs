//! # oasis-wire
//!
//! The client↔server wire of the OASIS reproduction. The paper's
//! threat model lives on this wire — the dishonest server tampers the
//! model it *sends* and reconstructs private data from the updates it
//! *receives* — so the FL loop needs a substrate where updates are
//! actually serialized, compressed, delayed, and dropped.
//!
//! Three layers:
//!
//! 1. **Format** ([`format`]) — a safetensors-inspired zero-copy
//!    binary layout for named tensors: an 8-byte length prefix, a JSON
//!    header (names, dtypes, shapes, offsets), and a contiguous byte
//!    payload. Parsing is strict (every malformed buffer is a
//!    [`WireError`], never a panic) and zero-copy ([`WireView`]
//!    borrows, [`TensorView`] slices). [`checkpoint`] uses it for
//!    whole-model save/load.
//! 2. **Codecs** — pluggable [`UpdateCodec`]s turning
//!    flat update vectors into bytes: lossless [`RawCodec`], int8
//!    [`Q8Codec`], sparsifying [`TopKCodec`], and 1-bit [`SignCodec`],
//!    each reporting its exact encoded byte size.
//! 3. **Transport** — a deterministic simulated network
//!    ([`NetSpec`]) with per-client latency, bandwidth, loss, and a
//!    straggler cutoff, so FL rounds gain a simulated wall-clock and
//!    partial participation.
//!
//! ```
//! use oasis_wire::{CodecSpec, NetSpec, Submission};
//!
//! let codec = "q8".parse::<CodecSpec>().unwrap().build();
//! let update: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
//! let encoded = codec.encode(&update).unwrap();
//! assert!(encoded.byte_size() < encoded.raw_byte_size());
//!
//! let net: NetSpec = "sim:20,10,0.1".parse().unwrap();
//! let traffic = net.deliver(7, 0, &[Submission {
//!     client_id: 0,
//!     bytes_up: encoded.byte_size(),
//!     bytes_down: update.len() * 4,
//! }]);
//! assert_eq!(traffic.deliveries.len(), 1);
//! ```

#![warn(missing_docs)]

mod arena;
pub mod checkpoint;
mod codec;
mod format;
pub mod mmap;
mod net;

pub use arena::{FrameArena, FrameBuf};
pub use codec::{CodecSpec, EncodedUpdate, Q8Codec, RawCodec, SignCodec, TopKCodec, UpdateCodec};
pub use format::{
    f32s_to_le_bytes, le_bytes_to_f32s, Dtype, TensorMeta, TensorView, WireBuilder, WireView,
    PAYLOAD_ALIGN,
};
pub use net::{Delivery, DeliveryStatus, NetSpec, RoundTraffic, Submission};

use std::fmt;

/// Errors produced by the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// A wire header was malformed (bad prefix, JSON, dtype, offsets,
    /// shapes, or names).
    Header(String),
    /// A payload disagreed with its header (truncated or trailing
    /// bytes).
    Payload(String),
    /// A codec could not encode or decode an update.
    Codec(String),
    /// A network spec was invalid.
    Net(String),
    /// A checkpoint file could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Header(msg) => write!(f, "bad wire header: {msg}"),
            WireError::Payload(msg) => write!(f, "bad wire payload: {msg}"),
            WireError::Codec(msg) => write!(f, "codec failure: {msg}"),
            WireError::Net(msg) => write!(f, "bad net spec: {msg}"),
            WireError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}
