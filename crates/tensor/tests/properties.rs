//! Property-based tests for the tensor algebra.

use oasis_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a rank-2 tensor with dims in [1, 8] and small finite values.
fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).unwrap())
    })
}

/// Strategy: two same-shape matrices.
fn matrix_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        let a = proptest::collection::vec(-100.0f32..100.0, r * c);
        let b = proptest::collection::vec(-100.0f32..100.0, r * c);
        (a, b).prop_map(move |(a, b)| {
            (
                Tensor::from_vec(a, &[r, c]).unwrap(),
                Tensor::from_vec(b, &[r, c]).unwrap(),
            )
        })
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in matrix_pair()) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn sub_then_add_recovers((a, b) in matrix_pair()) {
        let round = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in round.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-5));
        }
    }

    #[test]
    fn transpose_is_involution(a in small_matrix()) {
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn identity_is_matmul_neutral(a in small_matrix()) {
        let n = a.dims()[1];
        let prod = a.matmul(&Tensor::eye(n)).unwrap();
        prop_assert_eq!(prod, a);
    }

    #[test]
    fn matmul_tn_matches_transpose(a in small_matrix(), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let k = a.dims()[0];
        let b = Tensor::randn(&[k, 3], &mut StdRng::seed_from_u64(seed));
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-4));
        }
    }

    #[test]
    fn matmul_nt_matches_transpose(a in small_matrix(), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let k = a.dims()[1];
        let b = Tensor::randn(&[5, k], &mut StdRng::seed_from_u64(seed));
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-4));
        }
    }

    #[test]
    fn scale_distributes_over_add((a, b) in matrix_pair(), s in -10.0f32..10.0) {
        let lhs = a.add(&b).unwrap().scale(s);
        let rhs = a.scale(s).add(&b.scale(s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2_f32.max(y.abs() * 1e-4));
        }
    }

    #[test]
    fn sum_axis_decompositions_agree(a in small_matrix()) {
        let total = a.sum();
        let by_rows = a.sum_axis1().unwrap().sum();
        let by_cols = a.sum_axis0().unwrap().sum();
        prop_assert!((total - by_rows).abs() <= 1e-2_f32.max(total.abs() * 1e-5));
        prop_assert!((total - by_cols).abs() <= 1e-2_f32.max(total.abs() * 1e-5));
    }

    #[test]
    fn mse_is_symmetric_and_nonnegative((a, b) in matrix_pair()) {
        let ab = a.mse(&b).unwrap();
        let ba = b.mse(&a).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn relu_is_idempotent(a in small_matrix()) {
        let once = a.relu();
        let twice = once.relu();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn reshape_preserves_sum(a in small_matrix()) {
        let n = a.numel();
        let flat = a.reshape(&[n]).unwrap();
        prop_assert_eq!(flat.sum(), a.sum());
    }

    #[test]
    fn stack_then_slice_recovers((a, b) in matrix_pair()) {
        let stacked = Tensor::concat_rows(&[a.clone(), b.clone()]).unwrap();
        let ra = stacked.slice_rows(0, a.dims()[0]).unwrap();
        let rb = stacked.slice_rows(a.dims()[0], stacked.dims()[0]).unwrap();
        prop_assert_eq!(ra, a);
        prop_assert_eq!(rb, b);
    }
}
