//! SIMD-vs-scalar parity at lane boundaries.
//!
//! Every dispatched kernel is specified to be *bit-identical* to the
//! scalar reference (see `oasis_tensor::simd`), so these tests pin
//! equality of bit patterns, not tolerances: proptests sweep lengths
//! through `1..=33` (covering empty vector-chunk counts, exact lane
//! multiples, and every tail length for both 8- and 4-lane backends)
//! plus misaligned sub-slices (vector loads must not assume an
//! aligned base), with tricky values — signed zeros, subnormal-scale
//! magnitudes, large magnitudes — mixed in. On hardware where the
//! best backend *is* scalar the comparisons are trivially true; the
//! CI perf leg runs on AVX2 where they are load-bearing.

use oasis_tensor::simd::{self, Backend};
use oasis_tensor::{parallel, Tensor};
use proptest::prelude::*;

/// Element strategy biased toward lane-combine edge cases.
fn tricky_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -100.0f32..100.0,
        -100.0f32..100.0,
        -100.0f32..100.0,
        Just(0.0f32),
        Just(-0.0f32),
        -1e-6f32..1e-6,
        -1e30f32..1e30,
    ]
}

/// A vector sweeping every lane/tail split for 8- and 4-lane kernels.
fn lane_vec() -> impl Strategy<Value = Vec<f32>> {
    (1usize..=33).prop_flat_map(|n| proptest::collection::vec(tricky_f32(), n))
}

/// Same-length vector pair.
fn lane_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..=33).prop_flat_map(|n| {
        (
            proptest::collection::vec(tricky_f32(), n),
            proptest::collection::vec(tricky_f32(), n),
        )
    })
}

fn best() -> Backend {
    Backend::detect()
}

proptest! {
    #[test]
    fn dot_is_bit_identical((a, b) in lane_pair()) {
        let scalar = simd::with_backend(Backend::Scalar, || simd::dot(&a, &b));
        let vector = simd::with_backend(best(), || simd::dot(&a, &b));
        prop_assert_eq!(scalar.to_bits(), vector.to_bits());
    }

    #[test]
    fn dot_on_misaligned_subslices_is_bit_identical(
        (a, b) in lane_pair(), off in 0usize..4,
    ) {
        let off = off % a.len();
        let (sa, sb) = (&a[off..], &b[off..]);
        let scalar = simd::with_backend(Backend::Scalar, || simd::dot(sa, sb));
        let vector = simd::with_backend(best(), || simd::dot(sa, sb));
        prop_assert_eq!(scalar.to_bits(), vector.to_bits());
    }

    #[test]
    fn axpy_is_bit_identical((out, x) in lane_pair(), alpha in tricky_f32()) {
        let mut via_scalar = out.clone();
        let mut via_vector = out.clone();
        simd::with_backend(Backend::Scalar, || simd::axpy(&mut via_scalar, alpha, &x));
        simd::with_backend(best(), || simd::axpy(&mut via_vector, alpha, &x));
        for (s, v) in via_scalar.iter().zip(&via_vector) {
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn tensor_axpy_routes_through_the_same_kernel(
        (out, x) in lane_pair(), alpha in tricky_f32(),
    ) {
        let n = out.len();
        let mut t = Tensor::from_vec(out.clone(), &[n]).unwrap();
        let xt = Tensor::from_vec(x.clone(), &[n]).unwrap();
        t.axpy(alpha, &xt).unwrap();
        let mut direct = out;
        simd::axpy(&mut direct, alpha, &x);
        prop_assert_eq!(t.data(), &direct[..]);
    }

    #[test]
    fn minmax_is_bit_identical(x in lane_vec(), off in 0usize..4) {
        let off = off % x.len();
        let s = &x[off..];
        let (slo, shi) = simd::with_backend(Backend::Scalar, || simd::minmax(s));
        let (vlo, vhi) = simd::with_backend(best(), || simd::minmax(s));
        prop_assert_eq!(slo.to_bits(), vlo.to_bits());
        prop_assert_eq!(shi.to_bits(), vhi.to_bits());
    }

    #[test]
    fn q8_bytes_are_bit_identical(x in lane_vec(), off in 0usize..4) {
        let off = off % x.len();
        let src = &x[off..];
        let (lo, hi) = simd::minmax(src);
        let scale = (f64::from(hi) - f64::from(lo)) / 255.0;
        if scale <= 0.0 {
            continue; // constant vector: the codec never calls the kernel
        }
        let mut q_scalar = vec![0u8; src.len()];
        let mut q_vector = vec![0u8; src.len()];
        simd::with_backend(Backend::Scalar, || {
            simd::quantize_q8(src, lo, scale, &mut q_scalar);
        });
        simd::with_backend(best(), || {
            simd::quantize_q8(src, lo, scale, &mut q_vector);
        });
        prop_assert_eq!(&q_scalar, &q_vector, "wire bytes must not depend on backend");

        // And the round trip back to f32 is bit-identical too.
        let scale32 = scale as f32;
        let mut d_scalar = vec![0.0f32; src.len()];
        let mut d_vector = vec![0.0f32; src.len()];
        simd::with_backend(Backend::Scalar, || {
            simd::dequantize_q8(&q_scalar, lo, scale32, &mut d_scalar);
        });
        simd::with_backend(best(), || {
            simd::dequantize_q8(&q_vector, lo, scale32, &mut d_vector);
        });
        for (s, v) in d_scalar.iter().zip(&d_vector) {
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sign_bytes_are_bit_identical(x in lane_vec(), off in 0usize..4) {
        let off = off % x.len();
        let src = &x[off..];
        let mut b_scalar = vec![0xAAu8; src.len().div_ceil(8)];
        let mut b_vector = vec![0x55u8; src.len().div_ceil(8)];
        simd::with_backend(Backend::Scalar, || simd::pack_signs(src, &mut b_scalar));
        simd::with_backend(best(), || simd::pack_signs(src, &mut b_vector));
        prop_assert_eq!(&b_scalar, &b_vector, "wire bytes must not depend on backend");

        let mut u_scalar = vec![0.0f32; src.len()];
        let mut u_vector = vec![0.0f32; src.len()];
        simd::with_backend(Backend::Scalar, || {
            simd::unpack_signs(&b_scalar, 0.75, &mut u_scalar);
        });
        simd::with_backend(best(), || {
            simd::unpack_signs(&b_vector, 0.75, &mut u_vector);
        });
        for (s, v) in u_scalar.iter().zip(&u_vector) {
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sq_err_sum_is_bit_identical((a, b) in lane_pair(), off in 0usize..4) {
        let off = off % a.len();
        let (sa, sb) = (&a[off..], &b[off..]);
        let scalar = simd::with_backend(Backend::Scalar, || simd::sq_err_sum(sa, sb));
        let vector = simd::with_backend(best(), || simd::sq_err_sum(sa, sb));
        prop_assert_eq!(scalar.to_bits(), vector.to_bits());
    }
}

#[test]
fn signed_zero_minmax_is_canonical_on_every_backend() {
    // f32::min(-0.0, 0.0) is fold-order sensitive; both backends must
    // canonicalize so the q8 affine header never leaks lane order.
    for x in [
        vec![-0.0f32, 0.0],
        vec![0.0f32, -0.0],
        vec![-0.0f32; 17],
        vec![0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, -0.0],
    ] {
        for backend in [Backend::Scalar, best()] {
            let (lo, hi) = simd::with_backend(backend, || simd::minmax(&x));
            assert_eq!(lo.to_bits(), 0.0f32.to_bits(), "{backend:?} {x:?}");
            assert_eq!(hi.to_bits(), 0.0f32.to_bits(), "{backend:?} {x:?}");
        }
    }
}

#[test]
fn q8_rounding_boundaries_match_rust_round() {
    // Levels landing exactly on .5 (ties away from zero) and just
    // below it — where a `floor(x + 0.5)` emulation would diverge
    // from Rust's `round`. lo = 0, scale = 1 makes the quantized
    // quantity equal the input value.
    let src: Vec<f32> = vec![
        0.5, 1.5, 2.5, 3.5, 100.5, 254.5, 0.49999997, 1.4999999, 0.50000006, 127.49999,
    ];
    let mut q_scalar = vec![0u8; src.len()];
    let mut q_vector = vec![0u8; src.len()];
    simd::with_backend(Backend::Scalar, || {
        simd::quantize_q8(&src, 0.0, 1.0, &mut q_scalar);
    });
    simd::with_backend(best(), || {
        simd::quantize_q8(&src, 0.0, 1.0, &mut q_vector);
    });
    let expected: Vec<u8> = src
        .iter()
        .map(|&v| (f64::from(v).round() as i32).clamp(0, 255) as u8)
        .collect();
    assert_eq!(q_scalar, expected);
    assert_eq!(q_vector, expected);
}

#[test]
fn matmul_is_bit_identical_across_backends_and_threads() {
    // End-to-end: the matmul kernels run through the dispatched
    // dot/axpy4 paths, above the parallel threshold, with the backend
    // pinned around the pool dispatch — the override must propagate
    // into the workers for the scalar run to actually be scalar.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(9);
    let a = Tensor::randn(&[96, 130], &mut rng);
    let b = Tensor::randn(&[130, 80], &mut rng);
    let bt = Tensor::randn(&[40, 130], &mut rng);
    let at = Tensor::randn(&[130, 96], &mut rng);
    let run = || {
        (
            a.matmul(&b).unwrap(),
            a.matmul_nt(&bt).unwrap(),
            at.matmul_tn(&b).unwrap(),
        )
    };
    let reference = simd::with_backend(Backend::Scalar, || parallel::with_threads(1, run));
    for backend in [Backend::Scalar, best()] {
        for threads in [1, 4] {
            let got = simd::with_backend(backend, || parallel::with_threads(threads, run));
            assert_eq!(
                got.0.data(),
                reference.0.data(),
                "matmul {backend:?} t={threads}"
            );
            assert_eq!(
                got.1.data(),
                reference.1.data(),
                "matmul_nt {backend:?} t={threads}"
            );
            assert_eq!(
                got.2.data(),
                reference.2.data(),
                "matmul_tn {backend:?} t={threads}"
            );
        }
    }
}
