//! Shape arithmetic for dense row-major tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::TensorError;

/// The dimensions of a dense row-major tensor.
///
/// A `Shape` is an ordered list of axis lengths. The rightmost axis is
/// the fastest-varying one (row-major / C order).
///
/// ```
/// use oasis_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from axis lengths.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The axis lengths as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Length of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Total number of elements (product of dims; 1 for a scalar shape).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank differs from the shape rank or
    /// any component is out of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "flat_index",
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let strides = self.strides();
        let mut flat = 0usize;
        for (axis, (&i, (&d, &s))) in index
            .iter()
            .zip(self.dims.iter().zip(strides.iter()))
            .enumerate()
        {
            if i >= d {
                let _ = axis;
                return Err(TensorError::IndexOutOfRange { index: i, bound: d });
            }
            flat += i * s;
        }
        Ok(flat)
    }

    /// Whether two shapes are elementwise-compatible (identical dims).
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_shape_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn strides_of_vector() {
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = vec![false; s.numel()];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let f = s.flat_index(&[i, j, k]).unwrap();
                    assert!(!seen[f], "offset {f} visited twice");
                    seen[f] = true;
                }
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn flat_index_rejects_bad_rank() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.flat_index(&[1]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.flat_index(&[2, 0]),
            Err(TensorError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::new(&[]).to_string(), "()");
    }

    #[test]
    fn zero_dim_yields_zero_numel() {
        assert_eq!(Shape::new(&[3, 0, 2]).numel(), 0);
    }
}
