//! Portable scalar reference kernels.
//!
//! Every SIMD backend is specified against these implementations:
//! same per-lane operation sequence, same fixed lane-combine order,
//! same sequential tail — so a vector backend that performs the
//! identical IEEE operations per lane (mul then add, never a fused
//! multiply-add) reproduces these results *bit for bit*. That
//! invariance is what lets the golden-fixture and determinism suites
//! pass under every `OASIS_SIMD` setting.
//!
//! The loops are written with fixed-width independent accumulator
//! lanes (the shape LLVM can auto-vectorize without `-ffast-math`),
//! so the "scalar" backend is itself reasonably fast — the explicit
//! backends buy the full register width plus runtime dispatch.

/// Lane width every reduction kernel is blocked to. Vector backends
/// must use the same logical lane count (one f32x8, two f32x4, …) to
/// stay bit-identical.
pub(crate) const LANES: usize = 8;

/// Eight-lane unrolled dot product.
///
/// The eight independent accumulators break the serial float-add
/// dependency chain. The lane-combine order is fixed, so results are
/// deterministic (but differ in the last ulp from a strictly
/// sequential sum).
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let tail: f32 = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(&x, &y)| x * y)
        .sum();
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// In-place single-coefficient AXPY: `out[j] += alpha * x[j]`.
pub(crate) fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len(), "axpy requires equal lengths");
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Register-blocked AXPY accumulation of four right-hand rows into
/// one output row: `out += c0·b0 + c1·b1 + c2·b2 + c3·b3`.
///
/// Four k-steps share one traversal of the output row, quartering the
/// store traffic of the plain rank-1 update.
pub(crate) fn axpy4(
    out_row: &mut [f32],
    coeff: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let [a0, a1, a2, a3] = coeff;
    for (j, o) in out_row.iter_mut().enumerate() {
        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
}

/// Two-row variant of [`axpy4`]: both output rows consume the same
/// four right-hand rows in one pass, halving their read traffic (the
/// dominant cost when the right-hand matrix outgrows cache). Each
/// row's accumulation sequence is identical to [`axpy4`]'s.
#[allow(clippy::too_many_arguments)]
pub(crate) fn axpy4x2(
    o0: &mut [f32],
    o1: &mut [f32],
    c0: [f32; 4],
    c1: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    for (j, (x0, x1)) in o0.iter_mut().zip(o1.iter_mut()).enumerate() {
        let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
        *x0 += c0[0] * v0 + c0[1] * v1 + c0[2] * v2 + c0[3] * v3;
        *x1 += c1[0] * v0 + c1[1] * v1 + c1[2] * v2 + c1[3] * v3;
    }
}

/// Canonicalizes a signed zero to `+0.0` so the min/max result does
/// not depend on fold order (`f32::min(-0.0, 0.0)` is
/// order-sensitive; everything else over finite floats is not).
fn canonical_zero(v: f32) -> f32 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// `(min, max)` over `x`, `(+∞, −∞)` when empty.
///
/// Precondition: all values finite (NaN would poison the fold
/// differently per backend). Signed zeros canonicalize to `+0.0`.
pub(crate) fn minmax(x: &[f32]) -> (f32, f32) {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (canonical_zero(lo), canonical_zero(hi))
}

/// Affine int8 quantization: `dst[i] = round((src[i] − lo) / scale)`
/// clamped to `0..=255`, computed in f64.
///
/// Preconditions: `scale > 0`, every `src[i]` finite and `≥ lo` (the
/// quantity rounded is therefore non-negative — the domain on which
/// the vector backends' round-half-away-from-zero emulation is exact).
pub(crate) fn quantize_q8(src: &[f32], lo: f32, scale: f64, dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len(), "quantize_q8 requires equal lengths");
    debug_assert!(scale > 0.0, "quantize_q8 requires a positive scale");
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (((f64::from(v) - f64::from(lo)) / scale).round() as i32).clamp(0, 255) as u8;
    }
}

/// Affine int8 dequantization: `out[i] = lo + scale · q[i]` in f64,
/// clamped into f32's finite range (for extreme updates
/// `lo + 255·scale` can land one rounding step past `f32::MAX`, and
/// the decoder must never emit inf/NaN).
pub(crate) fn dequantize_q8(q: &[u8], lo: f32, scale: f32, out: &mut [f32]) {
    debug_assert_eq!(q.len(), out.len(), "dequantize_q8 requires equal lengths");
    for (o, &q) in out.iter_mut().zip(q) {
        let v = f64::from(lo) + f64::from(scale) * f64::from(q);
        *o = v.clamp(f64::from(f32::MIN), f64::from(f32::MAX)) as f32;
    }
}

/// Packs one sign bit per element, LSB-first within each byte: bit
/// `i % 8` of `bits[i / 8]` is set iff `src[i]` has a positive sign
/// (i.e. the IEEE sign bit is clear — `+0.0` counts as positive).
/// Every byte of `bits` is fully written; tail padding bits are 0.
pub(crate) fn pack_signs(src: &[f32], bits: &mut [u8]) {
    debug_assert_eq!(
        bits.len(),
        src.len().div_ceil(8),
        "pack_signs destination must hold one bit per element"
    );
    bits.fill(0);
    for (i, &v) in src.iter().enumerate() {
        if v.is_sign_positive() {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
}

/// Expands packed sign bits back to `±mag` (bit set ⇒ `+mag`).
pub(crate) fn unpack_signs(bits: &[u8], mag: f32, out: &mut [f32]) {
    debug_assert!(
        bits.len() >= out.len().div_ceil(8),
        "unpack_signs needs one bit per output element"
    );
    let neg = -mag;
    for (i, o) in out.iter_mut().enumerate() {
        *o = if bits[i / 8] & (1 << (i % 8)) != 0 {
            mag
        } else {
            neg
        };
    }
}

/// Sum of squared differences `Σ (a[i] − b[i])²` accumulated in f64,
/// blocked into [`LANES`] independent lanes with the same fixed
/// combine order as [`dot`] (then a sequential tail) — the MSE
/// reduction behind PSNR scoring.
pub(crate) fn sq_err_sum(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_err_sum requires equal lengths");
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            let d = f64::from(xa[l]) - f64::from(xb[l]);
            acc[l] += d * d;
        }
    }
    let mut sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = f64::from(x) - f64::from(y);
        sum += d * d;
    }
    sum
}
