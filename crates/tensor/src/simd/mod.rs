//! Runtime-dispatched SIMD kernels for the workspace's hot loops.
//!
//! The hot inner loops — matmul dot/axpy, q8 quantize/dequantize,
//! sign pack/unpack, MSE reduction — are implemented once per
//! backend: AVX2 f32x8 on `x86_64` (runtime-detected), NEON f32x4
//! pairs on `aarch64`, and a portable scalar reference everywhere.
//! Dispatch is resolved **once per process** from the `OASIS_SIMD`
//! environment variable (`auto` | `avx2` | `neon` | `scalar`,
//! mirroring `OASIS_THREADS`) plus CPU feature detection, then read
//! from a [`std::sync::OnceLock`]; per-call overhead is one relaxed
//! atomic load and a thread-local check.
//!
//! ## Bit-exactness contract
//!
//! The scalar backend is the reference semantics. Vector backends replicate
//! its exact per-lane IEEE operation sequence (separate multiply and
//! add — never FMA — same fixed lane-combine order, same sequential
//! tails), so **every kernel is bit-identical across backends**, not
//! merely close: golden fixtures, thread-determinism suites, and
//! bytes-on-wire (q8/sign payloads are part of the threat model)
//! hold under any `OASIS_SIMD` setting. The parity suite
//! (`tests/simd_parity.rs`) pins this across lane-boundary shapes.
//!
//! ## Safety
//!
//! This module is the only place in the workspace that contains
//! `unsafe`: calling a `#[target_feature]` kernel requires the CPU
//! feature, and the invariant is enforced structurally — a
//! feature-gated [`Backend`] value is only obtainable after its
//! detection predicate passed ([`Backend::detect`] checks
//! `is_x86_feature_detected!`, [`with_backend`] asserts
//! [`Backend::is_available`]). Each backend file documents this at
//! the top; the dispatchers carry the per-call SAFETY notes.

use std::cell::Cell;
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
pub(crate) mod scalar;

/// A SIMD instruction-set backend the kernels can dispatch to.
///
/// All variants exist on every architecture so `OASIS_SIMD` values
/// parse uniformly; [`Backend::is_available`] reports whether the
/// current CPU can actually execute a variant, and only available
/// backends can become active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// AVX2 f32x8 kernels (`x86_64` with runtime-detected AVX2).
    Avx2,
    /// NEON f32x4 kernels (`aarch64`, where NEON is architectural).
    Neon,
    /// Portable scalar reference kernels (always available).
    Scalar,
}

impl Backend {
    /// Best backend the current CPU supports.
    pub fn detect() -> Backend {
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
        #[cfg(target_arch = "aarch64")]
        return Backend::Neon;
        #[allow(unreachable_code)]
        Backend::Scalar
    }

    /// Whether this backend can execute on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
            Backend::Neon => cfg!(target_arch = "aarch64"),
            Backend::Scalar => true,
        }
    }

    /// Stable lowercase name (the `OASIS_SIMD` spelling); used in
    /// bench records and logs.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
            Backend::Scalar => "scalar",
        }
    }
}

/// Parses an `OASIS_SIMD` value. `Some(backend)` forces that backend
/// *if available*; `None` means auto-detect (also the fallback for
/// unknown strings and for explicit choices the CPU lacks — a config
/// asking for `avx2` on an ARM host degrades gracefully rather than
/// aborting every process).
fn parse_choice(v: &str) -> Option<Backend> {
    let forced = match v.trim().to_ascii_lowercase().as_str() {
        "avx2" => Backend::Avx2,
        "neon" => Backend::Neon,
        "scalar" => return Some(Backend::Scalar),
        _ => return None, // "auto", empty, unknown
    };
    forced.is_available().then_some(forced)
}

/// The process-wide backend: `OASIS_SIMD` if it names an available
/// backend, otherwise [`Backend::detect`]. Resolved once.
pub fn resolved() -> Backend {
    static RESOLVED: OnceLock<Backend> = OnceLock::new();
    *RESOLVED.get_or_init(|| {
        std::env::var("OASIS_SIMD")
            .ok()
            .and_then(|v| parse_choice(&v))
            .unwrap_or_else(Backend::detect)
    })
}

thread_local! {
    /// Per-thread override installed by [`with_backend`].
    static BACKEND_OVERRIDE: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend kernel calls on the current thread will use: a
/// [`with_backend`] override if one is installed, else [`resolved`].
pub fn active() -> Backend {
    BACKEND_OVERRIDE.get().unwrap_or_else(resolved)
}

/// Runs `f` with the kernel backend pinned to `backend` on the
/// current thread, restoring the previous setting on exit — including
/// on panic.
///
/// This is the process-internal way to compare backends (the perf
/// suite's `_simd`/`_scalar` record pairs, the parity tests): unlike
/// mutating `OASIS_SIMD`, it is race-free under concurrent tests.
/// Parallel fronts propagate the override into pool workers, so a
/// pinned region stays pinned even when the kernel inside it
/// dispatches to the pool.
///
/// # Panics
///
/// Panics if `backend` is not [available](Backend::is_available) on
/// this CPU — pinning an unsupported instruction set would otherwise
/// be undefined behavior at the first kernel call.
pub fn with_backend<R>(backend: Backend, f: impl FnOnce() -> R) -> R {
    assert!(
        backend.is_available(),
        "backend {} is not available on this CPU",
        backend.label()
    );
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BACKEND_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(BACKEND_OVERRIDE.replace(Some(backend)));
    f()
}

/// The current thread's [`with_backend`] override, if any — captured
/// by parallel fronts at dispatch so pool workers inherit it.
pub(crate) fn thread_override() -> Option<Backend> {
    BACKEND_OVERRIDE.get()
}

/// Runs `f` with the given override installed (restoring on exit) —
/// the worker-side half of override propagation. An override captured
/// by [`thread_override`] was validated by [`with_backend`], so no
/// availability re-check is needed.
pub(crate) fn with_override<R>(o: Option<Backend>, f: impl FnOnce() -> R) -> R {
    match o {
        Some(b) => with_backend(b, f),
        None => f(),
    }
}

/// Dispatches one kernel call to the active backend.
///
/// SAFETY: the vector arms require their instruction set, and are
/// only reachable through a `Backend` value whose detection predicate
/// passed (see module docs) — `Backend::Avx2`/`Backend::Neon` cannot
/// become active on a CPU that lacks them.
macro_rules! dispatch {
    ($kernel:ident ( $($arg:expr),* $(,)? )) => {
        match active() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2 is only constructed after
            // `is_x86_feature_detected!("avx2")` returned true.
            Backend::Avx2 => unsafe { avx2::$kernel($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is architecturally guaranteed on aarch64.
            Backend::Neon => unsafe { neon::$kernel($($arg),*) },
            _ => scalar::$kernel($($arg),*),
        }
    };
}

/// Dot product `Σ a[i]·b[i]` with eight-lane blocked accumulation
/// (fixed combine order, sequential tail) — deterministic and
/// bit-identical across backends and thread counts.
///
/// Both slices must have the same length (debug-asserted; release
/// builds reduce over the shorter length).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dispatch!(dot(a, b))
}

/// In-place AXPY `out[i] += alpha · x[i]`.
///
/// Both slices must have the same length (debug-asserted).
pub fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    dispatch!(axpy(out, alpha, x))
}

/// Four-row AXPY accumulation
/// `out += c0·b0 + c1·b1 + c2·b2 + c3·b3`; all `b*` slices must be at
/// least as long as `out_row`.
pub(crate) fn axpy4(
    out_row: &mut [f32],
    coeff: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    dispatch!(axpy4(out_row, coeff, b0, b1, b2, b3))
}

/// Two-output-row variant of [`axpy4`]: both rows consume the same
/// four right-hand rows in one pass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn axpy4x2(
    o0: &mut [f32],
    o1: &mut [f32],
    c0: [f32; 4],
    c1: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    dispatch!(axpy4x2(o0, o1, c0, c1, b0, b1, b2, b3))
}

/// `(min, max)` over `x`; `(+∞, −∞)` when empty. All values must be
/// finite (NaN poisons the fold differently per backend); signed
/// zeros canonicalize to `+0.0` so the result is fold-order free.
pub fn minmax(x: &[f32]) -> (f32, f32) {
    dispatch!(minmax(x))
}

/// Affine int8 quantization `dst[i] = round((src[i] − lo) / scale)`
/// clamped to `0..=255`, computed in f64 with round-half-away-from-
/// zero (Rust [`f64::round`] semantics).
///
/// Preconditions (debug-asserted where cheap): `src.len() ==
/// dst.len()`, `scale > 0` and finite, every `src[i]` finite and
/// `≥ lo`. Output bytes are bit-identical across backends — they go
/// on the wire.
pub fn quantize_q8(src: &[f32], lo: f32, scale: f64, dst: &mut [u8]) {
    dispatch!(quantize_q8(src, lo, scale, dst))
}

/// Affine int8 dequantization `out[i] = lo + scale · q[i]` in f64,
/// clamped into f32's finite range. `q.len() == out.len()` required
/// (debug-asserted).
pub fn dequantize_q8(q: &[u8], lo: f32, scale: f32, out: &mut [f32]) {
    dispatch!(dequantize_q8(q, lo, scale, out))
}

/// Packs one IEEE sign bit per element, LSB-first within each byte
/// (bit set ⇔ sign positive, `+0.0` counts as positive). `bits` must
/// be exactly `src.len().div_ceil(8)` bytes (debug-asserted); every
/// byte is fully written, tail padding bits are 0. Bit-identical
/// across backends — these bytes go on the wire.
pub fn pack_signs(src: &[f32], bits: &mut [u8]) {
    dispatch!(pack_signs(src, bits))
}

/// Expands packed sign bits back to `±mag` (bit set ⇒ `+mag`).
/// `bits` must hold at least `out.len()` bits (debug-asserted).
pub fn unpack_signs(bits: &[u8], mag: f32, out: &mut [f32]) {
    dispatch!(unpack_signs(bits, mag, out))
}

/// Sum of squared differences `Σ (a[i] − b[i])²` accumulated in f64
/// with eight-lane blocking (fixed combine order, sequential tail) —
/// the MSE reduction behind PSNR scoring. Both slices must have the
/// same length (debug-asserted).
pub fn sq_err_sum(a: &[f32], b: &[f32]) -> f64 {
    dispatch!(sq_err_sum(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(Backend::Scalar.is_available());
        assert!(Backend::detect().is_available());
    }

    #[test]
    fn labels_are_the_env_spellings() {
        assert_eq!(Backend::Avx2.label(), "avx2");
        assert_eq!(Backend::Neon.label(), "neon");
        assert_eq!(Backend::Scalar.label(), "scalar");
    }

    #[test]
    fn oasis_simd_choices_parse() {
        // Pure parser test — mutating the process environment from a
        // multithreaded test binary would race concurrent `getenv`.
        assert_eq!(parse_choice("scalar"), Some(Backend::Scalar));
        assert_eq!(parse_choice(" SCALAR "), Some(Backend::Scalar));
        assert_eq!(parse_choice("auto"), None);
        assert_eq!(parse_choice(""), None);
        assert_eq!(parse_choice("sse9"), None, "unknown falls back to auto");
        // Explicit requests degrade to auto when the CPU lacks them;
        // when available they are honored.
        for (s, b) in [("avx2", Backend::Avx2), ("neon", Backend::Neon)] {
            let parsed = parse_choice(s);
            if b.is_available() {
                assert_eq!(parsed, Some(b));
            } else {
                assert_eq!(parsed, None);
            }
        }
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        let outside = active();
        let inside = with_backend(Backend::Scalar, active);
        assert_eq!(inside, Backend::Scalar);
        assert_eq!(active(), outside, "override removed on exit");
    }

    #[test]
    fn with_backend_restores_on_panic() {
        let outside = active();
        let result = std::panic::catch_unwind(|| {
            with_backend(Backend::Scalar, || panic!("inner"));
        });
        assert!(result.is_err());
        assert_eq!(active(), outside);
    }

    #[test]
    fn nested_overrides_unwind_in_order() {
        let best = Backend::detect();
        with_backend(best, || {
            assert_eq!(active(), best);
            with_backend(Backend::Scalar, || assert_eq!(active(), Backend::Scalar));
            assert_eq!(active(), best);
        });
    }

    #[test]
    #[cfg(not(target_arch = "x86_64"))]
    fn pinning_unavailable_backend_panics() {
        let result = std::panic::catch_unwind(|| with_backend(Backend::Avx2, || ()));
        assert!(result.is_err());
    }

    #[test]
    fn dispatched_dot_matches_scalar_reference() {
        let a: Vec<f32> = (0..67).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..67).map(|i| (i as f32 * 0.11).cos()).collect();
        let reference = scalar::dot(&a, &b);
        let best = with_backend(Backend::detect(), || dot(&a, &b));
        let forced_scalar = with_backend(Backend::Scalar, || dot(&a, &b));
        assert_eq!(best.to_bits(), reference.to_bits());
        assert_eq!(forced_scalar.to_bits(), reference.to_bits());
    }
}
