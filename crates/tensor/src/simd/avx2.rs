//! AVX2 kernels (x86_64, runtime-detected).
//!
//! Every function performs, per lane, the *identical sequence of IEEE
//! operations* as its [`super::scalar`] reference: separate multiply
//! then add (never a fused multiply-add, which would round once
//! instead of twice), the same fixed lane-combine order for
//! reductions, and the same sequential scalar tail. The parity suite
//! (`crates/tensor/tests/simd_parity.rs`) pins the resulting
//! bit-identity; if a kernel here is ever "optimized" with FMA or a
//! horizontal-add shuffle, that suite is the tripwire.
//!
//! # Safety
//!
//! Every function is `#[target_feature(enable = "avx2")]` and thus
//! unsafe to call: the caller must guarantee the CPU supports AVX2.
//! The only callers are the dispatchers in [`super`], which reach
//! this module exclusively through a [`super::Backend::Avx2`] value,
//! and `Backend::Avx2` is only ever constructed after
//! `is_x86_feature_detected!("avx2")` returned true (at env
//! resolution or via the availability assert in
//! [`super::with_backend`]). No other invariant is required: all
//! loads/stores use unaligned forms, and slice bounds are the same
//! ones the scalar reference checks.
#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;

use super::scalar;

/// Reads the 8 lanes of an f32x8 register into an array (for scalar
/// fixed-order combines).
#[target_feature(enable = "avx2")]
unsafe fn lanes_f32(v: __m256) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    _mm256_storeu_ps(out.as_mut_ptr(), v);
    out
}

/// Reads the 4 lanes of an f64x4 register into an array.
#[target_feature(enable = "avx2")]
unsafe fn lanes_f64(v: __m256d) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    _mm256_storeu_pd(out.as_mut_ptr(), v);
    out
}

/// See [`scalar::dot`]: one f32x8 accumulator holds the eight scalar
/// lanes; mul+add per chunk, fixed combine, sequential tail.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let mut acc = _mm256_setzero_ps();
    for c in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(c * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(c * 8));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
    }
    let l = lanes_f32(acc);
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        tail += a[i] * b[i];
    }
    ((l[0] + l[4]) + (l[1] + l[5])) + ((l[2] + l[6]) + (l[3] + l[7])) + tail
}

/// See [`scalar::axpy`].
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len(), "axpy requires equal lengths");
    let n = out.len().min(x.len());
    let chunks = n / 8;
    let va = _mm256_set1_ps(alpha);
    for c in 0..chunks {
        let p = out.as_mut_ptr().add(c * 8);
        let vo = _mm256_loadu_ps(p);
        let vx = _mm256_loadu_ps(x.as_ptr().add(c * 8));
        _mm256_storeu_ps(p, _mm256_add_ps(vo, _mm256_mul_ps(va, vx)));
    }
    for i in chunks * 8..n {
        out[i] += alpha * x[i];
    }
}

/// See [`scalar::axpy4`]: per output lane
/// `((c0·b0 + c1·b1) + c2·b2) + c3·b3`, added once to the output.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn axpy4(
    out_row: &mut [f32],
    coeff: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = out_row.len();
    let chunks = n / 8;
    let va0 = _mm256_set1_ps(coeff[0]);
    let va1 = _mm256_set1_ps(coeff[1]);
    let va2 = _mm256_set1_ps(coeff[2]);
    let va3 = _mm256_set1_ps(coeff[3]);
    for c in 0..chunks {
        let j = c * 8;
        let p = out_row.as_mut_ptr().add(j);
        let mut s = _mm256_add_ps(
            _mm256_mul_ps(va0, _mm256_loadu_ps(b0.as_ptr().add(j))),
            _mm256_mul_ps(va1, _mm256_loadu_ps(b1.as_ptr().add(j))),
        );
        s = _mm256_add_ps(s, _mm256_mul_ps(va2, _mm256_loadu_ps(b2.as_ptr().add(j))));
        s = _mm256_add_ps(s, _mm256_mul_ps(va3, _mm256_loadu_ps(b3.as_ptr().add(j))));
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), s));
    }
    if chunks * 8 < n {
        scalar::axpy4(
            &mut out_row[chunks * 8..],
            coeff,
            &b0[chunks * 8..],
            &b1[chunks * 8..],
            &b2[chunks * 8..],
            &b3[chunks * 8..],
        );
    }
}

/// See [`scalar::axpy4x2`]: the four right-hand chunks are loaded
/// once and feed both output rows.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn axpy4x2(
    o0: &mut [f32],
    o1: &mut [f32],
    c0: [f32; 4],
    c1: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    debug_assert_eq!(o0.len(), o1.len(), "axpy4x2 rows must match");
    let n = o0.len();
    let chunks = n / 8;
    let a = [
        _mm256_set1_ps(c0[0]),
        _mm256_set1_ps(c0[1]),
        _mm256_set1_ps(c0[2]),
        _mm256_set1_ps(c0[3]),
    ];
    let b = [
        _mm256_set1_ps(c1[0]),
        _mm256_set1_ps(c1[1]),
        _mm256_set1_ps(c1[2]),
        _mm256_set1_ps(c1[3]),
    ];
    for c in 0..chunks {
        let j = c * 8;
        let v0 = _mm256_loadu_ps(b0.as_ptr().add(j));
        let v1 = _mm256_loadu_ps(b1.as_ptr().add(j));
        let v2 = _mm256_loadu_ps(b2.as_ptr().add(j));
        let v3 = _mm256_loadu_ps(b3.as_ptr().add(j));
        let p0 = o0.as_mut_ptr().add(j);
        let p1 = o1.as_mut_ptr().add(j);
        let mut s0 = _mm256_add_ps(_mm256_mul_ps(a[0], v0), _mm256_mul_ps(a[1], v1));
        s0 = _mm256_add_ps(s0, _mm256_mul_ps(a[2], v2));
        s0 = _mm256_add_ps(s0, _mm256_mul_ps(a[3], v3));
        _mm256_storeu_ps(p0, _mm256_add_ps(_mm256_loadu_ps(p0), s0));
        let mut s1 = _mm256_add_ps(_mm256_mul_ps(b[0], v0), _mm256_mul_ps(b[1], v1));
        s1 = _mm256_add_ps(s1, _mm256_mul_ps(b[2], v2));
        s1 = _mm256_add_ps(s1, _mm256_mul_ps(b[3], v3));
        _mm256_storeu_ps(p1, _mm256_add_ps(_mm256_loadu_ps(p1), s1));
    }
    if chunks * 8 < n {
        scalar::axpy4x2(
            &mut o0[chunks * 8..],
            &mut o1[chunks * 8..],
            c0,
            c1,
            &b0[chunks * 8..],
            &b1[chunks * 8..],
            &b2[chunks * 8..],
            &b3[chunks * 8..],
        );
    }
}

/// See [`scalar::minmax`]. min/max over finite floats is fold-order
/// independent except for signed zeros, which both backends
/// canonicalize to `+0.0` after the fold.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn minmax(x: &[f32]) -> (f32, f32) {
    let n = x.len();
    let chunks = n / 8;
    let mut vlo = _mm256_set1_ps(f32::INFINITY);
    let mut vhi = _mm256_set1_ps(f32::NEG_INFINITY);
    for c in 0..chunks {
        let v = _mm256_loadu_ps(x.as_ptr().add(c * 8));
        vlo = _mm256_min_ps(vlo, v);
        vhi = _mm256_max_ps(vhi, v);
    }
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for l in lanes_f32(vlo) {
        lo = lo.min(l);
    }
    for l in lanes_f32(vhi) {
        hi = hi.max(l);
    }
    for &v in &x[chunks * 8..] {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (
        if lo == 0.0 { 0.0 } else { lo },
        if hi == 0.0 { 0.0 } else { hi },
    )
}

/// See [`scalar::quantize_q8`].
///
/// Rust's `f64::round` rounds half away from zero, which no AVX
/// rounding mode provides; for the kernel's non-negative domain it is
/// emulated exactly as `floor(x) + (x − floor(x) ≥ 0.5)`. The
/// fraction `x − floor(x)` is exact for every non-negative finite x
/// (Sterbenz for x ≥ 1, trivially for x < 1), so the emulation agrees
/// with `round` on every input — including the half-ulp-below-half
/// values where the classic `floor(x + 0.5)` shortcut is wrong.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn quantize_q8(src: &[f32], lo: f32, scale: f64, dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len(), "quantize_q8 requires equal lengths");
    debug_assert!(scale > 0.0, "quantize_q8 requires a positive scale");
    let n = src.len();
    let chunks = n / 8;
    let vlo = _mm256_set1_pd(f64::from(lo));
    let vscale = _mm256_set1_pd(scale);
    let vhalf = _mm256_set1_pd(0.5);
    let vone = _mm256_set1_pd(1.0);
    let vmax = _mm256_set1_pd(255.0);
    let vzero = _mm256_setzero_pd();
    for c in 0..chunks {
        let v8 = src.as_ptr().add(c * 8);
        let quant4 = |p: *const f32| -> __m128i {
            let x = _mm256_div_pd(_mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(p)), vlo), vscale);
            let fl = _mm256_floor_pd(x);
            let frac = _mm256_sub_pd(x, fl);
            let bump = _mm256_and_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(frac, vhalf), vone);
            let rounded = _mm256_add_pd(fl, bump);
            let clamped = _mm256_max_pd(_mm256_min_pd(rounded, vmax), vzero);
            _mm256_cvtpd_epi32(clamped)
        };
        let ia = quant4(v8);
        let ib = quant4(v8.add(4));
        let packed16 = _mm_packs_epi32(ia, ib);
        let packed8 = _mm_packus_epi16(packed16, _mm_setzero_si128());
        _mm_storel_epi64(dst.as_mut_ptr().add(c * 8).cast(), packed8);
    }
    if chunks * 8 < n {
        scalar::quantize_q8(&src[chunks * 8..], lo, scale, &mut dst[chunks * 8..]);
    }
}

/// See [`scalar::dequantize_q8`]: `lo + scale·q` in f64 (mul then
/// add), clamped into f32's finite range, rounded to f32 by the
/// correctly-rounded `vcvtpd2ps`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn dequantize_q8(q: &[u8], lo: f32, scale: f32, out: &mut [f32]) {
    debug_assert_eq!(q.len(), out.len(), "dequantize_q8 requires equal lengths");
    let n = q.len();
    let chunks = n / 8;
    let vlo = _mm256_set1_pd(f64::from(lo));
    let vscale = _mm256_set1_pd(f64::from(scale));
    let vmin = _mm256_set1_pd(f64::from(f32::MIN));
    let vmax = _mm256_set1_pd(f64::from(f32::MAX));
    for c in 0..chunks {
        let bytes = _mm_loadl_epi64(q.as_ptr().add(c * 8).cast());
        let deq4 = |i32x4: __m128i| -> __m128 {
            let v = _mm256_add_pd(vlo, _mm256_mul_pd(vscale, _mm256_cvtepi32_pd(i32x4)));
            _mm256_cvtpd_ps(_mm256_max_pd(_mm256_min_pd(v, vmax), vmin))
        };
        let fa = deq4(_mm_cvtepu8_epi32(bytes));
        let fb = deq4(_mm_cvtepu8_epi32(_mm_srli_si128::<4>(bytes)));
        _mm256_storeu_ps(out.as_mut_ptr().add(c * 8), _mm256_set_m128(fb, fa));
    }
    if chunks * 8 < n {
        scalar::dequantize_q8(&q[chunks * 8..], lo, scale, &mut out[chunks * 8..]);
    }
}

/// See [`scalar::pack_signs`]: `movemask` extracts the eight IEEE
/// sign bits (lane i → bit i) in one instruction; positive means the
/// sign bit is *clear*, so the stored byte is the complement.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn pack_signs(src: &[f32], bits: &mut [u8]) {
    debug_assert_eq!(
        bits.len(),
        src.len().div_ceil(8),
        "pack_signs destination must hold one bit per element"
    );
    let n = src.len();
    let chunks = n / 8;
    for (c, bit) in bits[..chunks].iter_mut().enumerate() {
        let mask = _mm256_movemask_ps(_mm256_loadu_ps(src.as_ptr().add(c * 8)));
        *bit = !(mask as u8);
    }
    if chunks * 8 < n {
        scalar::pack_signs(&src[chunks * 8..], &mut bits[chunks..]);
    }
}

/// See [`scalar::unpack_signs`]: each byte is broadcast, tested
/// against per-lane bit masks, and blended between `+mag` and `−mag`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn unpack_signs(bits: &[u8], mag: f32, out: &mut [f32]) {
    debug_assert!(
        bits.len() >= out.len().div_ceil(8),
        "unpack_signs needs one bit per output element"
    );
    let n = out.len();
    let chunks = n / 8;
    let vpos = _mm256_set1_ps(mag);
    let vneg = _mm256_set1_ps(-mag);
    let lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    for (c, &byte) in bits[..chunks].iter().enumerate() {
        let vb = _mm256_set1_epi32(i32::from(byte));
        let hit = _mm256_cmpeq_epi32(_mm256_and_si256(vb, lane_bits), lane_bits);
        let v = _mm256_blendv_ps(vneg, vpos, _mm256_castsi256_ps(hit));
        _mm256_storeu_ps(out.as_mut_ptr().add(c * 8), v);
    }
    if chunks * 8 < n {
        scalar::unpack_signs(&bits[chunks..], mag, &mut out[chunks * 8..]);
    }
}

/// See [`scalar::sq_err_sum`]: two f64x4 accumulators carry the eight
/// scalar lanes (low register = lanes 0–3, high = 4–7); the combine
/// is done scalarly in the reference's fixed order.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sq_err_sum(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_err_sum requires equal lengths");
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let mut acc_lo = _mm256_setzero_pd();
    let mut acc_hi = _mm256_setzero_pd();
    for c in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(c * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(c * 8));
        let d_lo = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm256_castps256_ps128(va)),
            _mm256_cvtps_pd(_mm256_castps256_ps128(vb)),
        );
        let d_hi = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(va)),
            _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(vb)),
        );
        acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
        acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
    }
    let l = lanes_f64(acc_lo);
    let h = lanes_f64(acc_hi);
    let mut sum = ((l[0] + h[0]) + (l[1] + h[1])) + ((l[2] + h[2]) + (l[3] + h[3]));
    for i in chunks * 8..n {
        let d = f64::from(a[i]) - f64::from(b[i]);
        sum += d * d;
    }
    sum
}
