//! NEON kernels (aarch64, where Advanced SIMD is architectural).
//!
//! Same bit-exactness contract as the AVX2 backend: per lane, the
//! identical IEEE operation sequence as [`super::scalar`] — separate
//! `vmulq`/`vaddq` (never `vfmaq`, which rounds once instead of
//! twice), the reference's fixed lane-combine order, sequential
//! tails. The eight scalar accumulator lanes map onto two `float32x4`
//! registers (low = lanes 0–3, high = 4–7).
//!
//! The f64- and bit-manipulation kernels (q8 quantize/dequantize,
//! sign pack/unpack, squared-error sum) delegate to the scalar
//! reference: their cost is dominated by f64 arithmetic NEON widens
//! only 2×, and delegation keeps the bytes-on-wire guarantee trivial
//! on hardware this workspace's CI cannot exercise.
//!
//! # Safety
//!
//! Functions here are `unsafe` only for symmetry with the dispatch
//! macro (NEON is baseline on aarch64, so `target_feature` is always
//! satisfied); all loads/stores use unaligned intrinsics and slice
//! bounds mirror the scalar reference's.
#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::aarch64::*;

use super::scalar;

/// See [`scalar::dot`]: two f32x4 accumulators carry the eight scalar
/// lanes; the pairwise combine `vaddq(lo, hi)` reproduces the
/// reference's `acc[l] + acc[l+4]` sums, then the fixed scalar fold.
pub(crate) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let mut acc_lo = vdupq_n_f32(0.0);
    let mut acc_hi = vdupq_n_f32(0.0);
    for c in 0..chunks {
        let p_a = a.as_ptr().add(c * 8);
        let p_b = b.as_ptr().add(c * 8);
        acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(p_a), vld1q_f32(p_b)));
        acc_hi = vaddq_f32(
            acc_hi,
            vmulq_f32(vld1q_f32(p_a.add(4)), vld1q_f32(p_b.add(4))),
        );
    }
    let s = vaddq_f32(acc_lo, acc_hi);
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        tail += a[i] * b[i];
    }
    (vgetq_lane_f32::<0>(s) + vgetq_lane_f32::<1>(s))
        + (vgetq_lane_f32::<2>(s) + vgetq_lane_f32::<3>(s))
        + tail
}

/// See [`scalar::axpy`].
pub(crate) unsafe fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len(), "axpy requires equal lengths");
    let n = out.len().min(x.len());
    let chunks = n / 4;
    let va = vdupq_n_f32(alpha);
    for c in 0..chunks {
        let p = out.as_mut_ptr().add(c * 4);
        let vo = vld1q_f32(p);
        let vx = vld1q_f32(x.as_ptr().add(c * 4));
        vst1q_f32(p, vaddq_f32(vo, vmulq_f32(va, vx)));
    }
    for i in chunks * 4..n {
        out[i] += alpha * x[i];
    }
}

/// See [`scalar::axpy4`]: per output lane
/// `((c0·b0 + c1·b1) + c2·b2) + c3·b3`, added once to the output.
pub(crate) unsafe fn axpy4(
    out_row: &mut [f32],
    coeff: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = out_row.len();
    let chunks = n / 4;
    let va0 = vdupq_n_f32(coeff[0]);
    let va1 = vdupq_n_f32(coeff[1]);
    let va2 = vdupq_n_f32(coeff[2]);
    let va3 = vdupq_n_f32(coeff[3]);
    for c in 0..chunks {
        let j = c * 4;
        let p = out_row.as_mut_ptr().add(j);
        let mut s = vaddq_f32(
            vmulq_f32(va0, vld1q_f32(b0.as_ptr().add(j))),
            vmulq_f32(va1, vld1q_f32(b1.as_ptr().add(j))),
        );
        s = vaddq_f32(s, vmulq_f32(va2, vld1q_f32(b2.as_ptr().add(j))));
        s = vaddq_f32(s, vmulq_f32(va3, vld1q_f32(b3.as_ptr().add(j))));
        vst1q_f32(p, vaddq_f32(vld1q_f32(p), s));
    }
    if chunks * 4 < n {
        scalar::axpy4(
            &mut out_row[chunks * 4..],
            coeff,
            &b0[chunks * 4..],
            &b1[chunks * 4..],
            &b2[chunks * 4..],
            &b3[chunks * 4..],
        );
    }
}

/// See [`scalar::axpy4x2`]: the four right-hand chunks are loaded
/// once and feed both output rows.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn axpy4x2(
    o0: &mut [f32],
    o1: &mut [f32],
    c0: [f32; 4],
    c1: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    debug_assert_eq!(o0.len(), o1.len(), "axpy4x2 rows must match");
    let n = o0.len();
    let chunks = n / 4;
    let a = [
        vdupq_n_f32(c0[0]),
        vdupq_n_f32(c0[1]),
        vdupq_n_f32(c0[2]),
        vdupq_n_f32(c0[3]),
    ];
    let b = [
        vdupq_n_f32(c1[0]),
        vdupq_n_f32(c1[1]),
        vdupq_n_f32(c1[2]),
        vdupq_n_f32(c1[3]),
    ];
    for c in 0..chunks {
        let j = c * 4;
        let v0 = vld1q_f32(b0.as_ptr().add(j));
        let v1 = vld1q_f32(b1.as_ptr().add(j));
        let v2 = vld1q_f32(b2.as_ptr().add(j));
        let v3 = vld1q_f32(b3.as_ptr().add(j));
        let p0 = o0.as_mut_ptr().add(j);
        let p1 = o1.as_mut_ptr().add(j);
        let mut s0 = vaddq_f32(vmulq_f32(a[0], v0), vmulq_f32(a[1], v1));
        s0 = vaddq_f32(s0, vmulq_f32(a[2], v2));
        s0 = vaddq_f32(s0, vmulq_f32(a[3], v3));
        vst1q_f32(p0, vaddq_f32(vld1q_f32(p0), s0));
        let mut s1 = vaddq_f32(vmulq_f32(b[0], v0), vmulq_f32(b[1], v1));
        s1 = vaddq_f32(s1, vmulq_f32(b[2], v2));
        s1 = vaddq_f32(s1, vmulq_f32(b[3], v3));
        vst1q_f32(p1, vaddq_f32(vld1q_f32(p1), s1));
    }
    if chunks * 4 < n {
        scalar::axpy4x2(
            &mut o0[chunks * 4..],
            &mut o1[chunks * 4..],
            c0,
            c1,
            &b0[chunks * 4..],
            &b1[chunks * 4..],
            &b2[chunks * 4..],
            &b3[chunks * 4..],
        );
    }
}

/// See [`scalar::minmax`]; signed zeros canonicalize to `+0.0` after
/// the fold, as in every backend.
pub(crate) unsafe fn minmax(x: &[f32]) -> (f32, f32) {
    let n = x.len();
    let chunks = n / 4;
    let mut vlo = vdupq_n_f32(f32::INFINITY);
    let mut vhi = vdupq_n_f32(f32::NEG_INFINITY);
    for c in 0..chunks {
        let v = vld1q_f32(x.as_ptr().add(c * 4));
        vlo = vminq_f32(vlo, v);
        vhi = vmaxq_f32(vhi, v);
    }
    let mut lo = vminvq_f32(vlo);
    let mut hi = vmaxvq_f32(vhi);
    for &v in &x[chunks * 4..] {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (
        if lo == 0.0 { 0.0 } else { lo },
        if hi == 0.0 { 0.0 } else { hi },
    )
}

/// See [`scalar::quantize_q8`] — delegated (f64-bound; see module docs).
pub(crate) unsafe fn quantize_q8(src: &[f32], lo: f32, scale: f64, dst: &mut [u8]) {
    scalar::quantize_q8(src, lo, scale, dst);
}

/// See [`scalar::dequantize_q8`] — delegated (f64-bound; see module docs).
pub(crate) unsafe fn dequantize_q8(q: &[u8], lo: f32, scale: f32, out: &mut [f32]) {
    scalar::dequantize_q8(q, lo, scale, out);
}

/// See [`scalar::pack_signs`] — delegated (bit-bound; see module docs).
pub(crate) unsafe fn pack_signs(src: &[f32], bits: &mut [u8]) {
    scalar::pack_signs(src, bits);
}

/// See [`scalar::unpack_signs`] — delegated (bit-bound; see module docs).
pub(crate) unsafe fn unpack_signs(bits: &[u8], mag: f32, out: &mut [f32]) {
    scalar::unpack_signs(bits, mag, out);
}

/// See [`scalar::sq_err_sum`] — delegated (f64-bound; see module docs).
pub(crate) unsafe fn sq_err_sum(a: &[f32], b: &[f32]) -> f64 {
    scalar::sq_err_sum(a, b)
}
