//! The persistent worker pool behind [`crate::parallel`].
//!
//! Every parallel front in the workspace used to spawn and join fresh
//! OS threads per call (`std::thread::scope`), so thread-spawn
//! overhead (~tens of µs) rivaled the kernels it was meant to speed
//! up, and nested parallelism (FL clients in parallel, each running
//! parallel matmuls) oversubscribed cores with no coordination. This
//! module replaces that with one process-lifetime pool:
//!
//! * **Lazy init** — no threads exist until the first parallel
//!   dispatch; serial programs never pay for the pool.
//! * **Grow-on-demand** — workers are spawned as dispatch width
//!   requires (up to [`MAX_WORKERS`]) and then parked on a condvar;
//!   an idle pool costs nothing but stack memory.
//! * **Nesting guard** — worker threads (and the caller while it
//!   executes its own share of a dispatch) are marked as inside a
//!   parallel region; any parallel front that re-enters from such a
//!   thread runs inline instead of re-dispatching, so FL clients in
//!   parallel no longer fight their own matmuls for cores.
//! * **Caller participation** — the dispatching thread always
//!   executes the last task itself, so a dispatch of `n` tasks uses
//!   exactly `n` threads (`n − 1` workers + the caller), not `n + 1`.
//!
//! Correctness never depends on how many workers actually run: tasks
//! queue and any worker (or several) drains them, so results are a
//! pure function of how the *callers* partition work — which
//! [`crate::parallel`] keeps deterministic in the thread count.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on spawned workers — a safety net against pathological
/// `OASIS_THREADS` values. Dispatches wider than this still complete
/// (tasks queue; workers drain), they just run at reduced width.
const MAX_WORKERS: usize = 256;

/// A queued unit of work. Lifetime-erased to `'static`; soundness is
/// argued at the single erasure site in [`run_tasks`].
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on pool workers (always) and on a caller thread while it
    /// runs its own share of a dispatch.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already executing pool work. Parallel
/// fronts consult this and run inline instead of re-dispatching.
pub(crate) fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.get()
}

/// Restores the previous region flag on drop (unwind-safe).
struct RegionGuard(bool);

impl RegionGuard {
    fn enter() -> Self {
        RegionGuard(IN_PARALLEL_REGION.replace(true))
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        IN_PARALLEL_REGION.set(self.0);
    }
}

/// The shared work queue workers sleep on.
struct Inner {
    queue: Mutex<VecDeque<Task>>,
    ready: Condvar,
}

/// The process-wide pool: the queue plus how many workers exist.
struct Pool {
    inner: Arc<Inner>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn global() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        inner: Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Spawns workers until at least `want` exist (clamped to
    /// [`MAX_WORKERS`]). Workers are detached: they park on the queue
    /// condvar between dispatches and die with the process.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().expect("pool spawn lock");
        while *spawned < want {
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name(format!("oasis-pool-{spawned}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
            *spawned += 1;
        }
        oasis_telemetry::gauge!("pool.workers").set(*spawned as i64);
    }

    fn push(&self, task: Task) {
        let depth = {
            let mut queue = self.inner.queue.lock().expect("pool queue lock");
            queue.push_back(task);
            queue.len()
        };
        oasis_telemetry::gauge!("pool.queue_depth").set(depth as i64);
        self.inner.ready.notify_one();
    }
}

fn worker_loop(inner: &Inner) {
    // Workers only ever run dispatched tasks, so they are inside a
    // parallel region for their entire life.
    IN_PARALLEL_REGION.set(true);
    loop {
        let task = {
            let mut queue = inner.queue.lock().expect("pool queue lock");
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = inner.ready.wait(queue).expect("pool queue wait");
            }
        };
        // Tasks are panic-wrapped by `run_tasks`, so a panicking task
        // never unwinds the worker itself.
        task();
    }
}

/// Completion latch for one dispatch: counts outstanding pool tasks
/// and carries the first panic payload to the caller.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every pool task completed, then yields the first
    /// panic payload (if any).
    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut state = self.state.lock().expect("latch lock");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch wait");
        }
        state.panic.take()
    }
}

/// Runs every task to completion, the last one on the calling thread
/// and the rest on pool workers, and returns once **all** of them
/// finished. Panics in any task are re-raised here after the whole
/// dispatch has drained (borrowed data is never abandoned mid-flight).
///
/// Callers already inside a parallel region run everything inline —
/// the nesting guard that keeps nested parallelism from
/// oversubscribing cores.
pub(crate) fn run_tasks(mut tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let Some(local) = tasks.pop() else {
        return;
    };
    if tasks.is_empty() || in_parallel_region() {
        oasis_telemetry::counter!("pool.inline_tasks").add(tasks.len() as u64 + 1);
        let _region = RegionGuard::enter();
        for task in tasks {
            task();
        }
        local();
        return;
    }
    let pool = global();
    pool.ensure_workers(tasks.len());
    oasis_telemetry::counter!("pool.dispatches").add(1);
    oasis_telemetry::counter!("pool.tasks").add(tasks.len() as u64 + 1);
    let latch = Arc::new(Latch::new(tasks.len()));
    for task in tasks {
        // SAFETY: the task borrows data that outlives this call frame
        // only (`'_`). We erase that lifetime to queue it on
        // process-lifetime workers, which is sound because this
        // function does not return until `latch.wait()` observes every
        // queued task complete — including when the local task or a
        // worker task panics — so no borrow is ever used after the
        // frame unwinds.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        let latch = Arc::clone(&latch);
        let queued_ns = oasis_telemetry::enabled().then(oasis_telemetry::now_ns);
        pool.push(Box::new(move || {
            if let Some(queued_ns) = queued_ns {
                let start_ns = oasis_telemetry::now_ns();
                oasis_telemetry::histogram!("pool.task_wait_us")
                    .record_ns(start_ns.saturating_sub(queued_ns));
                let result = catch_unwind(AssertUnwindSafe(task));
                let run_ns = oasis_telemetry::now_ns().saturating_sub(start_ns);
                oasis_telemetry::histogram!("pool.task_run_us").record_ns(run_ns);
                oasis_telemetry::counter!("pool.busy_us").add(run_ns / 1_000);
                latch.complete(result.err());
            } else {
                let result = catch_unwind(AssertUnwindSafe(task));
                latch.complete(result.err());
            }
        }));
    }
    let local_result = catch_unwind(AssertUnwindSafe(|| {
        let _region = RegionGuard::enter();
        local();
    }));
    let worker_panic = latch.wait();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
    if let Err(payload) = local_result {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn empty_dispatch_is_noop() {
        run_tasks(Vec::new());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..24)
            .map(|_| {
                boxed(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        run_tasks(tasks);
        assert_eq!(hits.load(Ordering::SeqCst), 24);
    }

    #[test]
    fn tasks_see_borrowed_data_and_results_land() {
        let mut out = vec![0usize; 8];
        let tasks: Vec<_> = out
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| boxed(move || *slot = i + 1))
            .collect();
        run_tasks(tasks);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn workers_are_marked_in_region_and_caller_is_restored() {
        assert!(!in_parallel_region(), "test thread starts outside");
        let saw_region = Mutex::new(Vec::new());
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                boxed(|| {
                    saw_region.lock().unwrap().push(super::in_parallel_region());
                })
            })
            .collect();
        run_tasks(tasks);
        assert!(saw_region.lock().unwrap().iter().all(|&b| b));
        assert!(!in_parallel_region(), "caller flag restored after");
    }

    #[test]
    fn panic_in_a_worker_task_propagates_after_drain() {
        let completed = AtomicUsize::new(0);
        let completed_ref = &completed;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<_> = (0..6)
                .map(|i| {
                    boxed(move || {
                        if i == 0 {
                            panic!("boom in task");
                        }
                        completed_ref.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            run_tasks(tasks);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            5,
            "non-panicking tasks still completed before the re-raise"
        );
    }

    #[test]
    fn reentrant_dispatch_runs_inline() {
        let outer_hits = AtomicUsize::new(0);
        let inner_hits = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..3)
            .map(|_| {
                boxed(|| {
                    outer_hits.fetch_add(1, Ordering::SeqCst);
                    // Nested dispatch from inside a task: must run
                    // inline on this thread, not deadlock or spawn.
                    let nested: Vec<_> = (0..2)
                        .map(|_| {
                            boxed(|| {
                                inner_hits.fetch_add(1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    run_tasks(nested);
                })
            })
            .collect();
        run_tasks(tasks);
        assert_eq!(outer_hits.load(Ordering::SeqCst), 3);
        assert_eq!(inner_hits.load(Ordering::SeqCst), 6);
    }
}
