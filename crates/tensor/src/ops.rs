//! Elementwise and broadcast arithmetic.

use crate::{simd, Result, Tensor, TensorError};

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        for v in out.data_mut() {
            *v = f(*v);
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if !self.shape().same_as(other.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise division.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a / b)
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if !self.shape().same_as(other.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (AXPY), via the same
    /// [`crate::simd`] kernel the matmul paths use — one kernel, one
    /// tail-handling story.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if !self.shape().same_as(other.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        simd::axpy(self.data_mut(), alpha, other.data());
        Ok(())
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place scalar multiply.
    pub fn scale_in_place(&mut self, s: f32) {
        self.map_in_place(|v| v * s);
    }

    /// Adds `bias` (length = columns) to each row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or length mismatch.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_row_broadcast",
                expected: 2,
                actual: self.rank(),
            });
        }
        if bias.rank() != 1 || bias.numel() != self.dims()[1] {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.dims().to_vec(),
                rhs: bias.dims().to_vec(),
            });
        }
        let cols = self.dims()[1];
        let mut out = self.clone();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v += bias.data()[i % cols];
        }
        Ok(out)
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or length mismatch.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.rank() != 1 || other.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "dot",
                expected: 1,
                actual: self.rank().max(other.rank()),
            });
        }
        if self.numel() != other.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Rectified linear unit applied elementwise.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|&v| v * v).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Clamps every element to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }
}

impl std::ops::Add for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Tensor::add`] for a fallible
    /// version.
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs).expect("operator + requires identical shapes")
    }
}

impl std::ops::Sub for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Tensor::sub`] for a fallible
    /// version.
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs).expect("operator - requires identical shapes")
    }
}

impl std::ops::Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul_div_elementwise() {
        let a = t(&[1.0, 2.0, 4.0]);
        let b = t(&[2.0, 2.0, 2.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[3.0, 4.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-1.0, 0.0, 2.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[2.0, 4.0, 8.0]);
        assert_eq!(a.div(&b).unwrap().data(), &[0.5, 1.0, 2.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = t(&[1.0]);
        let b = t(&[1.0, 2.0]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(0.5, &t(&[2.0, 4.0])).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let m = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2]).unwrap();
        let b = t(&[10.0, 20.0]);
        let out = m.add_row_broadcast(&b).unwrap();
        assert_eq!(out.data(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn add_row_broadcast_checks_shapes() {
        let m = Tensor::zeros(&[2, 2]);
        assert!(m.add_row_broadcast(&t(&[1.0, 2.0, 3.0])).is_err());
        assert!(Tensor::zeros(&[4]).add_row_broadcast(&t(&[1.0])).is_err());
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(t(&[1.0, 0.0]).dot(&t(&[0.0, 5.0])).unwrap(), 0.0);
    }

    #[test]
    fn relu_zeroes_negatives() {
        assert_eq!(t(&[-1.0, 0.0, 2.0]).relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn norm_matches_hand_computation() {
        let v = t(&[3.0, 4.0]);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn clamp_bounds_values() {
        assert_eq!(
            t(&[-2.0, 0.5, 9.0]).clamp(0.0, 1.0).data(),
            &[0.0, 0.5, 1.0]
        );
    }

    #[test]
    fn operator_overloads_match_methods() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 4.0]);
        assert_eq!((&a + &b).data(), a.add(&b).unwrap().data());
        assert_eq!((&a - &b).data(), a.sub(&b).unwrap().data());
        assert_eq!((&a * 2.0).data(), a.scale(2.0).data());
    }
}
