//! Error type for tensor operations.

use std::fmt;

/// Errors produced by tensor construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the shape dims.
    LengthMismatch {
        /// Length of the provided buffer.
        len: usize,
        /// Number of elements implied by the shape.
        expected: usize,
    },
    /// Two operands have incompatible shapes for the requested op.
    ShapeMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Shape of the left operand.
        lhs: Vec<usize>,
        /// Shape of the right operand.
        rhs: Vec<usize>,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An element index was out of range.
    IndexOutOfRange {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
    /// A shape with zero elements was used where data is required.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, expected } => {
                write!(
                    f,
                    "buffer of length {len} does not match shape with {expected} elements"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op} requires rank {expected}, got rank {actual}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfRange { index, bound } => {
                write!(f, "index {index} out of range (bound {bound})")
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_informative() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch {
                len: 3,
                expected: 4,
            },
            TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![2],
                rhs: vec![3],
            },
            TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: 1,
            },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::IndexOutOfRange { index: 9, bound: 4 },
            TensorError::EmptyTensor,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
