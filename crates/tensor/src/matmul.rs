//! Dense matrix multiplication with cache-friendly loop order.
//!
//! The inner kernels — the eight-lane unrolled dot product and the
//! register-blocked `axpy4`/`axpy4x2` row updates — live in
//! [`crate::simd`] and dispatch to the best available instruction set
//! at runtime; this module contributes the loop orders, the zero-block
//! skips, and the row partitioning.

use crate::{parallel, simd, Result, Tensor, TensorError};

/// Minimum multiply-add count (`2·m·k·n`) before a product enters the
/// worker pool.
///
/// Below this, pool-dispatch latency rivals the kernel itself, so
/// sub-threshold problems always run serially on the caller. The
/// cutoff is FLOP-based rather than output-element-based so skinny
/// products with a long reduction axis (conv lowerings, the attacks'
/// wide `Linear`) parallelize even when their output is small.
const PAR_MIN_FLOPS: usize = 64 * 1024;

/// Whether an `m×k · k×n` product is worth dispatching to the pool.
fn above_par_threshold(m: usize, k: usize, n: usize) -> bool {
    m > 1 && 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(n) >= PAR_MIN_FLOPS
}

use simd::{axpy4, axpy4x2};

impl Tensor {
    /// Matrix product `self (m×k) · other (k×n) → (m×n)`.
    ///
    /// Uses `i-k-j` loop order so the innermost loop walks both the
    /// output row and the right-hand row contiguously. Large products
    /// are split across threads by row blocks.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// inner dimension.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matmul")?;
        let (k2, n) = dims2(other, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let _span = oasis_telemetry::span("tensor.matmul");
        oasis_telemetry::counter!("tensor.matmul_flops").add(2 * (m * k * n) as u64);
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let blocks = k / 4 * 4;
        // Finishes one output row's remaining k-steps past the 4-blocks.
        let tail = |arow: &[f32], out_row: &mut [f32]| {
            for (p, &aip) in arow.iter().enumerate().skip(blocks) {
                if aip == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        };
        // One output row against the 4-blocks (pair leftover).
        let one_row = |arow: &[f32], out_row: &mut [f32]| {
            let mut p = 0;
            while p < blocks {
                let coeff = [arow[p], arow[p + 1], arow[p + 2], arow[p + 3]];
                if coeff != [0.0; 4] {
                    axpy4(
                        out_row,
                        coeff,
                        &b[p * n..(p + 1) * n],
                        &b[(p + 1) * n..(p + 2) * n],
                        &b[(p + 2) * n..(p + 3) * n],
                        &b[(p + 3) * n..(p + 4) * n],
                    );
                }
                p += 4;
            }
            tail(arow, out_row);
        };
        let kernel = |row0: usize, rows: &mut [f32]| {
            // `rows` covers output rows [row0, row0 + rows.len()/n),
            // processed in pairs so each 4-block of right-hand rows is
            // read once per pair instead of once per row.
            for (pc, chunk) in rows.chunks_mut(2 * n).enumerate() {
                let i = row0 + pc * 2;
                if chunk.len() < 2 * n {
                    one_row(&a[i * k..(i + 1) * k], chunk);
                    continue;
                }
                let (o0, o1) = chunk.split_at_mut(n);
                let ar0 = &a[i * k..(i + 1) * k];
                let ar1 = &a[(i + 1) * k..(i + 2) * k];
                let mut p = 0;
                while p < blocks {
                    let c0 = [ar0[p], ar0[p + 1], ar0[p + 2], ar0[p + 3]];
                    let c1 = [ar1[p], ar1[p + 1], ar1[p + 2], ar1[p + 3]];
                    let b0 = &b[p * n..(p + 1) * n];
                    let b1 = &b[(p + 1) * n..(p + 2) * n];
                    let b2 = &b[(p + 2) * n..(p + 3) * n];
                    let b3 = &b[(p + 3) * n..(p + 4) * n];
                    match (c0 == [0.0; 4], c1 == [0.0; 4]) {
                        (false, false) => axpy4x2(o0, o1, c0, c1, b0, b1, b2, b3),
                        (false, true) => axpy4(o0, c0, b0, b1, b2, b3),
                        (true, false) => axpy4(o1, c1, b0, b1, b2, b3),
                        (true, true) => {}
                    }
                    p += 4;
                }
                tail(ar0, o0);
                tail(ar1, o1);
            }
        };
        if above_par_threshold(m, k, n) {
            parallel::for_each_row_block(out.data_mut(), n, kernel);
        } else {
            kernel(0, out.data_mut());
        }
        Ok(out)
    }

    /// Computes `selfᵀ · other` without materializing the transpose.
    ///
    /// `self` is `(k×m)`, `other` is `(k×n)`, result is `(m×n)`. This is
    /// the shape needed for weight gradients (`xᵀ · δ`).
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// leading dimension.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = dims2(self, "matmul_tn")?;
        let (k2, n) = dims2(other, "matmul_tn")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let _span = oasis_telemetry::span("tensor.matmul_tn");
        oasis_telemetry::counter!("tensor.matmul_flops").add(2 * (m * k * n) as u64);
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        // out[i][j] = Σ_p a[p][i] * b[p][j]: accumulate row-by-row of
        // a/b, four rows per pass so each output row is traversed
        // once per block instead of once per row. Each output row's
        // accumulation order (p ascending in 4-blocks, then the tail)
        // is the same under every row partition, so the parallel path
        // is bit-identical to the serial one.
        let blocks = k / 4 * 4;
        let kernel = |i0: usize, rows: &mut [f32]| {
            let mut p = 0;
            while p < blocks {
                let a0 = &a[p * m..(p + 1) * m];
                let a1 = &a[(p + 1) * m..(p + 2) * m];
                let a2 = &a[(p + 2) * m..(p + 3) * m];
                let a3 = &a[(p + 3) * m..(p + 4) * m];
                let b0 = &b[p * n..(p + 1) * n];
                let b1 = &b[(p + 1) * n..(p + 2) * n];
                let b2 = &b[(p + 2) * n..(p + 3) * n];
                let b3 = &b[(p + 3) * n..(p + 4) * n];
                for (li, orow) in rows.chunks_mut(n).enumerate() {
                    let i = i0 + li;
                    let coeff = [a0[i], a1[i], a2[i], a3[i]];
                    if coeff != [0.0; 4] {
                        axpy4(orow, coeff, b0, b1, b2, b3);
                    }
                }
                p += 4;
            }
            for p in blocks..k {
                let arow = &a[p * m..(p + 1) * m];
                let brow = &b[p * n..(p + 1) * n];
                for (li, orow) in rows.chunks_mut(n).enumerate() {
                    let av = arow[i0 + li];
                    if av == 0.0 {
                        continue;
                    }
                    for (ov, &bv) in orow.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
            }
        };
        if above_par_threshold(m, k, n) {
            parallel::for_each_row_block(out.data_mut(), n, kernel);
        } else {
            kernel(0, out.data_mut());
        }
        Ok(out)
    }

    /// Computes `self · otherᵀ` without materializing the transpose.
    ///
    /// `self` is `(m×k)`, `other` is `(n×k)`, result is `(m×n)`. This is
    /// the shape needed for input gradients (`δ · Wᵀ` with `W: n×k`).
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// trailing dimension.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matmul_nt")?;
        let (n, k2) = dims2(other, "matmul_nt")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let _span = oasis_telemetry::span("tensor.matmul_nt");
        // Two regimes: a long reduction dim amortizes the unrolled
        // dot's lane setup, while a short one (conv im2col: k = C·k²,
        // often < 64) wastes most of each 8-lane chunk — there the
        // axpy kernel on a materialized transpose wins despite the
        // copy.
        if k < 64 || k < 2 * n {
            return self.matmul(&other.transpose()?);
        }
        oasis_telemetry::counter!("tensor.matmul_flops").add(2 * (m * k * n) as u64);
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let kernel = |row0: usize, rows: &mut [f32]| {
            for (local_i, out_row) in rows.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let arow = &a[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = simd::dot(arow, &b[j * k..(j + 1) * k]);
                }
            }
        };
        if above_par_threshold(m, k, n) {
            parallel::for_each_row_block(out.data_mut(), n, kernel);
        } else {
            kernel(0, out.data_mut());
        }
        Ok(out)
    }

    /// Matrix-vector product `self (m×k) · v (k) → (m)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `self` is rank-2 and `v` rank-1 with
    /// matching length.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matvec")?;
        if v.rank() != 1 || v.numel() != k {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            *o = simd::dot(&self.data()[i * k..(i + 1) * k], v.data());
        }
        Tensor::from_vec(out, &[m])
    }
}

fn dims2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: Vec<f32>, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(v, &[r, c]).unwrap()
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = m(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], 3, 2);
        let b = m(vec![2.0, 1.0, 0.0, -1.0, 5.0, 2.0], 3, 2);
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], 2, 3);
        let b = m(vec![2.0, 1.0, 0.0, -1.0, 5.0, 2.0], 2, 3);
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let v = Tensor::from_slice(&[5.0, 6.0]);
        let mv = a.matvec(&v).unwrap();
        assert_eq!(mv.data(), &[17.0, 39.0]);
    }

    #[test]
    fn tiny_matmul_under_wide_thread_override_matches_serial() {
        // Sub-threshold problems (a 4×4 matmul is ~128 FLOPs, far
        // under `PAR_MIN_FLOPS`) must never enter the pool: even with
        // 8 threads requested the result is the serial one, bit for
        // bit.
        let a = m((0..16).map(|i| i as f32 * 0.37 - 2.0).collect(), 4, 4);
        let b = m((0..16).map(|i| (i as f32).sin()).collect(), 4, 4);
        let serial = a.matmul(&b).unwrap();
        let wide = parallel::with_threads(8, || a.matmul(&b).unwrap());
        assert_eq!(wide, serial);
        assert!(!above_par_threshold(4, 4, 4));
    }

    #[test]
    fn all_products_are_bit_identical_across_thread_counts() {
        // Shapes chosen above the FLOP threshold so the parallel path
        // actually engages; the row partition must not perturb a
        // single bit of the result.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        let a = Tensor::randn(&[96, 130], &mut rng);
        let b = Tensor::randn(&[130, 80], &mut rng);
        // 40 × 130: keeps k ≥ 2n so matmul_nt stays on its unrolled
        // dot path instead of dispatching to a transposed matmul.
        let bt = Tensor::randn(&[40, 130], &mut rng);
        let at = Tensor::randn(&[130, 96], &mut rng);
        let serial = parallel::with_threads(1, || {
            (
                a.matmul(&b).unwrap(),
                a.matmul_nt(&bt).unwrap(),
                at.matmul_tn(&b).unwrap(),
            )
        });
        for threads in [2, 4, 8] {
            let parallel = parallel::with_threads(threads, || {
                (
                    a.matmul(&b).unwrap(),
                    a.matmul_nt(&bt).unwrap(),
                    at.matmul_tn(&b).unwrap(),
                )
            });
            assert_eq!(parallel.0.data(), serial.0.data(), "matmul t={threads}");
            assert_eq!(parallel.1.data(), serial.1.data(), "matmul_nt t={threads}");
            assert_eq!(parallel.2.data(), serial.2.data(), "matmul_tn t={threads}");
        }
    }

    #[test]
    fn large_matmul_uses_parallel_path_consistently() {
        // Exercise both code paths and check they agree.
        let n = 300; // 300*300 = 90_000 > threshold
        let a = Tensor::from_vec(
            (0..n * n).map(|i| (i % 17) as f32 * 0.25).collect(),
            &[n, n],
        )
        .unwrap();
        let i = Tensor::eye(n);
        let c = a.matmul(&i).unwrap();
        assert_eq!(c, a);
    }
}
