//! Dense matrix multiplication with cache-friendly loop order.

use crate::{parallel, Result, Tensor, TensorError};

/// Minimum number of output elements before the parallel path is used.
///
/// Below this, thread spawn overhead dominates on small matrices.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

impl Tensor {
    /// Matrix product `self (m×k) · other (k×n) → (m×n)`.
    ///
    /// Uses `i-k-j` loop order so the innermost loop walks both the
    /// output row and the right-hand row contiguously. Large products
    /// are split across threads by row blocks.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// inner dimension.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matmul")?;
        let (k2, n) = dims2(other, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let kernel = |row0: usize, rows: &mut [f32]| {
            // `rows` covers output rows [row0, row0 + rows.len()/n).
            for (local_i, out_row) in rows.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                for p in 0..k {
                    let aip = a[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(brow) {
                        *o += aip * bv;
                    }
                }
            }
        };
        if m * n >= PARALLEL_THRESHOLD && m > 1 {
            parallel::for_each_row_block(out.data_mut(), n, kernel);
        } else {
            kernel(0, out.data_mut());
        }
        Ok(out)
    }

    /// Computes `selfᵀ · other` without materializing the transpose.
    ///
    /// `self` is `(k×m)`, `other` is `(k×n)`, result is `(m×n)`. This is
    /// the shape needed for weight gradients (`xᵀ · δ`).
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// leading dimension.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = dims2(self, "matmul_tn")?;
        let (k2, n) = dims2(other, "matmul_tn")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        // out[i][j] = Σ_p a[p][i] * b[p][j]: accumulate row-by-row of a/b.
        let o = out.data_mut();
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut o[i * n..(i + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// Computes `self · otherᵀ` without materializing the transpose.
    ///
    /// `self` is `(m×k)`, `other` is `(n×k)`, result is `(m×n)`. This is
    /// the shape needed for input gradients (`δ · Wᵀ` with `W: n×k`).
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// trailing dimension.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matmul_nt")?;
        let (n, k2) = dims2(other, "matmul_nt")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let kernel = |row0: usize, rows: &mut [f32]| {
            for (local_i, out_row) in rows.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let arow = &a[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
        };
        if m * n >= PARALLEL_THRESHOLD && m > 1 {
            parallel::for_each_row_block(out.data_mut(), n, kernel);
        } else {
            kernel(0, out.data_mut());
        }
        Ok(out)
    }

    /// Matrix-vector product `self (m×k) · v (k) → (m)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `self` is rank-2 and `v` rank-1 with
    /// matching length.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matvec")?;
        if v.rank() != 1 || v.numel() != k {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data()[i * k..(i + 1) * k];
            *o = row.iter().zip(v.data()).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m])
    }
}

fn dims2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: Vec<f32>, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(v, &[r, c]).unwrap()
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = m(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], 3, 2);
        let b = m(vec![2.0, 1.0, 0.0, -1.0, 5.0, 2.0], 3, 2);
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], 2, 3);
        let b = m(vec![2.0, 1.0, 0.0, -1.0, 5.0, 2.0], 2, 3);
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let v = Tensor::from_slice(&[5.0, 6.0]);
        let mv = a.matvec(&v).unwrap();
        assert_eq!(mv.data(), &[17.0, 39.0]);
    }

    #[test]
    fn large_matmul_uses_parallel_path_consistently() {
        // Exercise both code paths and check they agree.
        let n = 300; // 300*300 = 90_000 > threshold
        let a = Tensor::from_vec(
            (0..n * n).map(|i| (i % 17) as f32 * 0.25).collect(),
            &[n, n],
        )
        .unwrap();
        let i = Tensor::eye(n);
        let c = a.matmul(&i).unwrap();
        assert_eq!(c, a);
    }
}
