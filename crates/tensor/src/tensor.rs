//! The dense row-major `f32` tensor.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Result, Shape, TensorError};

/// A dense, row-major, owned `f32` tensor.
///
/// All tensors are contiguous; reshapes are metadata-only, transposes
/// and slices copy. This keeps every downstream algorithm (manual
/// backprop, gradient inversion) trivially auditable.
///
/// ```
/// use oasis_tensor::Tensor;
///
/// # fn main() -> Result<(), oasis_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get(&[1, 2])?, 6.0);
/// assert_eq!(t.row(1)?, &[4.0, 5.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` is not the
    /// product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                expected: shape.numel(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates an all-zero tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates an all-one tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Tensor {
            data: values.to_vec(),
            shape: Shape::new(&[values.len()]),
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The axis lengths as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of
    /// bounds.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Writes the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of
    /// bounds.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Borrow row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2 or `i` is out of
    /// bounds.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfRange {
                index: i,
                bound: rows,
            });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }

    /// Mutable borrow of row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::row`].
    pub fn row_mut(&mut self, i: usize) -> Result<&mut [f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row_mut",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfRange {
                index: i,
                bound: rows,
            });
        }
        Ok(&mut self.data[i * cols..(i + 1) * cols])
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts
    /// differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                len: self.numel(),
                expected: shape.numel(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// In-place reshape (metadata only).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts
    /// differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                len: self.numel(),
                expected: shape.numel(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Transposes a rank-2 tensor (copies).
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Copies rows `[start, end)` of a rank-2 tensor into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/bounds violations or `start > end`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "slice_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if start > end || end > rows {
            return Err(TensorError::IndexOutOfRange {
                index: end,
                bound: rows,
            });
        }
        Ok(Tensor {
            data: self.data[start * cols..end * cols].to_vec(),
            shape: Shape::new(&[end - start, cols]),
        })
    }

    /// Stacks rank-N tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::EmptyTensor)?;
        let mut data = Vec::with_capacity(first.numel() * items.len());
        for t in items {
            if !t.shape.same_as(&first.shape) {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Concatenates rank-2 tensors along axis 0 (rows).
    ///
    /// # Errors
    ///
    /// Returns an error if `items` is empty, any item is not rank-2, or
    /// column counts differ.
    pub fn concat_rows(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::EmptyTensor)?;
        if first.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "concat_rows",
                expected: 2,
                actual: first.rank(),
            });
        }
        let cols = first.dims()[1];
        let mut rows = 0usize;
        let mut data = Vec::new();
        for t in items {
            if t.rank() != 2 || t.dims()[1] != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_rows",
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
            rows += t.dims()[0];
            data.extend_from_slice(&t.data);
        }
        Tensor::from_vec(data, &[rows, cols])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const PREVIEW: usize = 8;
        if self.numel() <= PREVIEW {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "{:?}…({} elems)", &self.data[..PREVIEW], self.numel())
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i3 = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert_eq!(i3.get(&[r, c]).unwrap(), expect);
            }
        }
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 7.5).unwrap();
        assert_eq!(t.get(&[1, 0, 1]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt, t);
    }

    #[test]
    fn transpose_swaps_entries() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tr = t.transpose().unwrap();
        assert_eq!(tr.get(&[2, 1]).unwrap(), t.get(&[1, 2]).unwrap());
        assert_eq!(tr.dims(), &[3, 2]);
    }

    #[test]
    fn slice_rows_copies_expected_rows() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]).unwrap();
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn stack_builds_leading_axis() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_rejects_mixed_shapes() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0]);
        assert!(Tensor::stack(&[a, b]).is_err());
    }

    #[test]
    fn concat_rows_appends() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = Tensor::concat_rows(&[a, b]).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.row(2).unwrap(), &[5.0, 6.0]);
    }

    #[test]
    fn row_accessors_enforce_rank() {
        let t = Tensor::zeros(&[4]);
        assert!(t.row(0).is_err());
    }

    #[test]
    fn debug_never_empty() {
        let t = Tensor::zeros(&[100]);
        assert!(!format!("{t:?}").is_empty());
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
