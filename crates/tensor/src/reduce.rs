//! Reductions: sums, means, extrema, argmax.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for zero-element tensors.
    pub fn mean(&self) -> Result<f32> {
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor);
        }
        Ok(self.sum() / self.numel() as f32)
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for zero-element tensors.
    pub fn max(&self) -> Result<f32> {
        self.data()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or(TensorError::EmptyTensor)
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for zero-element tensors.
    pub fn min(&self) -> Result<f32> {
        self.data()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .ok_or(TensorError::EmptyTensor)
    }

    /// Sums a rank-2 tensor over axis 0, producing a length-`cols`
    /// vector (column sums).
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2.
    pub fn sum_axis0(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_axis0",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for (o, &v) in out.iter_mut().zip(&self.data()[r * cols..(r + 1) * cols]) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Sums a rank-2 tensor over axis 1, producing a length-`rows`
    /// vector (row sums).
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2.
    pub fn sum_axis1(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_axis1",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let out: Vec<f32> = (0..rows)
            .map(|r| self.data()[r * cols..(r + 1) * cols].iter().sum())
            .collect();
        Tensor::from_vec(out, &[rows])
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// Ties resolve to the first maximal index.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2 or has zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if cols == 0 {
            return Err(TensorError::EmptyTensor);
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Mean squared difference between two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or empty tensors.
    pub fn mse(&self, other: &Tensor) -> Result<f64> {
        if !self.shape().same_as(other.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "mse",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor);
        }
        let sum: f64 = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum();
        Ok(sum / self.numel() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean().unwrap(), 2.5);
    }

    #[test]
    fn mean_of_empty_errors() {
        assert!(Tensor::zeros(&[0]).mean().is_err());
    }

    #[test]
    fn max_min() {
        let t = Tensor::from_slice(&[3.0, -1.0, 2.0]);
        assert_eq!(t.max().unwrap(), 3.0);
        assert_eq!(t.min().unwrap(), -1.0);
    }

    #[test]
    fn axis_sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis0().unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis1().unwrap().data(), &[6.0, 15.0]);
    }

    #[test]
    fn axis_sums_agree_with_total() {
        let t = Tensor::from_vec((0..20).map(|i| i as f32).collect(), &[4, 5]).unwrap();
        assert_eq!(t.sum_axis0().unwrap().sum(), t.sum());
        assert_eq!(t.sum_axis1().unwrap().sum(), t.sum());
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 0.0, -1.0, -2.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn mse_zero_for_identical() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(t.mse(&t).unwrap(), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let a = Tensor::from_slice(&[0.0, 0.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.mse(&b).unwrap(), 12.5);
    }
}
