//! # oasis-tensor
//!
//! A small, dependency-light n-dimensional `f32` tensor library that
//! serves as the numerical substrate for the OASIS reproduction.
//!
//! The design goals are, in order:
//!
//! 1. **Exactness & auditability** — the gradient-inversion attacks in
//!    `oasis-attacks` consume *analytically exact* gradients, so every
//!    op here is a plain, readable loop with no approximation.
//! 2. **Row-major contiguity** — tensors are always dense row-major
//!    buffers; there are no lazy views, which keeps the manual
//!    backprop in `oasis-nn` easy to verify.
//! 3. **Enough speed** — cache-friendly `i-k-j` matmul, the
//!    [`parallel`] helpers (a lazily-initialized persistent worker
//!    pool), and the runtime-dispatched [`simd`] kernels, so the
//!    Table I training experiment finishes on a laptop-class CPU and
//!    the hot paths scale with both cores and vector lanes.
//!
//! ## Example
//!
//! ```
//! use oasis_tensor::Tensor;
//!
//! # fn main() -> Result<(), oasis_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod init;
mod matmul;
mod ops;
pub mod parallel;
mod pool;
mod reduce;
mod shape;
pub mod simd;
mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
