//! Data-parallel fronts over the persistent worker pool (`crate::pool`).
//!
//! The workspace deliberately avoids a full task-scheduling runtime;
//! the parallel patterns needed are "split a flat output buffer into
//! row blocks" (matmul, conv), "run one closure per index and collect
//! in order" (federated clients, per-neuron inversion), and "mutate
//! disjoint items in place" (wire decode). All are provided here as
//! thin fronts that chunk the work deterministically and dispatch the
//! chunks to the pool.
//!
//! ## Determinism
//!
//! Partitioning depends only on [`num_threads`] and the work size,
//! never on which worker runs a chunk, and every kernel in the
//! workspace keeps its per-row / per-item floating-point accumulation
//! order independent of the partition — so results are bit-identical
//! at any thread count (see `tests/thread_determinism.rs`).
//!
//! ## Nesting
//!
//! A thread that is already executing pool work (an FL client closure,
//! a scenario trial) runs any nested parallel front inline instead of
//! re-dispatching — parallel clients no longer fight their own matmuls
//! for cores.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{pool, simd};

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Returns the worker count parallel fronts partition for (the pool
/// size requested at dispatch).
///
/// Resolution order: a [`with_threads`] override on the current
/// thread, then the `OASIS_THREADS` environment variable (a positive
/// integer; benchmarks and CI pin it so timings are comparable across
/// machines — zero or unparsable values are ignored), then
/// `std::thread::available_parallelism`, clamped to at least 1.
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.get() {
        return n;
    }
    std::env::var("OASIS_THREADS")
        .ok()
        .and_then(|v| env_thread_override(&v))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Parses an `OASIS_THREADS` value: a positive integer overrides the
/// machine default; zero or unparsable values yield `None` (ignored).
fn env_thread_override(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Runs `f` with [`num_threads`] pinned to `threads` (clamped to at
/// least 1) on the current thread, restoring the previous value on
/// exit — including on panic.
///
/// This is the process-internal way to vary parallelism: unlike
/// mutating `OASIS_THREADS`, it is race-free under concurrent tests,
/// and it is how the `scale` perf suite measures the same workload at
/// several thread counts in one run. The override only affects
/// partitioning decisions made on *this* thread; work dispatched to
/// pool workers runs nested fronts inline regardless.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.replace(Some(threads.max(1))));
    f()
}

/// The concurrency a parallel front dispatched from this thread will
/// actually achieve: 1 inside a pool worker (nested fronts run
/// inline under the nesting guard), otherwise [`num_threads`].
///
/// Use this — not [`num_threads`] — to size scratch buffers that
/// exist only to feed a parallel dispatch, so nested callers don't
/// allocate capacity they can never use.
pub fn effective_parallelism() -> usize {
    if pool::in_parallel_region() {
        1
    } else {
        num_threads()
    }
}

/// Splits `data` (a flat row-major buffer with rows of `row_len`
/// elements) into contiguous row blocks and invokes
/// `kernel(first_row_index, block)` on pool workers.
///
/// The kernel must be pure per-block: blocks are disjoint, so no
/// synchronization is required inside.
///
/// # Panics
///
/// Panics if `row_len` is zero while `data` is non-empty, or if
/// `data.len()` is not a multiple of `row_len`.
pub fn for_each_row_block<F>(data: &mut [f32], row_len: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    for_each_row_block_min(data, row_len, 0, kernel);
}

/// Like [`for_each_row_block`], but with a work-size cutoff: buffers
/// smaller than `min_len` elements run serially on the caller, never
/// paying pool-dispatch latency. This is how sub-threshold matmuls and
/// conv lowering fills stay as fast as they were before the pool.
pub fn for_each_row_block_min<F>(data: &mut [f32], row_len: usize, min_len: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0,
        "row_len must be positive for a non-empty buffer"
    );
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer must be a whole number of rows"
    );
    // Cheap thread-local / size checks first: nested fronts and
    // sub-threshold buffers must not pay the `OASIS_THREADS` env
    // lookup inside `num_threads`.
    if data.len() < min_len || pool::in_parallel_region() {
        kernel(0, data);
        return;
    }
    let rows = data.len() / row_len;
    let workers = num_threads().min(rows);
    if workers <= 1 {
        kernel(0, data);
        return;
    }
    let rows_per_block = rows.div_ceil(workers);
    let kernel = &kernel;
    // Workers inherit the caller's pinned SIMD backend (if any), so a
    // `simd::with_backend` region stays pinned across the dispatch.
    let backend = simd::thread_override();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
    let mut rest = data;
    let mut row0 = 0usize;
    while !rest.is_empty() {
        let take = (rows_per_block * row_len).min(rest.len());
        let (block, tail) = rest.split_at_mut(take);
        let start = row0;
        tasks.push(Box::new(move || {
            simd::with_override(backend, || kernel(start, block));
        }));
        row0 += take / row_len;
        rest = tail;
    }
    pool::run_tasks(tasks);
}

/// Runs `f(index)` for every index in `0..len` on pool workers and
/// collects the results in index order.
///
/// Indices are handed out dynamically (one atomic fetch per item), so
/// heterogeneous items — FL clients with uneven sample counts, say —
/// balance across workers instead of serializing behind the largest
/// contiguous chunk. Each worker accumulates `(index, result)` pairs
/// in a private batch and the batches are merged by index afterwards:
/// no per-item locking, and the output (order and every bit) is
/// independent of the scheduling.
pub fn map_range<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if pool::in_parallel_region() {
        return (0..len).map(f).collect();
    }
    let workers = num_threads().min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut batches: Vec<Option<Vec<(usize, R)>>> = Vec::with_capacity(workers);
    batches.resize_with(workers, || None);
    {
        let f = &f;
        let next = &next;
        let backend = simd::thread_override();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = batches
            .iter_mut()
            .map(|slot| {
                Box::new(move || {
                    simd::with_override(backend, || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= len {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        *slot = Some(local);
                    });
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::run_tasks(tasks);
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    for batch in batches {
        for (i, r) in batch.expect("every worker completed") {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// Like [`map_range`], but serial when `total_work < min_work` —
/// sub-threshold sweeps never pay pool-dispatch latency. The caller
/// supplies `total_work` in whatever unit captures per-item cost
/// (e.g. total gradient elements `n·d` for a per-neuron inversion
/// sweep).
pub fn map_range_min<R, F>(len: usize, total_work: usize, min_work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if total_work < min_work {
        return (0..len).map(f).collect();
    }
    map_range(len, f)
}

/// Runs `f(index, &items[index])` for every item on pool workers and
/// collects the results in input order.
///
/// Used by the FL server to evaluate clients concurrently and by the
/// scenario engine for parallel trials.
pub fn map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_range(items.len(), |i| f(i, &items[i]))
}

/// Runs `f(index, &mut items[index])` for every item on pool workers.
///
/// Items are handed out as disjoint `&mut` chunks, so the closure may
/// mutate freely without synchronization. Used by the FL server to
/// decode a wave of wire updates into per-slot scratch buffers.
pub fn for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let workers = if pool::in_parallel_region() {
        1
    } else {
        num_threads().min(len)
    };
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per_chunk = len.div_ceil(workers);
    let f = &f;
    let backend = simd::thread_override();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
        .chunks_mut(per_chunk)
        .enumerate()
        .map(|(w, chunk)| {
            let base = w * per_chunk;
            Box::new(move || {
                simd::with_override(backend, || {
                    for (j, item) in chunk.iter_mut().enumerate() {
                        f(base + j, item);
                    }
                });
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool::run_tasks(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn oasis_threads_override_parses_and_clamps() {
        // The parser is tested pure — mutating the process environment
        // from a multithreaded test binary would race concurrent
        // `getenv` calls in other tests.
        assert_eq!(env_thread_override("3"), Some(3));
        assert_eq!(env_thread_override(" 12 "), Some(12));
        assert_eq!(env_thread_override("0"), None, "zero falls back");
        assert_eq!(env_thread_override("-2"), None);
        assert_eq!(env_thread_override("not-a-number"), None);
        assert_eq!(env_thread_override(""), None);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = num_threads();
        let inside = with_threads(7, num_threads);
        assert_eq!(inside, 7);
        assert_eq!(num_threads(), outside, "override removed on exit");
        assert_eq!(with_threads(0, num_threads), 1, "clamped to at least 1");
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let outside = num_threads();
        let result = std::panic::catch_unwind(|| {
            with_threads(5, || panic!("inner"));
        });
        assert!(result.is_err());
        assert_eq!(num_threads(), outside);
    }

    fn fill_rows(buf: &mut [f32], cols: usize) {
        for_each_row_block(buf, cols, |row0, block| {
            for (li, row) in block.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + li) as f32;
                }
            }
        });
    }

    #[test]
    fn row_blocks_cover_every_row_once() {
        let (rows, cols) = (37, 5);
        for threads in [1, 3, 8] {
            let mut buf = vec![0.0f32; rows * cols];
            with_threads(threads, || fill_rows(&mut buf, cols));
            for (i, row) in buf.chunks(cols).enumerate() {
                assert!(
                    row.iter().all(|&v| v == i as f32),
                    "threads={threads} row {i} incorrect: {row:?}"
                );
            }
        }
    }

    #[test]
    fn empty_buffer_is_noop() {
        let mut buf: Vec<f32> = Vec::new();
        for_each_row_block(&mut buf, 4, |_, _| panic!("kernel must not run"));
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_panics() {
        let mut buf = vec![0.0f32; 7];
        for_each_row_block(&mut buf, 3, |_, _| {});
    }

    #[test]
    fn kernel_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            let mut buf = vec![0.0f32; 64];
            with_threads(4, || {
                for_each_row_block(&mut buf, 4, |row0, _| {
                    if row0 == 0 {
                        panic!("kernel failure");
                    }
                });
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn sub_threshold_buffers_stay_serial() {
        // A buffer below `min_len` must run as one serial block even
        // with a wide thread override: the kernel sees the whole
        // buffer at row 0 exactly once.
        let hits = std::sync::Mutex::new(Vec::new());
        let mut buf = vec![0.0f32; 32];
        with_threads(8, || {
            for_each_row_block_min(&mut buf, 4, 1024, |row0, block| {
                hits.lock().unwrap().push((row0, block.len()));
            });
        });
        assert_eq!(*hits.lock().unwrap(), vec![(0, 32)]);
    }

    #[test]
    fn map_indexed_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let out = with_threads(threads, || map_indexed(&items, |i, &v| (i as u32) * 2 + v));
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, (i as u32) * 3, "threads={threads}");
            }
        }
    }

    #[test]
    fn map_indexed_handles_empty_input() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = map_indexed(&items, |_, &v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn map_indexed_single_item() {
        let out = map_indexed(&[41u32], |_, &v| v + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn map_range_matches_serial_at_any_width() {
        let serial: Vec<usize> = (0..53).map(|i| i * i).collect();
        for threads in [1, 2, 5, 16, 100] {
            let parallel = with_threads(threads, || map_range(53, |i| i * i));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn nested_fronts_run_inline_and_stay_correct() {
        // map over items whose closure itself maps: the inner call
        // must not re-dispatch (nesting guard) and must produce the
        // same totals as fully-serial evaluation.
        let expected: Vec<usize> = (0..12).map(|i| (0..10).map(|j| i * j).sum()).collect();
        let got = with_threads(4, || {
            map_range(12, |i| map_range(10, |j| i * j).into_iter().sum::<usize>())
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 4] {
            let mut items: Vec<usize> = vec![0; 23];
            with_threads(threads, || {
                for_each_mut(&mut items, |i, slot| *slot = i + 100);
            });
            for (i, &v) in items.iter().enumerate() {
                assert_eq!(v, i + 100, "threads={threads}");
            }
        }
    }

    #[test]
    fn for_each_mut_empty_is_noop() {
        let mut items: Vec<u8> = Vec::new();
        for_each_mut(&mut items, |_, _| panic!("must not run"));
    }
}
