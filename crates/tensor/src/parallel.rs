//! Minimal data-parallel helpers built on std scoped threads.
//!
//! The workspace deliberately avoids a full task-scheduling runtime;
//! the only parallel patterns needed are "split a flat output buffer
//! into row blocks" (matmul, conv) and "run one closure per item"
//! (federated clients). Both are provided here.

use std::sync::Mutex;

/// Returns the number of worker threads to use.
///
/// The `OASIS_THREADS` environment variable, when set to a positive
/// integer, overrides the machine default — benchmarks and CI runs
/// pin it so timings are comparable across machines. Zero or
/// unparsable values are ignored. Without the override this reads
/// `std::thread::available_parallelism`, clamped to at least 1.
pub fn num_threads() -> usize {
    std::env::var("OASIS_THREADS")
        .ok()
        .and_then(|v| env_thread_override(&v))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Parses an `OASIS_THREADS` value: a positive integer overrides the
/// machine default; zero or unparsable values yield `None` (ignored).
fn env_thread_override(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Splits `data` (a flat row-major buffer with rows of `row_len`
/// elements) into contiguous row blocks and invokes
/// `kernel(first_row_index, block)` on worker threads.
///
/// The kernel must be pure per-block: blocks are disjoint, so no
/// synchronization is required inside.
///
/// # Panics
///
/// Panics if `row_len` is zero while `data` is non-empty, or if
/// `data.len()` is not a multiple of `row_len`.
pub fn for_each_row_block<F>(data: &mut [f32], row_len: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0,
        "row_len must be positive for a non-empty buffer"
    );
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer must be a whole number of rows"
    );
    let rows = data.len() / row_len;
    let workers = num_threads().min(rows);
    if workers <= 1 {
        kernel(0, data);
        return;
    }
    let rows_per_block = rows.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take = (rows_per_block * row_len).min(rest.len());
            let (block, tail) = rest.split_at_mut(take);
            let kernel = &kernel;
            let start = row0;
            scope.spawn(move || kernel(start, block));
            row0 += take / row_len;
            rest = tail;
        }
    });
}

/// Runs `f(index, &items[index])` for every item on worker threads and
/// collects the results in input order.
///
/// Used by the FL server to evaluate clients concurrently.
pub fn map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = Mutex::new(0usize);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = {
                    let mut guard = next.lock().expect("queue lock poisoned");
                    let i = *guard;
                    if i >= n {
                        return;
                    }
                    *guard += 1;
                    i
                };
                let r = f(i, &items[i]);
                *results[i].lock().expect("result lock poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock poisoned")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn oasis_threads_override_parses_and_clamps() {
        // The parser is tested pure — mutating the process environment
        // from a multithreaded test binary would race concurrent
        // `getenv` calls in other tests.
        assert_eq!(env_thread_override("3"), Some(3));
        assert_eq!(env_thread_override(" 12 "), Some(12));
        assert_eq!(env_thread_override("0"), None, "zero falls back");
        assert_eq!(env_thread_override("-2"), None);
        assert_eq!(env_thread_override("not-a-number"), None);
        assert_eq!(env_thread_override(""), None);
    }

    #[test]
    fn row_blocks_cover_every_row_once() {
        let rows = 37;
        let cols = 5;
        let mut buf = vec![0.0f32; rows * cols];
        for_each_row_block(&mut buf, cols, |row0, block| {
            for (li, row) in block.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + li) as f32;
                }
            }
        });
        for (i, row) in buf.chunks(cols).enumerate() {
            assert!(
                row.iter().all(|&v| v == i as f32),
                "row {i} incorrect: {row:?}"
            );
        }
    }

    #[test]
    fn empty_buffer_is_noop() {
        let mut buf: Vec<f32> = Vec::new();
        for_each_row_block(&mut buf, 4, |_, _| panic!("kernel must not run"));
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_panics() {
        let mut buf = vec![0.0f32; 7];
        for_each_row_block(&mut buf, 3, |_, _| {});
    }

    #[test]
    fn map_indexed_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = map_indexed(&items, |i, &v| (i as u32) * 2 + v);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u32) * 3);
        }
    }

    #[test]
    fn map_indexed_handles_empty_input() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = map_indexed(&items, |_, &v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn map_indexed_single_item() {
        let out = map_indexed(&[41u32], |_, &v| v + 1);
        assert_eq!(out, vec![42]);
    }
}
