//! Random tensor initialization.
//!
//! All randomness in the workspace flows through explicit
//! [`rand::Rng`] instances so every experiment is reproducible from a
//! single `u64` seed.

use rand::Rng;

use crate::Tensor;

impl Tensor {
    /// Samples every element i.i.d. from the standard normal
    /// distribution via the Box–Muller transform.
    pub fn randn(dims: &[usize], rng: &mut impl Rng) -> Tensor {
        let mut t = Tensor::zeros(dims);
        let data = t.data_mut();
        let mut i = 0;
        while i < data.len() {
            let (a, b) = box_muller(rng);
            data[i] = a;
            if i + 1 < data.len() {
                data[i + 1] = b;
            }
            i += 2;
        }
        t
    }

    /// Samples every element i.i.d. from `N(mean, std²)`.
    pub fn randn_scaled(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let mut t = Tensor::randn(dims, rng);
        t.map_in_place(|v| v * std + mean);
        t
    }

    /// Samples every element i.i.d. uniformly from `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.gen_range(lo..hi);
        }
        t
    }
}

/// One Box–Muller draw producing two independent standard normals.
fn box_muller(rng: &mut impl Rng) -> (f32, f32) {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    ((r * theta.cos()) as f32, (r * theta.sin()) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[32], &mut StdRng::seed_from_u64(7));
        let b = Tensor::randn(&[32], &mut StdRng::seed_from_u64(7));
        let c = Tensor::randn(&[32], &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_has_roughly_standard_moments() {
        let t = Tensor::randn(&[20_000], &mut StdRng::seed_from_u64(42));
        let mean = t.mean().unwrap();
        let var = t.map(|v| (v - mean) * (v - mean)).mean().unwrap();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn randn_scaled_shifts_moments() {
        let t = Tensor::randn_scaled(&[20_000], 3.0, 0.5, &mut StdRng::seed_from_u64(1));
        let mean = t.mean().unwrap();
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let t = Tensor::rand_uniform(&[1000], -2.0, 5.0, &mut StdRng::seed_from_u64(3));
        assert!(t.min().unwrap() >= -2.0);
        assert!(t.max().unwrap() < 5.0);
    }
}
