//! Update aggregation (FedAvg).

use crate::{ClientUpdate, FlError, Result};

/// Plain FedAvg: the arithmetic mean of client gradient vectors
/// (paper Eq. 1, `Ḡ = (1/M) Σ G_j`).
///
/// # Errors
///
/// Returns [`FlError::NoClients`] for an empty slice and
/// [`FlError::UpdateLength`] if vectors disagree in length.
pub fn fedavg(updates: &[ClientUpdate]) -> Result<Vec<f32>> {
    let first = updates.first().ok_or(FlError::NoClients)?;
    let n = first.grads.len();
    let mut acc = vec![0.0f32; n];
    for u in updates {
        if u.grads.len() != n {
            return Err(FlError::UpdateLength {
                len: u.grads.len(),
                expected: n,
            });
        }
        for (a, &g) in acc.iter_mut().zip(&u.grads) {
            *a += g;
        }
    }
    let scale = 1.0 / updates.len() as f32;
    for a in &mut acc {
        *a *= scale;
    }
    Ok(acc)
}

/// Sample-weighted FedAvg: clients contribute proportionally to how
/// many samples they trained on.
///
/// # Errors
///
/// Same conditions as [`fedavg`]; additionally errors if the total
/// sample count is zero.
pub fn fedavg_weighted(updates: &[ClientUpdate]) -> Result<Vec<f32>> {
    let first = updates.first().ok_or(FlError::NoClients)?;
    let n = first.grads.len();
    let total: usize = updates.iter().map(|u| u.samples).sum();
    if total == 0 {
        return Err(FlError::BadConfig(
            "weighted FedAvg over zero samples".into(),
        ));
    }
    let mut acc = vec![0.0f32; n];
    for u in updates {
        if u.grads.len() != n {
            return Err(FlError::UpdateLength {
                len: u.grads.len(),
                expected: n,
            });
        }
        let w = u.samples as f32 / total as f32;
        for (a, &g) in acc.iter_mut().zip(&u.grads) {
            *a += w * g;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(id: usize, grads: Vec<f32>, samples: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            grads,
            loss: 0.0,
            samples,
        }
    }

    #[test]
    fn fedavg_is_arithmetic_mean() {
        let out = fedavg(&[upd(0, vec![1.0, 3.0], 1), upd(1, vec![3.0, 5.0], 1)]).unwrap();
        assert_eq!(out, vec![2.0, 4.0]);
    }

    #[test]
    fn fedavg_of_identical_updates_is_identity() {
        let g = vec![0.5, -1.0, 2.0];
        let out = fedavg(&[
            upd(0, g.clone(), 1),
            upd(1, g.clone(), 1),
            upd(2, g.clone(), 1),
        ])
        .unwrap();
        assert_eq!(out, g);
    }

    #[test]
    fn fedavg_rejects_empty() {
        assert!(matches!(fedavg(&[]), Err(FlError::NoClients)));
    }

    #[test]
    fn fedavg_rejects_length_mismatch() {
        let r = fedavg(&[upd(0, vec![1.0], 1), upd(1, vec![1.0, 2.0], 1)]);
        assert!(matches!(r, Err(FlError::UpdateLength { .. })));
    }

    #[test]
    fn weighted_fedavg_weights_by_samples() {
        let out = fedavg_weighted(&[upd(0, vec![0.0], 1), upd(1, vec![4.0], 3)]).unwrap();
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn weighted_fedavg_rejects_zero_samples() {
        let r = fedavg_weighted(&[upd(0, vec![1.0], 0)]);
        assert!(r.is_err());
    }
}
