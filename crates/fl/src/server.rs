//! The central server.

use oasis_tensor::parallel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use oasis_nn::{flatten_params, load_params, param_count, Sequential};

use crate::{fedavg, FlClient, FlConfig, FlError, ModelFactory, Result};

/// Outcome of one protocol round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// How many clients contributed.
    pub participants: usize,
    /// Mean client loss.
    pub mean_loss: f32,
    /// L2 norm of the aggregated update.
    pub update_norm: f32,
}

/// The FL coordinator of paper Eq. 1, with an optional dishonest
/// tamper hook.
pub struct FlServer {
    factory: ModelFactory,
    model: Sequential,
    config: FlConfig,
    tamper: Option<Box<dyn crate::ModelTamper>>,
    round: usize,
}

impl FlServer {
    /// Creates a server with a freshly initialized global model.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] if the factory produces an empty
    /// model.
    pub fn new(factory: ModelFactory, config: FlConfig) -> Result<Self> {
        let mut model = factory();
        if param_count(&mut model) == 0 {
            return Err(FlError::BadConfig("model has no parameters".into()));
        }
        Ok(FlServer {
            factory,
            model,
            config,
            tamper: None,
            round: 0,
        })
    }

    /// Installs a dishonest-server behaviour (e.g. an active
    /// reconstruction attack).
    pub fn set_tamper(&mut self, tamper: Box<dyn crate::ModelTamper>) {
        self.tamper = Some(tamper);
    }

    /// The global model (e.g. for evaluation).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Current round counter.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The flattened global weights `w_t` as broadcast this round
    /// (after tampering, if a tamper hook is installed).
    pub fn broadcast_weights(&mut self) -> Vec<f32> {
        if let Some(t) = &self.tamper {
            t.tamper(&mut self.model, self.round);
        }
        flatten_params(&mut self.model)
    }

    /// Runs one round: tamper (if dishonest) → broadcast → parallel
    /// client updates → FedAvg → server SGD step.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoClients`] when `clients` is empty, or any
    /// client-side model error.
    pub fn run_round(&mut self, clients: &[FlClient], rng: &mut StdRng) -> Result<RoundReport> {
        if clients.is_empty() {
            return Err(FlError::NoClients);
        }
        // Random client selection (paper: "a subset of M < N users is
        // randomly selected").
        let m = if self.config.clients_per_round == 0 {
            clients.len()
        } else {
            self.config.clients_per_round.min(clients.len())
        };
        let mut order: Vec<&FlClient> = clients.iter().collect();
        order.shuffle(rng);
        let selected = &order[..m];

        let global = self.broadcast_weights();
        let round_seed: u64 = rng.gen();
        let batch = self.config.local_batch_size;
        let results = parallel::map_indexed(selected, |_, client| {
            client.compute_update(&self.factory, &global, batch, round_seed)
        });
        let mut updates = Vec::with_capacity(results.len());
        for r in results {
            updates.push(r?);
        }
        let agg = fedavg(&updates)?;
        let mean_loss = updates.iter().map(|u| u.loss).sum::<f32>() / updates.len() as f32;
        let update_norm = agg.iter().map(|g| g * g).sum::<f32>().sqrt();

        // w_{t+1} = w_t − η Ḡ
        let lr = self.config.learning_rate;
        let mut new_params = flatten_params(&mut self.model);
        for (w, &g) in new_params.iter_mut().zip(&agg) {
            *w -= lr * g;
        }
        load_params(&mut self.model, &new_params)?;

        let report = RoundReport {
            round: self.round,
            participants: updates.len(),
            mean_loss,
            update_norm,
        };
        self.round += 1;
        Ok(report)
    }

    /// Runs `rounds` rounds, returning per-round reports.
    ///
    /// # Errors
    ///
    /// Stops at the first failing round.
    pub fn run(
        &mut self,
        clients: &[FlClient],
        rounds: usize,
        seed: u64,
    ) -> Result<Vec<RoundReport>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rounds)
            .map(|_| self.run_round(clients, &mut rng))
            .collect()
    }
}

impl std::fmt::Debug for FlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlServer(round={}, tamper={})",
            self.round,
            self.tamper.as_ref().map(|t| t.name()).unwrap_or("none")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition_iid, IdentityPreprocessor};
    use oasis_data::cifar_like_with;
    use oasis_nn::{Linear, Relu};
    use std::sync::Arc;

    fn setup(classes: usize) -> (ModelFactory, Vec<FlClient>) {
        let data = cifar_like_with(classes, 8, 8, 3);
        let d = data.feature_dim();
        let factory: ModelFactory = Arc::new(move || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 24, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(24, classes, &mut rng));
            m
        });
        let clients = partition_iid(
            &data,
            4,
            Arc::new(IdentityPreprocessor),
            &mut StdRng::seed_from_u64(5),
        );
        (factory, clients)
    }

    #[test]
    fn round_reports_participants() {
        let (factory, clients) = setup(3);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        let report = server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(report.participants, 4);
        assert!(report.update_norm > 0.0);
    }

    #[test]
    fn client_subset_selection_respects_config() {
        let (factory, clients) = setup(3);
        let cfg = FlConfig {
            clients_per_round: 2,
            ..FlConfig::default()
        };
        let mut server = FlServer::new(factory, cfg).unwrap();
        let report = server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(report.participants, 2);
    }

    #[test]
    fn training_reduces_loss_over_rounds() {
        let (factory, clients) = setup(3);
        let cfg = FlConfig {
            learning_rate: 0.5,
            local_batch_size: 8,
            clients_per_round: 0,
        };
        let mut server = FlServer::new(factory, cfg).unwrap();
        let reports = server.run(&clients, 30, 42).unwrap();
        let first: f32 = reports[..3].iter().map(|r| r.mean_loss).sum::<f32>() / 3.0;
        let last: f32 = reports[reports.len() - 3..]
            .iter()
            .map(|r| r.mean_loss)
            .sum::<f32>()
            / 3.0;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn empty_client_set_errors() {
        let (factory, _) = setup(2);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        assert!(matches!(
            server.run_round(&[], &mut StdRng::seed_from_u64(0)),
            Err(FlError::NoClients)
        ));
    }

    #[test]
    fn round_counter_advances() {
        let (factory, clients) = setup(2);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        assert_eq!(server.round(), 0);
        server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(server.round(), 1);
    }
}
