//! The central server.

use oasis_tensor::parallel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use oasis_nn::{flatten_params, load_params, param_count, Sequential};
use oasis_wire::{
    CodecSpec, DeliveryStatus, EncodedUpdate, FrameArena, FrameBuf, NetSpec, Submission,
    UpdateCodec,
};

use crate::{ClientUpdate, FlClient, FlConfig, FlError, ModelFactory, Result};

/// Minimum model size (parameters) before update decoding fans a
/// wave of frames out across the worker pool; smaller updates decode
/// serially into one reused buffer, where pool-dispatch latency
/// would rival the decode itself.
const DECODE_PAR_MIN_ELEMS: usize = 16 * 1024;

/// How updates travel between clients and the server: the update
/// codec plus the simulated network condition.
///
/// The default — lossless [`CodecSpec::Raw`] over [`NetSpec::Ideal`]
/// — reproduces the in-process protocol bit-exactly while still
/// exercising the full encode → transport → decode path, so bytes on
/// the wire are always measured.
pub struct WireConfig {
    codec_spec: CodecSpec,
    codec: Box<dyn UpdateCodec>,
    /// The simulated network the round runs over.
    pub net: NetSpec,
}

impl WireConfig {
    /// Builds the wire from a codec and a network spec.
    pub fn new(codec: CodecSpec, net: NetSpec) -> Self {
        WireConfig {
            codec_spec: codec,
            codec: codec.build(),
            net,
        }
    }

    /// The codec spec in use.
    pub fn codec(&self) -> CodecSpec {
        self.codec_spec
    }
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig::new(CodecSpec::Raw, NetSpec::Ideal)
    }
}

impl std::fmt::Debug for WireConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WireConfig(codec={}, net={})", self.codec_spec, self.net)
    }
}

/// Outcome of one protocol round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// How many clients' updates were aggregated (delivered in time).
    pub participants: usize,
    /// Cohort size after sampling — the number of clients the
    /// scheduler drew for this round, whether from a resident client
    /// slice (the legacy path) or from a descriptor population. The
    /// deprecated `selected` name is derived from this one field via
    /// [`RoundReport::selected`].
    pub cohort: usize,
    /// How many selected clients' updates were lost or cut off.
    pub dropped: usize,
    /// Mean loss over the delivered clients (0 when none arrived).
    pub mean_loss: f32,
    /// L2 norm of the aggregated update (0 when none arrived).
    pub update_norm: f32,
    /// Encoded update bytes sent uplink (including lost updates).
    pub bytes_up: u64,
    /// Broadcast model bytes sent downlink.
    pub bytes_down: u64,
    /// Simulated wall-clock of the round in milliseconds (0 on the
    /// ideal network).
    pub sim_ms: f64,
    /// Wall-clock phase breakdown, populated only while telemetry is
    /// enabled (`None` otherwise). Measurement, not protocol outcome:
    /// ignored by `PartialEq` so traced and untraced runs compare
    /// equal.
    pub timings: Option<crate::RoundTimings>,
}

impl RoundReport {
    /// How many clients were selected to participate.
    ///
    /// Deprecated spelling of [`RoundReport::cohort`] — the two
    /// fields always carried the same number, so the duplicate field
    /// was collapsed; this accessor keeps the old name readable at
    /// call sites.
    pub fn selected(&self) -> usize {
        self.cohort
    }
}

/// Equality over protocol outcomes only: `timings` is wall-clock
/// measurement and varies run to run, so it is deliberately excluded
/// — determinism tests compare traced vs untraced reports directly.
impl PartialEq for RoundReport {
    fn eq(&self, other: &Self) -> bool {
        self.round == other.round
            && self.participants == other.participants
            && self.cohort == other.cohort
            && self.dropped == other.dropped
            && self.mean_loss == other.mean_loss
            && self.update_norm == other.update_norm
            && self.bytes_up == other.bytes_up
            && self.bytes_down == other.bytes_down
            && self.sim_ms == other.sim_ms
    }
}

/// The FL coordinator of paper Eq. 1, with an optional dishonest
/// tamper hook. Updates travel through a [`WireConfig`]: encoded by
/// an [`UpdateCodec`], moved by a simulated [`NetSpec`] transport,
/// and only the updates that actually arrive are aggregated —
/// weighted by the examples each client contributed.
pub struct FlServer {
    factory: ModelFactory,
    model: Sequential,
    config: FlConfig,
    tamper: Option<Box<dyn crate::ModelTamper>>,
    wire: WireConfig,
    round: usize,
    /// Reused decode scratch: lossy rounds decode delivered updates
    /// in waves of up to [`parallel::num_threads`] concurrent wire
    /// frames, one arena slot per wave lane, so a round allocates
    /// O(threads · model) instead of O(clients · model). Raw rounds
    /// fold borrowed views straight off the wire frames and leave the
    /// arena empty.
    arena: FrameArena,
}

impl FlServer {
    /// Creates a server with a freshly initialized global model on the
    /// default wire (raw codec, ideal network).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] if the factory produces an empty
    /// model.
    pub fn new(factory: ModelFactory, config: FlConfig) -> Result<Self> {
        let mut model = factory();
        if param_count(&mut model) == 0 {
            return Err(FlError::BadConfig("model has no parameters".into()));
        }
        Ok(FlServer {
            factory,
            model,
            config,
            tamper: None,
            wire: WireConfig::default(),
            round: 0,
            arena: FrameArena::new(),
        })
    }

    /// Installs a dishonest-server behaviour (e.g. an active
    /// reconstruction attack).
    pub fn set_tamper(&mut self, tamper: Box<dyn crate::ModelTamper>) {
        self.tamper = Some(tamper);
    }

    /// Replaces the wire (codec + simulated network) the rounds run
    /// over.
    pub fn set_wire(&mut self, wire: WireConfig) {
        self.wire = wire;
    }

    /// The wire currently in use.
    pub fn wire(&self) -> &WireConfig {
        &self.wire
    }

    /// Bytes of decode scratch the server's frame arena retains
    /// across rounds. Raw rounds fold borrowed frames, so this stays
    /// 0 on the default wire — the machine-checked face of the
    /// zero-copy decode path; lossy codecs retain O(threads · model).
    pub fn decode_scratch_bytes(&self) -> usize {
        self.arena.retained_bytes()
    }

    /// The training configuration the rounds run under.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// The model factory clients instantiate their local copy from.
    pub fn factory(&self) -> &ModelFactory {
        &self.factory
    }

    /// The global model (e.g. for evaluation).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Current round counter.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Overrides the round counter — used when resuming from a
    /// checkpoint.
    pub fn set_round(&mut self, round: usize) {
        self.round = round;
    }

    /// Loads flat global weights (e.g. from a reloaded checkpoint).
    ///
    /// # Errors
    ///
    /// Returns a model error when the length disagrees with the
    /// architecture.
    pub fn load_weights(&mut self, params: &[f32]) -> Result<()> {
        load_params(&mut self.model, params)?;
        Ok(())
    }

    /// Writes the global model as a wire-format checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem failures.
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        oasis_wire::checkpoint::save_model(path, &self.model)?;
        Ok(())
    }

    /// Restores the global model from a wire-format checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures and architecture mismatches.
    pub fn restore_checkpoint(&mut self, path: impl AsRef<std::path::Path>) -> Result<()> {
        oasis_wire::checkpoint::load_model(path, &mut self.model)?;
        Ok(())
    }

    /// The flattened global weights `w_t` as broadcast this round
    /// (after tampering, if a tamper hook is installed).
    pub fn broadcast_weights(&mut self) -> Vec<f32> {
        if let Some(t) = &self.tamper {
            t.tamper(&mut self.model, self.round);
        }
        flatten_params(&mut self.model)
    }

    /// Runs one round: tamper (if dishonest) → broadcast → parallel
    /// client updates → encode → simulated transport → decode →
    /// sample-weighted FedAvg over the updates that arrived → server
    /// SGD step.
    ///
    /// Partial participation is expected, not an error: lost or
    /// straggling updates are simply excluded from aggregation, and a
    /// round where nothing arrives leaves the model untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoClients`] when `clients` is empty, any
    /// client-side model error, or a wire encode/decode failure.
    pub fn run_round(&mut self, clients: &[FlClient], rng: &mut StdRng) -> Result<RoundReport> {
        if clients.is_empty() {
            return Err(FlError::NoClients);
        }
        let round_span = oasis_telemetry::span("fl.round");
        let mut timings = oasis_telemetry::enabled().then(crate::RoundTimings::default);

        // Random client selection (paper: "a subset of M < N users is
        // randomly selected").
        let select_span = oasis_telemetry::span("fl.round.select");
        let m = if self.config.clients_per_round == 0 {
            clients.len()
        } else {
            self.config.clients_per_round.min(clients.len())
        };
        let mut order: Vec<&FlClient> = clients.iter().collect();
        order.shuffle(rng);
        let selected = &order[..m];
        let select_ns = select_span.finish_ns();

        let broadcast_span = oasis_telemetry::span("fl.round.broadcast");
        let global = self.broadcast_weights();
        let broadcast_ns = broadcast_span.finish_ns();
        let bytes_down_each = global.len() * 4;
        let round_seed: u64 = rng.gen();
        let batch = self.config.local_batch_size;
        let codec = &self.wire.codec;
        // Per-client encode runs inside the same parallel task as the
        // local training, so `compute` covers both here; the codecs'
        // own `wire.encode.*` spans still attribute the encode share.
        let compute_span = oasis_telemetry::span("fl.round.compute");
        let results: Vec<Result<(ClientUpdate, EncodedUpdate)>> =
            parallel::map_indexed(selected, |_, client| {
                let update = client.compute_update(&self.factory, &global, batch, round_seed)?;
                let encoded = codec.encode(&update.grads)?;
                Ok((update, encoded))
            });
        let mut sent = Vec::with_capacity(results.len());
        for r in results {
            sent.push(r?);
        }
        let compute_ns = compute_span.finish_ns();
        oasis_telemetry::counter!("fl.clients_computed").add(sent.len() as u64);

        let deliver_span = oasis_telemetry::span("fl.round.deliver");
        let submissions: Vec<Submission> = sent
            .iter()
            .map(|(u, e)| Submission {
                client_id: u.client_id,
                bytes_up: e.byte_size(),
                bytes_down: bytes_down_each,
            })
            .collect();
        let traffic = self
            .wire
            .net
            .deliver(round_seed, self.round as u64, &submissions);

        // The server aggregates only what actually arrived, decoding
        // wire frames in parallel waves of reused buffers and folding
        // them into the sample-weighted mean strictly in delivery
        // order (the streaming form of [`fedavg_weighted`] — same
        // weights, same accumulation order at any thread count, no
        // per-client gradient copies held beyond the wave).
        let delivered: Vec<&(ClientUpdate, EncodedUpdate)> = sent
            .iter()
            .zip(&traffic.deliveries)
            .filter(|(_, d)| d.status == DeliveryStatus::Delivered)
            .map(|(u, _)| u)
            .collect();
        let deliver_ns = deliver_span.finish_ns();

        let mut decode_ns = 0u64;
        let mut fold_ns = 0u64;
        let mut step_ns = 0u64;
        let (mean_loss, update_norm) = if delivered.is_empty() {
            (0.0, 0.0)
        } else {
            let total: usize = delivered.iter().map(|(u, _)| u.samples).sum();
            if total == 0 {
                return Err(FlError::BadConfig(
                    "weighted FedAvg over zero samples".into(),
                ));
            }
            let n = global.len();
            let mut agg = vec![0.0f32; n];
            let mut loss_sum = 0.0f32;
            // A wave decodes up to `effective_parallelism` frames
            // concurrently into per-lane arena slots; the fold over
            // the wave then runs serially in delivery order, so the
            // FP accumulation sequence is identical to a fully serial
            // round. Two whole classes of round skip the waves:
            //
            // * The raw codec has no decode arithmetic to
            //   parallelize — an aligned frame is *borrowed*
            //   ([`UpdateCodec::decode_view`]) and folded in place
            //   with zero post-decode copies, so the serial streaming
            //   path is strictly faster at every model size.
            // * Small lossy models stay on a single slot — like every
            //   other parallel front, a decode below the work
            //   threshold must not pay pool-dispatch latency — as
            //   does a server running inside a pool worker (nested
            //   parallelism), sizing only scratch it can actually
            //   use.
            let zero_copy = matches!(self.wire.codec_spec, CodecSpec::Raw);
            let wave_width = if !zero_copy && n >= DECODE_PAR_MIN_ELEMS {
                parallel::effective_parallelism()
                    .min(delivered.len())
                    .max(1)
            } else {
                1
            };
            // The first failure aborts the fold, but every scratch
            // slot still returns to the arena — a malformed frame
            // must not cost the retained O(threads · model) scratch
            // on top of the failed round.
            let mut fold_err: Option<FlError> = None;
            let mut fold = |update: &ClientUpdate, buf: &[f32]| -> Option<FlError> {
                if buf.len() != n {
                    return Some(FlError::UpdateLength {
                        len: buf.len(),
                        expected: n,
                    });
                }
                let w = update.samples as f32 / total as f32;
                for (a, &g) in agg.iter_mut().zip(buf) {
                    *a += w * g;
                }
                loss_sum += update.loss;
                None
            };
            if wave_width == 1 {
                // Serial streaming path: each update folds straight
                // from a borrowed view — raw aligned frames in place
                // off the wire, everything else through one reused
                // arena slot. Zero per-update allocations either way.
                let mut buf = self.arena.acquire();
                for (update, encoded) in &delivered {
                    let decode_span = oasis_telemetry::span("fl.round.decode");
                    let decoded = codec.decode_view(encoded, &mut buf);
                    decode_ns += decode_span.finish_ns();
                    fold_err = match decoded {
                        Err(e) => Some(e.into()),
                        Ok(view) => {
                            let fold_span = oasis_telemetry::span("fl.round.fold");
                            let err = fold(update, view);
                            fold_ns += fold_span.finish_ns();
                            err
                        }
                    };
                    if fold_err.is_some() {
                        break;
                    }
                }
                self.arena.release(buf);
            } else {
                for wave in delivered.chunks(wave_width) {
                    type DecodeResult = std::result::Result<(), oasis_wire::WireError>;
                    let decode_span = oasis_telemetry::span("fl.round.decode");
                    let mut slots: Vec<(&EncodedUpdate, FrameBuf, DecodeResult)> = wave
                        .iter()
                        .map(|(_, encoded)| (encoded, self.arena.acquire(), Ok(())))
                        .collect();
                    parallel::for_each_mut(&mut slots, |_, (encoded, buf, res)| {
                        *res = codec.decode_to(encoded, buf.reset(encoded.n));
                    });
                    decode_ns += decode_span.finish_ns();
                    let fold_span = oasis_telemetry::span("fl.round.fold");
                    for ((update, _), (_, buf, res)) in wave.iter().zip(slots) {
                        if fold_err.is_none() {
                            fold_err = match res {
                                Err(e) => Some(e.into()),
                                Ok(()) => fold(update, buf.as_slice()),
                            };
                        }
                        self.arena.release(buf);
                    }
                    fold_ns += fold_span.finish_ns();
                    if fold_err.is_some() {
                        break;
                    }
                }
            }
            if let Some(e) = fold_err {
                return Err(e);
            }
            let mean_loss = loss_sum / delivered.len() as f32;
            let update_norm = agg.iter().map(|g| g * g).sum::<f32>().sqrt();

            let step_span = oasis_telemetry::span("fl.round.step");
            self.apply_update(&agg)?;
            step_ns = step_span.finish_ns();
            (mean_loss, update_norm)
        };

        oasis_telemetry::counter!("fl.rounds").add(1);
        let total_ns = round_span.finish_ns();
        if let Some(t) = timings.as_mut() {
            t.select_ns = select_ns;
            t.broadcast_ns = broadcast_ns;
            t.compute_ns = compute_ns;
            t.deliver_ns = deliver_ns;
            t.decode_ns = decode_ns;
            t.fold_ns = fold_ns;
            t.step_ns = step_ns;
            t.total_ns = total_ns;
        }
        let report = RoundReport {
            round: self.round,
            participants: delivered.len(),
            cohort: m,
            dropped: traffic.dropped,
            mean_loss,
            update_norm,
            bytes_up: traffic.bytes_up,
            bytes_down: traffic.bytes_down,
            sim_ms: traffic.round_ms,
            timings,
        };
        self.round += 1;
        Ok(report)
    }

    /// Applies an aggregated mean update as one server SGD step:
    /// `w_{t+1} = w_t − η Ḡ` (paper Eq. 1's server side). The legacy
    /// wave-decode round and the population streaming aggregator both
    /// land here, so the global step is bit-identical across paths.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UpdateLength`] when `agg` disagrees with
    /// the model's parameter count, or a model error from reloading
    /// the stepped weights.
    pub fn apply_update(&mut self, agg: &[f32]) -> Result<()> {
        let lr = self.config.learning_rate;
        let mut new_params = flatten_params(&mut self.model);
        if agg.len() != new_params.len() {
            return Err(FlError::UpdateLength {
                len: agg.len(),
                expected: new_params.len(),
            });
        }
        for (w, &g) in new_params.iter_mut().zip(agg) {
            *w -= lr * g;
        }
        load_params(&mut self.model, &new_params)?;
        Ok(())
    }

    /// Runs `rounds` rounds, returning per-round reports.
    ///
    /// # Errors
    ///
    /// Stops at the first failing round.
    pub fn run(
        &mut self,
        clients: &[FlClient],
        rounds: usize,
        seed: u64,
    ) -> Result<Vec<RoundReport>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rounds)
            .map(|_| self.run_round(clients, &mut rng))
            .collect()
    }
}

impl std::fmt::Debug for FlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlServer(round={}, tamper={}, wire={:?})",
            self.round,
            self.tamper.as_ref().map(|t| t.name()).unwrap_or("none"),
            self.wire,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition_iid, DefenseStack};
    use oasis_data::cifar_like_with;
    use oasis_nn::{Linear, Relu};
    use std::sync::Arc;

    fn setup(classes: usize) -> (ModelFactory, Vec<FlClient>) {
        let data = cifar_like_with(classes, 8, 8, 3);
        let d = data.feature_dim();
        let factory: ModelFactory = Arc::new(move || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 24, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(24, classes, &mut rng));
            m
        });
        let clients = partition_iid(
            &data,
            4,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(5),
        );
        (factory, clients)
    }

    #[test]
    fn round_reports_participants() {
        let (factory, clients) = setup(3);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        let report = server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(report.participants, 4);
        assert_eq!(report.cohort, 4);
        assert_eq!(report.selected(), report.cohort);
        assert_eq!(report.dropped, 0);
        assert!(report.update_norm > 0.0);
    }

    #[test]
    fn ideal_wire_reports_traffic() {
        let (factory, clients) = setup(3);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        let report = server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        // Raw codec: every update is slightly larger than 4·n bytes
        // (wire header), broadcast is exactly 4·n per client.
        let n = 8 * 8 * 3 * 24 + 24 + 24 * 3 + 3;
        assert_eq!(report.bytes_down, 4 * (4 * n as u64));
        assert!(report.bytes_up > 4 * (4 * n as u64));
        assert_eq!(report.sim_ms, 0.0);
    }

    #[test]
    fn client_subset_selection_respects_config() {
        let (factory, clients) = setup(3);
        let cfg = FlConfig {
            clients_per_round: 2,
            ..FlConfig::default()
        };
        let mut server = FlServer::new(factory, cfg).unwrap();
        let report = server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(report.participants, 2);
    }

    #[test]
    fn training_reduces_loss_over_rounds() {
        let (factory, clients) = setup(3);
        let cfg = FlConfig {
            learning_rate: 0.5,
            local_batch_size: 8,
            clients_per_round: 0,
        };
        let mut server = FlServer::new(factory, cfg).unwrap();
        let reports = server.run(&clients, 30, 42).unwrap();
        let first: f32 = reports[..3].iter().map(|r| r.mean_loss).sum::<f32>() / 3.0;
        let last: f32 = reports[reports.len() - 3..]
            .iter()
            .map(|r| r.mean_loss)
            .sum::<f32>()
            / 3.0;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_survives_a_lossy_wire() {
        let (factory, clients) = setup(3);
        let cfg = FlConfig {
            learning_rate: 0.5,
            local_batch_size: 8,
            clients_per_round: 0,
        };
        let mut server = FlServer::new(factory, cfg).unwrap();
        server.set_wire(WireConfig::new(
            CodecSpec::Q8,
            "sim:5,10,0.2".parse().unwrap(),
        ));
        let reports = server.run(&clients, 30, 42).unwrap();
        let delivered: usize = reports.iter().map(|r| r.participants).sum();
        let dropped: usize = reports.iter().map(|r| r.dropped).sum();
        assert!(dropped > 0, "20% loss should drop something over 30 rounds");
        assert!(delivered > dropped, "most updates should still arrive");
        assert!(reports.iter().all(|r| r.sim_ms > 0.0));
        let first: f32 = reports[..3].iter().map(|r| r.mean_loss).sum::<f32>() / 3.0;
        let last: f32 = reports[reports.len() - 3..]
            .iter()
            .map(|r| r.mean_loss)
            .sum::<f32>()
            / 3.0;
        assert!(
            last < first,
            "lossy-wire FL did not learn: {first} -> {last}"
        );
    }

    #[test]
    fn q8_wire_compresses_uplink() {
        let (factory, clients) = setup(3);
        let mut raw = FlServer::new(Arc::clone(&factory), FlConfig::default()).unwrap();
        let raw_report = raw
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let mut q8 = FlServer::new(factory, FlConfig::default()).unwrap();
        q8.set_wire(WireConfig::new(CodecSpec::Q8, NetSpec::Ideal));
        let q8_report = q8
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert!(
            q8_report.bytes_up * 3 < raw_report.bytes_up,
            "q8 uplink {} should be well under raw {}",
            q8_report.bytes_up,
            raw_report.bytes_up
        );
    }

    #[test]
    fn round_with_nothing_delivered_is_a_noop() {
        let (factory, clients) = setup(2);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        // A deadline no update can meet: everything is a straggler.
        server.set_wire(WireConfig::new(
            CodecSpec::Raw,
            "sim:1000,1,0,1".parse().unwrap(),
        ));
        let before = flatten_params(server.model_mut());
        let report = server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(report.participants, 0);
        assert_eq!(report.dropped, report.selected());
        assert_eq!(report.update_norm, 0.0);
        assert_eq!(flatten_params(server.model_mut()), before);
        // The round still advances — the protocol does not wedge.
        assert_eq!(server.round(), 1);
    }

    #[test]
    fn empty_client_set_errors() {
        let (factory, _) = setup(2);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        assert!(matches!(
            server.run_round(&[], &mut StdRng::seed_from_u64(0)),
            Err(FlError::NoClients)
        ));
    }

    #[test]
    fn round_counter_advances() {
        let (factory, clients) = setup(2);
        let mut server = FlServer::new(factory, FlConfig::default()).unwrap();
        assert_eq!(server.round(), 0);
        server
            .run_round(&clients, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(server.round(), 1);
    }

    #[test]
    fn checkpoint_restores_weights() {
        let (factory, clients) = setup(2);
        let mut server = FlServer::new(Arc::clone(&factory), FlConfig::default()).unwrap();
        server.run(&clients, 2, 9).unwrap();
        let trained = flatten_params(server.model_mut());
        let dir = std::env::temp_dir().join(format!("oasis_fl_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("global.oasis");
        server.save_checkpoint(&path).unwrap();

        let mut fresh = FlServer::new(factory, FlConfig::default()).unwrap();
        assert_ne!(flatten_params(fresh.model_mut()), trained);
        fresh.restore_checkpoint(&path).unwrap();
        fresh.set_round(server.round());
        assert_eq!(flatten_params(fresh.model_mut()), trained);
        assert_eq!(fresh.round(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
