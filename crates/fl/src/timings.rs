//! Per-round wall-clock phase breakdowns.

/// Wall-clock breakdown of one round across the protocol phases, in
/// nanoseconds. Produced by [`crate::FlServer::run_round`] (and the
/// population cohort runner) **only while telemetry is enabled** —
/// `report.timings` is `None` on untraced runs, so the report itself
/// stays bit-identical whether tracing is on or off.
///
/// Phases that a given round shape fuses report 0 here and show up
/// inside the enclosing phase instead:
///
/// * the legacy resident-client round fuses per-client `encode` into
///   `compute` (both run inside the same parallel task) and has no
///   `hydrate`;
/// * the population cohort round fuses `hydrate`/`compute`/`encode`
///   into its `compute` waves and `decode` into `fold` (the streaming
///   aggregator decodes each frame as it folds it).
///
/// The span trace (see `oasis-telemetry`) still attributes the fused
/// work: `wire.encode.*` / `wire.decode.*` spans are recorded by the
/// codecs themselves wherever they run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTimings {
    /// Cohort selection / scheduler sampling.
    pub select_ns: u64,
    /// Tamper hook + global weight flattening.
    pub broadcast_ns: u64,
    /// Hydrating client state from descriptors (population path; 0 on
    /// the legacy resident-client path).
    pub hydrate_ns: u64,
    /// Parallel local training across the cohort.
    pub compute_ns: u64,
    /// Update encoding, when not fused into `compute`.
    pub encode_ns: u64,
    /// Simulated transport: submissions, delivery plan, drops.
    pub deliver_ns: u64,
    /// Wire-frame decoding, when not fused into `fold`.
    pub decode_ns: u64,
    /// Sample-weighted folding of delivered updates.
    pub fold_ns: u64,
    /// The server SGD step.
    pub step_ns: u64,
    /// Whole-round wall clock (the `fl.round` span).
    pub total_ns: u64,
}

impl RoundTimings {
    /// The named phases in execution order, `(name, ns)`.
    pub fn phases(&self) -> [(&'static str, u64); 9] {
        [
            ("select", self.select_ns),
            ("broadcast", self.broadcast_ns),
            ("hydrate", self.hydrate_ns),
            ("compute", self.compute_ns),
            ("encode", self.encode_ns),
            ("deliver", self.deliver_ns),
            ("decode", self.decode_ns),
            ("fold", self.fold_ns),
            ("step", self.step_ns),
        ]
    }

    /// Sum of the named phases (excludes `total_ns`).
    pub fn phase_sum_ns(&self) -> u64 {
        self.phases().iter().map(|(_, ns)| ns).sum()
    }

    /// Fraction of the round's wall clock the named phases account
    /// for, in `[0, 1]`-ish (can exceed 1 by clock granularity).
    /// The observability acceptance gate asserts this is ≥ 0.9.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.phase_sum_ns() as f64 / self.total_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_phase_sum_over_total() {
        let t = RoundTimings {
            select_ns: 10,
            compute_ns: 70,
            step_ns: 10,
            total_ns: 100,
            ..RoundTimings::default()
        };
        assert_eq!(t.phase_sum_ns(), 90);
        assert!((t.coverage() - 0.9).abs() < 1e-12);
        assert_eq!(RoundTimings::default().coverage(), 0.0);
    }
}
