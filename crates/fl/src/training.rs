//! Client-side preprocessing, data partitioning and centralized
//! training helpers (used by the Table I experiment).

use std::sync::Arc;

use oasis_data::Dataset;
use oasis_nn::{softmax_cross_entropy, Layer, Mode, Optimizer, Sequential};
use oasis_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{BatchStage, DefenseStack, FlClient, Result};

/// Splits a dataset into `n` i.i.d. client shards, all running the
/// same [`DefenseStack`].
pub fn partition_iid(
    dataset: &Dataset,
    n: usize,
    defense: Arc<DefenseStack>,
    rng: &mut StdRng,
) -> Vec<FlClient> {
    use rand::seq::SliceRandom;
    let mut items = dataset.items().to_vec();
    items.shuffle(rng);
    let per = items.len() / n.max(1);
    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let start = i * per;
        let end = if i == n - 1 {
            items.len()
        } else {
            (i + 1) * per
        };
        let shard = Dataset::new(
            format!("{}-shard{}", dataset.name(), i),
            dataset.num_classes(),
            items[start..end].to_vec(),
        );
        clients.push(FlClient::new(i, shard, Arc::clone(&defense)));
    }
    clients
}

/// Splits a dataset into `n` label-skewed (non-IID) client shards via
/// a symmetric Dirichlet(α) allocation per class — the standard
/// heterogeneity model in the FL literature. Small `alpha` (e.g. 0.1)
/// gives near-pathological skew; large `alpha` approaches IID.
///
/// # Panics
///
/// Panics if `alpha` is not positive or `n` is zero.
pub fn partition_dirichlet(
    dataset: &Dataset,
    n: usize,
    alpha: f64,
    defense: Arc<DefenseStack>,
    rng: &mut StdRng,
) -> Vec<FlClient> {
    use rand::seq::SliceRandom;
    use rand::Rng;
    assert!(alpha > 0.0, "Dirichlet concentration must be positive");
    assert!(n > 0, "need at least one client");

    // Marsaglia–Tsang-free Gamma(α) sampling via Johnk's algorithm for
    // α < 1 and sum-of-exponentials boosting; adequate for partition
    // weights.
    let gamma_sample = |a: f64, rng: &mut StdRng| -> f64 {
        let mut acc = 0.0f64;
        let mut shape = a;
        while shape >= 1.0 {
            // Gamma(1) = Exp(1).
            acc += -(1.0 - rng.gen::<f64>()).ln();
            shape -= 1.0;
        }
        if shape > 1e-9 {
            // Johnk's generator for the fractional part.
            loop {
                let u: f64 = rng.gen();
                let v: f64 = rng.gen();
                let x = u.powf(1.0 / shape);
                let y = v.powf(1.0 / (1.0 - shape));
                if x + y <= 1.0 {
                    let e = -(1.0 - rng.gen::<f64>()).ln();
                    acc += e * x / (x + y);
                    break;
                }
            }
        }
        acc
    };

    let mut per_client_items: Vec<Vec<oasis_data::LabeledImage>> =
        (0..n).map(|_| Vec::new()).collect();
    for class in 0..dataset.num_classes() {
        let mut class_items: Vec<_> = dataset
            .items()
            .iter()
            .filter(|it| it.label == class)
            .cloned()
            .collect();
        if class_items.is_empty() {
            continue;
        }
        class_items.shuffle(rng);
        // Dirichlet weights = normalized Gamma draws.
        let weights: Vec<f64> = (0..n)
            .map(|_| gamma_sample(alpha, rng).max(1e-12))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut start = 0usize;
        for (client, &w) in weights.iter().enumerate() {
            let count = if client == n - 1 {
                class_items.len() - start
            } else {
                ((w / total) * class_items.len() as f64).round() as usize
            };
            let end = (start + count).min(class_items.len());
            per_client_items[client].extend(class_items[start..end].iter().cloned());
            start = end;
        }
    }
    per_client_items
        .into_iter()
        .enumerate()
        .map(|(i, items)| {
            let shard = Dataset::new(
                format!("{}-dirichlet{}", dataset.name(), i),
                dataset.num_classes(),
                items,
            );
            FlClient::new(i, shard, Arc::clone(&defense))
        })
        .collect()
}

/// Report from a centralized training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Final test accuracy in `[0, 1]`.
    pub test_accuracy: f64,
}

/// Trains `model` on `train` for `epochs` epochs with the given batch
/// size and preprocessor, then evaluates top-1 accuracy on `test`.
///
/// This is the Table I pipeline: the preprocessor is either the
/// identity (the paper's "Without OASIS" row) or the OASIS defense
/// (every other row).
///
/// # Errors
///
/// Propagates model execution failures.
#[allow(clippy::too_many_arguments)]
pub fn train_centralized(
    model: &mut Sequential,
    optimizer: &mut dyn Optimizer,
    train: &Dataset,
    test: &Dataset,
    preprocessor: &dyn BatchStage,
    epochs: usize,
    batch_size: usize,
    seed: u64,
) -> Result<TrainReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut epoch_losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut losses = Vec::new();
        for batch in train.shuffled_batches(batch_size, &mut rng) {
            let processed = preprocessor.process(&batch, &mut rng);
            let x = processed.to_matrix();
            model.zero_grad();
            let logits = model.forward(&x, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &processed.labels)?;
            model.backward(&out.grad)?;
            optimizer.step(model);
            losses.push(out.loss);
        }
        epoch_losses.push(losses.iter().sum::<f32>() / losses.len().max(1) as f32);
    }
    let test_accuracy = evaluate_accuracy(model, test, batch_size.max(1))?;
    Ok(TrainReport {
        epoch_losses,
        test_accuracy,
    })
}

/// Top-1 accuracy of `model` on `dataset`, evaluated in batches.
///
/// # Errors
///
/// Propagates model execution failures.
pub fn evaluate_accuracy(
    model: &mut Sequential,
    dataset: &Dataset,
    batch_size: usize,
) -> Result<f64> {
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in dataset.batches(batch_size) {
        let x: Tensor = batch.to_matrix();
        let logits = model.forward(&x, Mode::Eval)?;
        let preds = logits.argmax_rows().map_err(oasis_nn::NnError::from)?;
        correct += preds
            .iter()
            .zip(&batch.labels)
            .filter(|(p, l)| p == l)
            .count();
        total += batch.len();
    }
    Ok(if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdentityPreprocessor;
    use oasis_data::{cifar_like_with, Batch};
    use oasis_nn::{Linear, Relu, Sgd};

    #[test]
    fn identity_preprocessor_is_identity() {
        let ds = cifar_like_with(2, 2, 8, 0);
        let batch = Batch::from_items(ds.items().to_vec());
        let mut rng = StdRng::seed_from_u64(0);
        let out = IdentityPreprocessor.process(&batch, &mut rng);
        assert_eq!(out, batch);
    }

    #[test]
    fn partition_covers_all_samples() {
        let ds = cifar_like_with(4, 5, 8, 0);
        let clients = partition_iid(
            &ds,
            3,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(clients.len(), 3);
        let total: usize = clients.iter().map(|c| c.data().len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn dirichlet_partition_covers_all_samples() {
        let ds = cifar_like_with(5, 12, 8, 1);
        let clients = partition_dirichlet(
            &ds,
            4,
            0.5,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(clients.len(), 4);
        let total: usize = clients.iter().map(|c| c.data().len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn small_alpha_skews_labels_more_than_large_alpha() {
        // Measure label skew as the mean (over clients) of the max
        // class share within each client's shard.
        let ds = cifar_like_with(4, 24, 8, 2);
        let skew = |alpha: f64| -> f64 {
            let clients = partition_dirichlet(
                &ds,
                4,
                alpha,
                Arc::new(DefenseStack::identity()),
                &mut StdRng::seed_from_u64(7),
            );
            let mut total = 0.0;
            let mut counted = 0usize;
            for c in clients {
                if c.data().is_empty() {
                    continue;
                }
                let mut counts = vec![0usize; ds.num_classes()];
                for it in c.data().items() {
                    counts[it.label] += 1;
                }
                let max = *counts.iter().max().unwrap() as f64;
                total += max / c.data().len() as f64;
                counted += 1;
            }
            total / counted.max(1) as f64
        };
        let skew_low_alpha = skew(0.05);
        let skew_high_alpha = skew(50.0);
        assert!(
            skew_low_alpha > skew_high_alpha,
            "alpha 0.05 skew {skew_low_alpha:.2} should exceed alpha 50 skew {skew_high_alpha:.2}"
        );
    }

    #[test]
    fn tiny_alpha_concentrates_each_class_on_one_client() {
        // As α → 0 the Dirichlet concentrates each class's mass on
        // one client: per class, a single winner should hold (nearly)
        // all of it, and no sample may be lost.
        let ds = cifar_like_with(4, 24, 8, 5);
        let clients = partition_dirichlet(
            &ds,
            4,
            0.05,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(13),
        );
        let total: usize = clients.iter().map(|c| c.data().len()).sum();
        assert_eq!(total, ds.len(), "extreme skew must still conserve samples");
        let mut per_class = vec![vec![0usize; clients.len()]; ds.num_classes()];
        for (ci, c) in clients.iter().enumerate() {
            for it in c.data().items() {
                per_class[it.label][ci] += 1;
            }
        }
        let concentrated = per_class
            .iter()
            .filter(|counts| *counts.iter().max().unwrap() * 4 >= 24 * 3)
            .count();
        assert!(
            concentrated >= 3,
            "α=0.05 should hand ≥75% of most classes to a single client, \
             got {concentrated}/4 concentrated classes ({per_class:?})"
        );
    }

    #[test]
    fn underflowing_alpha_is_numerically_safe() {
        // Below α ≈ 1/n·ln(1/u) the Gamma draws underflow `f64` and
        // hit the 1e-12 floor; the partition must stay well-defined —
        // all samples placed, no NaN shares, every count finite —
        // rather than collapsing or crashing.
        let ds = cifar_like_with(3, 12, 8, 4);
        let clients = partition_dirichlet(
            &ds,
            3,
            1e-4,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(29),
        );
        assert_eq!(clients.len(), 3);
        let total: usize = clients.iter().map(|c| c.data().len()).sum();
        assert_eq!(
            total,
            ds.len(),
            "underflowed weights must still place every sample"
        );
        for c in &clients {
            assert!(c.data().len() <= ds.len());
        }
    }

    #[test]
    fn large_alpha_approaches_iid_shares() {
        // At α = 100 the Dirichlet is nearly uniform: every client
        // holds data, and every client's share of every class stays
        // near 1/n.
        let ds = cifar_like_with(4, 40, 8, 6);
        let n = 4;
        let clients = partition_dirichlet(
            &ds,
            n,
            100.0,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(13),
        );
        let total: usize = clients.iter().map(|c| c.data().len()).sum();
        assert_eq!(total, ds.len());
        let per_class = 40.0;
        for c in &clients {
            assert!(
                !c.data().is_empty(),
                "α=100 should leave no client empty-handed"
            );
            let mut counts = vec![0usize; ds.num_classes()];
            for it in c.data().items() {
                counts[it.label] += 1;
            }
            for (class, &count) in counts.iter().enumerate() {
                let share = count as f64 / per_class;
                assert!(
                    (share - 1.0 / n as f64).abs() < 0.15,
                    "client {} share of class {class} is {share:.2}, \
                     expected ~{:.2} at α=100",
                    c.id(),
                    1.0 / n as f64
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "concentration must be positive")]
    fn dirichlet_rejects_nonpositive_alpha() {
        let ds = cifar_like_with(2, 4, 8, 0);
        partition_dirichlet(
            &ds,
            2,
            0.0,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(0),
        );
    }

    #[test]
    fn centralized_training_learns_separable_classes() {
        let ds = cifar_like_with(3, 20, 8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = ds.split(0.8, &mut rng);
        let d = train.feature_dim();
        let mut model = Sequential::new();
        model.push(Linear::new(d, 32, &mut rng));
        model.push(Relu::new());
        model.push(Linear::new(32, 3, &mut rng));
        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
        let report = train_centralized(
            &mut model,
            &mut opt,
            &train,
            &test,
            &IdentityPreprocessor,
            20,
            8,
            7,
        )
        .unwrap();
        assert!(
            report.test_accuracy > 0.5,
            "accuracy {} too low",
            report.test_accuracy
        );
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
    }

    #[test]
    fn evaluate_accuracy_on_empty_dataset_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new();
        model.push(Linear::new(4, 2, &mut rng));
        let empty = Dataset::new("empty", 2, vec![]);
        assert_eq!(evaluate_accuracy(&mut model, &empty, 4).unwrap(), 0.0);
    }
}
