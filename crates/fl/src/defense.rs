//! The composable defense pipeline: [`Defense`], its two stages
//! ([`BatchStage`], [`UpdateStage`]), and the [`DefenseStack`] that
//! composes them.
//!
//! A client-side defense can act at two points of the round:
//!
//! 1. **Batch stage** — transform the sampled batch `D → D′` *before*
//!    gradients are computed. OASIS (additive augmentation, paper
//!    Eq. 7) and ATSPrivacy-style replacement live here.
//! 2. **Update stage** — perturb the flattened update *after*
//!    gradients are computed and before it is uploaded. DP-SGD
//!    (clip + Gaussian noise) and plain clipping live here.
//!
//! A [`DefenseStack`] holds any number of [`Defense`]s and applies
//! their batch stages in stack order, then their update stages in
//! stack order. The empty stack is the undefended baseline. Because
//! the stack *owns* the update perturbation, a DP defense can no
//! longer be silently forgotten by a caller that builds the batch
//! preprocessor but never asks for the DP parameters — the historical
//! `dp_params()` side channel this design replaces.
//!
//! ```
//! use oasis_fl::{DefenseStack, DpStage};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let stack = DefenseStack::of(DpStage::new(1.0, 0.5));
//! assert_eq!(stack.clip_norm(), Some(1.0));
//! let mut update = vec![3.0f32, 4.0];
//! stack.clip_update(&mut update); // ‖(3,4)‖ = 5 → scaled to norm 1
//! let n: f32 = update.iter().map(|v| v * v).sum::<f32>().sqrt();
//! assert!((n - 1.0).abs() < 1e-6);
//! let mut rng = StdRng::seed_from_u64(0);
//! stack.perturb_update(&mut update, 8, &mut rng); // adds σ·C/B noise
//! ```

use oasis_data::Batch;
use oasis_tensor::Tensor;
use rand::rngs::StdRng;

/// Client-side batch preprocessing applied before gradients are
/// computed — the first stage of the defense pipeline.
///
/// The OASIS defense implements this trait: its `process` returns the
/// augmented batch `D′ = D ∪ ⋃ X′_t` of paper Eq. 7. The identity
/// stage (an empty [`DefenseStack`]) is the undefended baseline.
pub trait BatchStage: Send + Sync {
    /// Transforms the sampled batch before gradient computation.
    fn process(&self, batch: &Batch, rng: &mut StdRng) -> Batch;

    /// A short name for reports.
    fn name(&self) -> &str {
        "batch-stage"
    }
}

/// The undefended client: trains on `D` unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityPreprocessor;

impl BatchStage for IdentityPreprocessor {
    fn process(&self, batch: &Batch, _rng: &mut StdRng) -> Batch {
        batch.clone()
    }

    fn name(&self) -> &str {
        "identity"
    }
}

impl Defense for IdentityPreprocessor {
    fn name(&self) -> &str {
        "identity"
    }

    fn batch_stage(&self) -> Option<&dyn BatchStage> {
        Some(self)
    }
}

/// An update-perturbing defense stage — the second stage of the
/// pipeline, applied to the flattened update the client uploads.
pub trait UpdateStage: Send + Sync {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Per-sample gradient L2 clip bound, when this stage clips.
    ///
    /// Harnesses that can afford per-sample gradients (the attack
    /// evaluation harness) clip each sample's gradient to this bound
    /// before averaging — record-level DP-SGD. The FL training client
    /// falls back to clipping the whole averaged update
    /// ([`DefenseStack::clip_update`]) — client-level DP.
    fn clip_norm(&self) -> Option<f32> {
        None
    }

    /// Perturbs the averaged update in place. `samples` is the number
    /// of examples averaged into it (`B`), which DP noise scales by.
    fn perturb(&self, update: &mut [f32], samples: usize, rng: &mut StdRng);
}

/// One client-side defense, as a value: a named bundle of up to one
/// batch stage and up to one update stage.
///
/// Implementations return `self` from the stage accessor(s) they
/// participate in; a [`DefenseStack`] composes any number of
/// defenses. Batch-only defenses (OASIS, ATS) override
/// [`Defense::batch_stage`]; update-only defenses (DP-SGD, clipping)
/// override [`Defense::update_stage`].
pub trait Defense: Send + Sync {
    /// Short family name for reports ("oasis", "dp", …).
    fn name(&self) -> &str;

    /// The batch-transform stage, if this defense has one.
    fn batch_stage(&self) -> Option<&dyn BatchStage> {
        None
    }

    /// The update-perturbation stage, if this defense has one.
    fn update_stage(&self) -> Option<&dyn UpdateStage> {
        None
    }
}

/// The DP-SGD update stage: clip (per-sample where the harness
/// supports it, whole-update otherwise) to `clip`, then add Gaussian
/// noise with standard deviation `noise · clip / B` to the averaged
/// update — the related-work baseline the paper trades off against.
#[derive(Debug, Clone, Copy)]
pub struct DpStage {
    clip: f32,
    noise: f32,
}

impl DpStage {
    /// A DP stage with clip bound `clip` and noise multiplier `noise`.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not positive or `noise` is negative.
    pub fn new(clip: f32, noise: f32) -> Self {
        assert!(clip > 0.0, "DP clip bound must be positive");
        assert!(noise >= 0.0, "DP noise multiplier must be non-negative");
        DpStage { clip, noise }
    }

    /// The clip bound `C`.
    pub fn clip(&self) -> f32 {
        self.clip
    }

    /// The noise multiplier σ.
    pub fn noise(&self) -> f32 {
        self.noise
    }
}

impl UpdateStage for DpStage {
    fn name(&self) -> &str {
        "dp"
    }

    fn clip_norm(&self) -> Option<f32> {
        Some(self.clip)
    }

    fn perturb(&self, update: &mut [f32], samples: usize, rng: &mut StdRng) {
        let inv_b = 1.0 / samples.max(1) as f32;
        let sigma = self.noise * self.clip * inv_b;
        // Drawn even at σ = 0 so the consumed rng stream (and thus any
        // downstream stage) is independent of the noise setting.
        let noise = Tensor::randn_scaled(&[update.len()], 0.0, sigma, rng);
        for (u, &n) in update.iter_mut().zip(noise.data()) {
            *u += n;
        }
    }
}

impl Defense for DpStage {
    fn name(&self) -> &str {
        "dp"
    }

    fn update_stage(&self) -> Option<&dyn UpdateStage> {
        Some(self)
    }
}

/// The clip-only update stage: DP-SGD's clipping without its noise —
/// bounds any single example's influence on the update but adds no
/// randomness.
#[derive(Debug, Clone, Copy)]
pub struct ClipStage {
    clip: f32,
}

impl ClipStage {
    /// A clipping stage with L2 bound `clip`.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not positive.
    pub fn new(clip: f32) -> Self {
        assert!(clip > 0.0, "clip bound must be positive");
        ClipStage { clip }
    }

    /// The clip bound `C`.
    pub fn clip(&self) -> f32 {
        self.clip
    }
}

impl UpdateStage for ClipStage {
    fn name(&self) -> &str {
        "clip"
    }

    fn clip_norm(&self) -> Option<f32> {
        Some(self.clip)
    }

    fn perturb(&self, _update: &mut [f32], _samples: usize, _rng: &mut StdRng) {}
}

impl Defense for ClipStage {
    fn name(&self) -> &str {
        "clip"
    }

    fn update_stage(&self) -> Option<&dyn UpdateStage> {
        Some(self)
    }
}

/// An ordered stack of [`Defense`]s, applied as a two-stage pipeline:
/// every batch stage in stack order, then every update stage in stack
/// order.
///
/// The empty stack ([`DefenseStack::identity`]) is the undefended
/// baseline: `process_batch` clones the batch and the update is
/// uploaded untouched.
#[derive(Default)]
pub struct DefenseStack {
    defenses: Vec<Box<dyn Defense>>,
}

impl DefenseStack {
    /// A stack over the given defenses, applied in order.
    pub fn new(defenses: Vec<Box<dyn Defense>>) -> Self {
        DefenseStack { defenses }
    }

    /// The empty stack: the undefended baseline.
    pub fn identity() -> Self {
        DefenseStack::default()
    }

    /// A single-defense stack.
    pub fn of(defense: impl Defense + 'static) -> Self {
        DefenseStack {
            defenses: vec![Box::new(defense)],
        }
    }

    /// Appends a defense to the stack.
    pub fn push(&mut self, defense: Box<dyn Defense>) {
        self.defenses.push(defense);
    }

    /// Number of defenses in the stack.
    pub fn len(&self) -> usize {
        self.defenses.len()
    }

    /// Whether the stack is the undefended baseline.
    pub fn is_empty(&self) -> bool {
        self.defenses.is_empty()
    }

    /// The stacked defense names, in application order.
    pub fn names(&self) -> Vec<&str> {
        self.defenses.iter().map(|d| d.name()).collect()
    }

    /// Whether any defense contributes an update stage — when true,
    /// the uploaded update is *not* the exact gradient.
    pub fn has_update_stage(&self) -> bool {
        self.defenses.iter().any(|d| d.update_stage().is_some())
    }

    /// Runs the batch pipeline: every batch stage in stack order.
    /// With no batch stages this clones the batch unchanged.
    pub fn process_batch(&self, batch: &Batch, rng: &mut StdRng) -> Batch {
        let mut stages = self.defenses.iter().filter_map(|d| d.batch_stage());
        let Some(first) = stages.next() else {
            return batch.clone();
        };
        let mut out = first.process(batch, rng);
        for stage in stages {
            out = stage.process(&out, rng);
        }
        out
    }

    /// The effective per-sample clip bound: the minimum over all
    /// update stages that clip (clipping to `C₁` then `C₂` equals
    /// clipping to `min(C₁, C₂)`), or `None` when nothing clips.
    pub fn clip_norm(&self) -> Option<f32> {
        self.defenses
            .iter()
            .filter_map(|d| d.update_stage().and_then(|s| s.clip_norm()))
            .reduce(f32::min)
    }

    /// Clips the whole update vector to [`DefenseStack::clip_norm`]
    /// (no-op when nothing clips) — the client-level fallback for
    /// harnesses that do not compute per-sample gradients.
    pub fn clip_update(&self, update: &mut [f32]) {
        let Some(clip) = self.clip_norm() else { return };
        let norm = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > clip {
            let scale = clip / norm;
            for v in update.iter_mut() {
                *v *= scale;
            }
        }
    }

    /// Runs the update pipeline: every update stage's `perturb` in
    /// stack order. `samples` is the number of examples averaged into
    /// the update.
    pub fn perturb_update(&self, update: &mut [f32], samples: usize, rng: &mut StdRng) {
        for stage in self.defenses.iter().filter_map(|d| d.update_stage()) {
            stage.perturb(update, samples, rng);
        }
    }
}

impl std::fmt::Debug for DefenseStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DefenseStack({})", self.names().join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;
    use rand::SeedableRng;

    fn batch(n: usize) -> Batch {
        let ds = cifar_like_with(2, n.div_ceil(2), 8, 0);
        Batch::from_items(ds.items().iter().take(n).cloned().collect())
    }

    #[test]
    fn identity_stack_is_identity() {
        let stack = DefenseStack::identity();
        let b = batch(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(stack.process_batch(&b, &mut rng), b);
        assert!(stack.is_empty());
        assert!(!stack.has_update_stage());
        assert_eq!(stack.clip_norm(), None);
        let mut update = vec![10.0f32, -20.0];
        let before = update.clone();
        stack.clip_update(&mut update);
        stack.perturb_update(&mut update, 4, &mut rng);
        assert_eq!(update, before);
    }

    #[test]
    fn single_batch_stage_matches_direct_call() {
        let stack = DefenseStack::of(IdentityPreprocessor);
        let b = batch(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(stack.process_batch(&b, &mut rng), b);
        assert_eq!(stack.names(), vec!["identity"]);
    }

    #[test]
    fn dp_stage_clips_and_noises() {
        let stack = DefenseStack::of(DpStage::new(1.0, 2.0));
        assert!(stack.has_update_stage());
        assert_eq!(stack.clip_norm(), Some(1.0));
        let mut update = vec![3.0f32, 4.0];
        stack.clip_update(&mut update);
        let norm: f32 = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6, "clipped norm {norm}");
        let clipped = update.clone();
        let mut rng = StdRng::seed_from_u64(7);
        stack.perturb_update(&mut update, 8, &mut rng);
        assert_ne!(update, clipped, "σ = 2 noise must move the update");
    }

    #[test]
    fn dp_noise_is_deterministic_per_seed() {
        let stack = DefenseStack::of(DpStage::new(1.0, 1.0));
        let run = |seed: u64| {
            let mut update = vec![0.5f32; 64];
            stack.perturb_update(&mut update, 8, &mut StdRng::seed_from_u64(seed));
            update
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn clip_stage_adds_no_noise() {
        let stack = DefenseStack::of(ClipStage::new(0.5));
        let mut update = vec![3.0f32, 4.0];
        stack.clip_update(&mut update);
        let clipped = update.clone();
        stack.perturb_update(&mut update, 8, &mut StdRng::seed_from_u64(0));
        assert_eq!(update, clipped);
        let norm: f32 = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_is_min_over_stages() {
        let stack = DefenseStack::new(vec![
            Box::new(DpStage::new(2.0, 0.1)),
            Box::new(ClipStage::new(0.25)),
        ]);
        assert_eq!(stack.clip_norm(), Some(0.25));
        assert_eq!(stack.names(), vec!["dp", "clip"]);
        assert_eq!(stack.len(), 2);
    }

    #[test]
    fn updates_below_clip_are_untouched() {
        let stack = DefenseStack::of(ClipStage::new(100.0));
        let mut update = vec![3.0f32, 4.0];
        stack.clip_update(&mut update);
        assert_eq!(update, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "clip bound must be positive")]
    fn dp_rejects_nonpositive_clip() {
        DpStage::new(0.0, 1.0);
    }
}
