//! Federated clients.

use std::sync::Arc;

use oasis_data::Dataset;
use oasis_nn::{flatten_grads, load_params, softmax_cross_entropy, Layer, Mode, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{BatchPreprocessor, Result};

/// Builds a fresh instance of the model architecture. Every
/// participant constructs the same architecture and loads the
/// broadcast weights into it — the FL analogue of agreeing on a model
/// definition file.
pub type ModelFactory = Arc<dyn Fn() -> Sequential + Send + Sync>;

/// The gradients a client uploads after local training
/// (`G_j` in paper Eq. 1).
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// The uploading client.
    pub client_id: usize,
    /// Flattened gradient vector in [`oasis_nn::flatten_grads`] order.
    pub grads: Vec<f32>,
    /// The client's local loss (diagnostic).
    pub loss: f32,
    /// How many samples contributed (after preprocessing — OASIS
    /// expands this).
    pub samples: usize,
}

/// A federated client owning a local data shard.
///
/// The client's only defense hook is its [`BatchPreprocessor`]: the
/// OASIS defense (crate `oasis`) implements the preprocessor that
/// replaces the local batch `D` with the augmented `D′` of Eq. 7.
pub struct FlClient {
    id: usize,
    data: Dataset,
    preprocessor: Arc<dyn BatchPreprocessor>,
}

impl FlClient {
    /// Creates a client with a local shard and a batch preprocessor.
    pub fn new(id: usize, data: Dataset, preprocessor: Arc<dyn BatchPreprocessor>) -> Self {
        FlClient {
            id,
            data,
            preprocessor,
        }
    }

    /// The client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The client's local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Executes one round of local computation: loads the broadcast
    /// weights, preprocesses a sampled batch, and returns the exact
    /// full-batch gradient — precisely what a dishonest server gets to
    /// inspect.
    ///
    /// Determinism: the drawn batch depends only on
    /// `(round_seed, client id)`.
    ///
    /// # Errors
    ///
    /// Propagates model-execution failures.
    pub fn compute_update(
        &self,
        factory: &ModelFactory,
        global_params: &[f32],
        batch_size: usize,
        round_seed: u64,
    ) -> Result<ClientUpdate> {
        let mut rng = StdRng::seed_from_u64(
            round_seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let batch = self
            .data
            .sample_batch(batch_size.min(self.data.len()), &mut rng);
        let processed = self.preprocessor.process(&batch, &mut rng);
        let mut model = factory();
        load_params(&mut model, global_params)?;
        model.zero_grad();
        let x = processed.to_matrix();
        let logits = model.forward(&x, Mode::Train)?;
        let loss = softmax_cross_entropy(&logits, &processed.labels)?;
        model.backward(&loss.grad)?;
        Ok(ClientUpdate {
            client_id: self.id,
            grads: flatten_grads(&mut model),
            loss: loss.loss,
            samples: processed.len(),
        })
    }
}

impl std::fmt::Debug for FlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FlClient(id={}, samples={})", self.id, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdentityPreprocessor;
    use oasis_data::cifar_like_with;
    use oasis_nn::{flatten_params, Linear, Relu};

    fn factory(d: usize, classes: usize) -> ModelFactory {
        Arc::new(move || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 16, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(16, classes, &mut rng));
            m
        })
    }

    #[test]
    fn update_has_model_parameter_count() {
        let data = cifar_like_with(3, 4, 8, 0);
        let d = data.feature_dim();
        let f = factory(d, 3);
        let mut template = f();
        let global = flatten_params(&mut template);
        let client = FlClient::new(0, data, Arc::new(IdentityPreprocessor));
        let update = client.compute_update(&f, &global, 4, 99).unwrap();
        assert_eq!(update.grads.len(), global.len());
        assert_eq!(update.samples, 4);
        assert!(update.loss.is_finite());
    }

    #[test]
    fn updates_are_deterministic_per_round_seed() {
        let data = cifar_like_with(3, 4, 8, 0);
        let d = data.feature_dim();
        let f = factory(d, 3);
        let global = flatten_params(&mut f());
        let client = FlClient::new(1, data, Arc::new(IdentityPreprocessor));
        let a = client.compute_update(&f, &global, 4, 5).unwrap();
        let b = client.compute_update(&f, &global, 4, 5).unwrap();
        let c = client.compute_update(&f, &global, 4, 6).unwrap();
        assert_eq!(a.grads, b.grads);
        assert_ne!(a.grads, c.grads);
    }

    #[test]
    fn gradient_is_nonzero_for_untrained_model() {
        let data = cifar_like_with(2, 2, 8, 1);
        let d = data.feature_dim();
        let f = factory(d, 2);
        let global = flatten_params(&mut f());
        let client = FlClient::new(2, data, Arc::new(IdentityPreprocessor));
        let update = client.compute_update(&f, &global, 2, 0).unwrap();
        assert!(update.grads.iter().any(|&g| g.abs() > 1e-9));
    }
}
