//! Federated clients.

use std::sync::Arc;

use oasis_data::Dataset;
use oasis_nn::{flatten_grads, load_params, softmax_cross_entropy, Layer, Mode, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{DefenseStack, Result};

/// Builds a fresh instance of the model architecture. Every
/// participant constructs the same architecture and loads the
/// broadcast weights into it — the FL analogue of agreeing on a model
/// definition file.
pub type ModelFactory = Arc<dyn Fn() -> Sequential + Send + Sync>;

/// The gradients a client uploads after local training
/// (`G_j` in paper Eq. 1).
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// The uploading client.
    pub client_id: usize,
    /// Flattened gradient vector in [`oasis_nn::flatten_grads`] order.
    pub grads: Vec<f32>,
    /// The client's local loss (diagnostic).
    pub loss: f32,
    /// How many samples contributed (after preprocessing — OASIS
    /// expands this).
    pub samples: usize,
}

/// A federated client owning a local data shard.
///
/// The client's defense hook is its [`DefenseStack`]: batch stages
/// (e.g. the OASIS defense from crate `oasis`, which replaces the
/// local batch `D` with the augmented `D′` of Eq. 7) run before
/// gradient computation, and update stages (DP-SGD clip + noise)
/// perturb the flattened update before it is uploaded. The empty
/// stack is the undefended baseline.
pub struct FlClient {
    id: usize,
    data: Dataset,
    defense: Arc<DefenseStack>,
}

impl FlClient {
    /// Creates a client with a local shard and a defense stack.
    pub fn new(id: usize, data: Dataset, defense: Arc<DefenseStack>) -> Self {
        FlClient { id, data, defense }
    }

    /// The client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The client's local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The client's defense stack.
    pub fn defense(&self) -> &DefenseStack {
        &self.defense
    }

    /// The client's deterministic per-round rng stream. Both
    /// [`FlClient::compute_update`] and [`FlClient::round_samples`]
    /// start from this stream, which is why the latter can predict the
    /// former's sample count without touching the model.
    fn round_rng(&self, round_seed: u64) -> StdRng {
        StdRng::seed_from_u64(round_seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// How many samples [`FlClient::compute_update`] would report for
    /// this `(batch_size, round_seed)` — without building the model or
    /// computing gradients.
    ///
    /// Replays exactly the rng-consuming prefix of a round (batch draw
    /// plus defense batch stages, which may expand the batch) on a
    /// fresh copy of the same seeded stream. Streaming aggregation
    /// needs every delivered client's sample count up front to form
    /// FedAvg weights before the first update is folded.
    pub fn round_samples(&self, batch_size: usize, round_seed: u64) -> usize {
        let mut rng = self.round_rng(round_seed);
        let batch = self
            .data
            .sample_batch(batch_size.min(self.data.len()), &mut rng);
        self.defense.process_batch(&batch, &mut rng).len()
    }

    /// Executes one round of local computation: loads the broadcast
    /// weights, runs the defense stack's batch stages on a sampled
    /// batch, computes the full-batch gradient, and runs the stack's
    /// update stages on it — the result is precisely what a dishonest
    /// server gets to inspect.
    ///
    /// Update stages apply at client granularity here: the whole
    /// averaged update is clipped to [`DefenseStack::clip_norm`] and
    /// then perturbed (client-level DP). The per-sample record-level
    /// variant lives in the attack harness, which can afford
    /// per-sample gradients.
    ///
    /// Determinism: the drawn batch and any update-stage noise depend
    /// only on `(round_seed, client id)`.
    ///
    /// # Errors
    ///
    /// Propagates model-execution failures.
    pub fn compute_update(
        &self,
        factory: &ModelFactory,
        global_params: &[f32],
        batch_size: usize,
        round_seed: u64,
    ) -> Result<ClientUpdate> {
        let mut rng = self.round_rng(round_seed);
        let batch = self
            .data
            .sample_batch(batch_size.min(self.data.len()), &mut rng);
        let processed = self.defense.process_batch(&batch, &mut rng);
        let mut model = factory();
        load_params(&mut model, global_params)?;
        model.zero_grad();
        let x = processed.to_matrix();
        let logits = model.forward(&x, Mode::Train)?;
        let loss = softmax_cross_entropy(&logits, &processed.labels)?;
        model.backward(&loss.grad)?;
        let mut grads = flatten_grads(&mut model);
        self.defense.clip_update(&mut grads);
        self.defense
            .perturb_update(&mut grads, processed.len(), &mut rng);
        Ok(ClientUpdate {
            client_id: self.id,
            grads,
            loss: loss.loss,
            samples: processed.len(),
        })
    }
}

impl std::fmt::Debug for FlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FlClient(id={}, samples={})", self.id, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DefenseStack, DpStage};
    use oasis_data::cifar_like_with;
    use oasis_nn::{flatten_params, Linear, Relu};

    fn factory(d: usize, classes: usize) -> ModelFactory {
        Arc::new(move || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 16, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(16, classes, &mut rng));
            m
        })
    }

    #[test]
    fn update_has_model_parameter_count() {
        let data = cifar_like_with(3, 4, 8, 0);
        let d = data.feature_dim();
        let f = factory(d, 3);
        let mut template = f();
        let global = flatten_params(&mut template);
        let client = FlClient::new(0, data, Arc::new(DefenseStack::identity()));
        let update = client.compute_update(&f, &global, 4, 99).unwrap();
        assert_eq!(update.grads.len(), global.len());
        assert_eq!(update.samples, 4);
        assert!(update.loss.is_finite());
    }

    #[test]
    fn updates_are_deterministic_per_round_seed() {
        let data = cifar_like_with(3, 4, 8, 0);
        let d = data.feature_dim();
        let f = factory(d, 3);
        let global = flatten_params(&mut f());
        let client = FlClient::new(1, data, Arc::new(DefenseStack::identity()));
        let a = client.compute_update(&f, &global, 4, 5).unwrap();
        let b = client.compute_update(&f, &global, 4, 5).unwrap();
        let c = client.compute_update(&f, &global, 4, 6).unwrap();
        assert_eq!(a.grads, b.grads);
        assert_ne!(a.grads, c.grads);
    }

    #[test]
    fn update_stage_clips_and_perturbs_the_upload() {
        let data = cifar_like_with(3, 4, 8, 0);
        let d = data.feature_dim();
        let f = factory(d, 3);
        let global = flatten_params(&mut f());
        let exact = FlClient::new(0, data.clone(), Arc::new(DefenseStack::identity()))
            .compute_update(&f, &global, 4, 5)
            .unwrap();
        let clip = 0.05f32;
        let defended = FlClient::new(
            0,
            data.clone(),
            Arc::new(DefenseStack::of(DpStage::new(clip, 0.1))),
        )
        .compute_update(&f, &global, 4, 5)
        .unwrap();
        assert_ne!(exact.grads, defended.grads, "DP stage must move the update");
        // Client-level clipping alone bounds the uploaded norm exactly.
        let clipped = FlClient::new(
            0,
            data,
            Arc::new(DefenseStack::of(crate::ClipStage::new(clip))),
        )
        .compute_update(&f, &global, 4, 5)
        .unwrap();
        let norm: f32 = clipped.grads.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            norm <= clip * 1.0001,
            "update norm {norm} above clip {clip}"
        );
    }

    #[test]
    fn round_samples_predicts_compute_update() {
        let data = cifar_like_with(3, 4, 8, 0);
        let d = data.feature_dim();
        let f = factory(d, 3);
        let global = flatten_params(&mut f());
        // An expanding batch defense: duplicates every sample, so the
        // reported count differs from the drawn batch size.
        struct Doubler;
        impl crate::BatchStage for Doubler {
            fn process(&self, batch: &oasis_data::Batch, _rng: &mut StdRng) -> oasis_data::Batch {
                let mut doubled = batch.clone();
                doubled.images.extend(batch.images.iter().cloned());
                doubled.labels.extend(batch.labels.iter().cloned());
                doubled
            }
        }
        impl crate::Defense for Doubler {
            fn name(&self) -> &str {
                "doubler"
            }
            fn batch_stage(&self) -> Option<&dyn crate::BatchStage> {
                Some(self)
            }
        }
        for (defense, seed) in [
            (Arc::new(DefenseStack::identity()), 5u64),
            (Arc::new(DefenseStack::of(Doubler)), 11u64),
        ] {
            let client = FlClient::new(3, data.clone(), defense);
            let update = client.compute_update(&f, &global, 4, seed).unwrap();
            assert_eq!(client.round_samples(4, seed), update.samples);
        }
    }

    #[test]
    fn gradient_is_nonzero_for_untrained_model() {
        let data = cifar_like_with(2, 2, 8, 1);
        let d = data.feature_dim();
        let f = factory(d, 2);
        let global = flatten_params(&mut f());
        let client = FlClient::new(2, data, Arc::new(DefenseStack::identity()));
        let update = client.compute_update(&f, &global, 2, 0).unwrap();
        assert!(update.grads.iter().any(|&g| g.abs() > 1e-9));
    }
}
