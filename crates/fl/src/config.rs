//! Protocol configuration.

use serde::{Deserialize, Serialize};

/// Configuration for the federated protocol (paper §II-A notation in
/// the field docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Server learning rate `η` applied to the averaged update.
    pub learning_rate: f32,
    /// Local batch size `B` drawn by each selected client per round.
    pub local_batch_size: usize,
    /// How many of the available clients participate per round (`M`).
    /// `0` means all.
    pub clients_per_round: usize,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            learning_rate: 0.1,
            local_batch_size: 8,
            clients_per_round: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = FlConfig::default();
        assert!(c.learning_rate > 0.0);
        assert!(c.local_batch_size > 0);
    }

    #[test]
    fn serde_round_trip() {
        // Serialize via Debug-comparable round trip through serde_json
        // is unavailable (no serde_json dep); check the derives exist
        // by cloning and comparing.
        let c = FlConfig {
            learning_rate: 0.5,
            local_batch_size: 4,
            clients_per_round: 2,
        };
        assert_eq!(c.clone(), c);
    }
}
