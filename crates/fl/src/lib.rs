//! # oasis-fl
//!
//! A horizontal federated-learning protocol simulation (paper §II-A)
//! with first-class support for **actively dishonest servers**
//! (paper §III-A threat model).
//!
//! The protocol is the iterative scheme of paper Eq. 1: each round the
//! server broadcasts the global weights `w_t`, a subset of clients
//! computes full-batch gradients `G_j = ∇ L(D_j, w_t)` on their local
//! data, and the server averages the updates and steps
//! `w_{t+1} = w_t − η·Ḡ`.
//!
//! Two hooks make this crate the substrate for the OASIS evaluation:
//!
//! * [`ModelTamper`] — the dishonest server's ability to modify the
//!   global model *before* dispatching it (how the RTF and CAH
//!   attacks insert their malicious layers), and
//! * [`DefenseStack`] — the client's composable defense pipeline:
//!   [`BatchStage`]s preprocess the training batch *before* gradients
//!   are computed (how the OASIS defense augments `D` into `D′`) and
//!   [`UpdateStage`]s perturb the flattened update *before* it is
//!   uploaded (how DP-SGD clips and noises).
//!
//! Updates travel over a real wire: each round every selected client
//! encodes its update with the server's [`WireConfig`] codec
//! (`oasis_wire`), a deterministic simulated transport delivers,
//! delays, or drops it, and the server aggregates **only what
//! arrived**, weighted by the examples each client contributed. The
//! default wire (raw codec, ideal network) reproduces the in-process
//! protocol bit-exactly.
//!
//! ```
//! use oasis_fl::{DefenseStack, FlConfig, FlServer, partition_iid};
//! use oasis_data::cifar_like_with;
//! use oasis_nn::{Linear, Relu, Sequential};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), oasis_fl::FlError> {
//! let data = cifar_like_with(4, 6, 8, 0); // tiny: 4 classes, 8×8
//! let d = data.feature_dim();
//! let factory: oasis_fl::ModelFactory = Arc::new(move || {
//!     let mut rng = StdRng::seed_from_u64(42);
//!     let mut m = Sequential::new();
//!     m.push(Linear::new(d, 32, &mut rng));
//!     m.push(Relu::new());
//!     m.push(Linear::new(32, 4, &mut rng));
//!     m
//! });
//! let clients = partition_iid(&data, 3, Arc::new(DefenseStack::identity()), &mut StdRng::seed_from_u64(1));
//! let mut server = FlServer::new(factory, FlConfig::default())?;
//! let report = server.run_round(&clients, &mut StdRng::seed_from_u64(2))?;
//! assert_eq!(report.participants, 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod aggregate;
mod client;
mod config;
mod defense;
mod error;
mod server;
mod tamper;
mod timings;
mod training;

pub use aggregate::{fedavg, fedavg_weighted};
pub use client::{ClientUpdate, FlClient, ModelFactory};
pub use config::FlConfig;
pub use defense::{
    BatchStage, ClipStage, Defense, DefenseStack, DpStage, IdentityPreprocessor, UpdateStage,
};
// The legacy name of [`BatchStage`], kept so downstream code written
// against the pre-stack API keeps compiling.
pub use defense::BatchStage as BatchPreprocessor;
pub use error::FlError;
pub use server::{FlServer, RoundReport, WireConfig};
pub use tamper::{HonestServer, ModelTamper};
pub use timings::RoundTimings;
pub use training::{
    evaluate_accuracy, partition_dirichlet, partition_iid, train_centralized, TrainReport,
};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, FlError>;
