//! Error type for the FL protocol.

use oasis_nn::NnError;
use std::fmt;

/// Errors produced by the federated-learning simulation.
#[derive(Debug)]
pub enum FlError {
    /// A model execution error inside a client or the server.
    Nn(NnError),
    /// The protocol was configured inconsistently.
    BadConfig(String),
    /// A client update has the wrong parameter count.
    UpdateLength {
        /// Length received.
        len: usize,
        /// Length expected (global model parameter count).
        expected: usize,
    },
    /// No clients were selected for a round.
    NoClients,
    /// Encoding or decoding an update on the wire failed.
    Wire(oasis_wire::WireError),
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "model error: {e}"),
            FlError::BadConfig(msg) => write!(f, "bad FL configuration: {msg}"),
            FlError::UpdateLength { len, expected } => {
                write!(f, "client update of length {len}, expected {expected}")
            }
            FlError::NoClients => write!(f, "round executed with no clients"),
            FlError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            FlError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

impl From<oasis_wire::WireError> for FlError {
    fn from(e: oasis_wire::WireError) -> Self {
        FlError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        for e in [
            FlError::BadConfig("x".into()),
            FlError::UpdateLength {
                len: 1,
                expected: 2,
            },
            FlError::NoClients,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
