//! The dishonest server's model-manipulation hook.

use oasis_nn::Sequential;

/// A server-side modification applied to the global model right
/// before it is broadcast — the capability that defines the paper's
/// threat model ("a dishonest server is capable of making malicious
/// modifications to `w` before dispatching it to the users").
///
/// The RTF and CAH attacks in `oasis-attacks` implement this trait;
/// their `tamper` installs the malicious `(W, b)` layer.
pub trait ModelTamper: Send + Sync {
    /// Mutates the global model in place for round `round`.
    fn tamper(&self, model: &mut Sequential, round: usize);

    /// A short name for reports.
    fn name(&self) -> &str {
        "tamper"
    }
}

/// The honest server: broadcasts the model unmodified.
#[derive(Debug, Default, Clone, Copy)]
pub struct HonestServer;

impl ModelTamper for HonestServer {
    fn tamper(&self, _model: &mut Sequential, _round: usize) {}

    fn name(&self) -> &str {
        "honest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_nn::{flatten_params, Linear};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn honest_server_leaves_model_untouched() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new();
        model.push(Linear::new(3, 2, &mut rng));
        let before = flatten_params(&mut model);
        HonestServer.tamper(&mut model, 0);
        assert_eq!(flatten_params(&mut model), before);
    }

    #[test]
    fn honest_server_has_a_name() {
        assert_eq!(ModelTamper::name(&HonestServer), "honest");
    }
}
