//! Property tests for the FL aggregation algebra.

use oasis_fl::{fedavg, fedavg_weighted, ClientUpdate};
use proptest::prelude::*;

fn upd(id: usize, grads: Vec<f32>, samples: usize) -> ClientUpdate {
    ClientUpdate {
        client_id: id,
        grads,
        loss: 0.0,
        samples,
    }
}

proptest! {
    /// FedAvg of identical updates is the identity.
    #[test]
    fn fedavg_identity(
        g in proptest::collection::vec(-10.0f32..10.0, 1..64),
        k in 1usize..8,
    ) {
        let updates: Vec<ClientUpdate> =
            (0..k).map(|i| upd(i, g.clone(), 1)).collect();
        let avg = fedavg(&updates).expect("valid updates");
        for (a, b) in avg.iter().zip(&g) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// FedAvg is permutation invariant.
    #[test]
    fn fedavg_is_permutation_invariant(
        seed in 0u64..1000,
        n in 1usize..32,
        k in 2usize..6,
    ) {
        use rand::{rngs::StdRng, SeedableRng, Rng};
        let mut rng = StdRng::seed_from_u64(seed);
        let updates: Vec<ClientUpdate> = (0..k)
            .map(|i| upd(i, (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect(), 1))
            .collect();
        let mut reversed = updates.clone();
        reversed.reverse();
        let a = fedavg(&updates).expect("valid");
        let b = fedavg(&reversed).expect("valid");
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// FedAvg is linear: avg(α·G) = α·avg(G).
    #[test]
    fn fedavg_is_homogeneous(
        seed in 0u64..1000,
        n in 1usize..32,
        alpha in -3.0f32..3.0,
    ) {
        use rand::{rngs::StdRng, SeedableRng, Rng};
        let mut rng = StdRng::seed_from_u64(seed);
        let updates: Vec<ClientUpdate> = (0..3)
            .map(|i| upd(i, (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect(), 1))
            .collect();
        let scaled: Vec<ClientUpdate> = updates
            .iter()
            .map(|u| upd(u.client_id, u.grads.iter().map(|g| g * alpha).collect(), 1))
            .collect();
        let base = fedavg(&updates).expect("valid");
        let scaled_avg = fedavg(&scaled).expect("valid");
        for (x, y) in scaled_avg.iter().zip(&base) {
            prop_assert!((x - alpha * y).abs() < 1e-3_f32.max(y.abs() * 1e-4));
        }
    }

    /// Weighted FedAvg with equal sample counts equals plain FedAvg.
    #[test]
    fn weighted_equals_plain_for_equal_samples(
        seed in 0u64..1000,
        n in 1usize..32,
        samples in 1usize..100,
    ) {
        use rand::{rngs::StdRng, SeedableRng, Rng};
        let mut rng = StdRng::seed_from_u64(seed);
        let updates: Vec<ClientUpdate> = (0..4)
            .map(|i| upd(i, (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect(), samples))
            .collect();
        let plain = fedavg(&updates).expect("valid");
        let weighted = fedavg_weighted(&updates).expect("valid");
        for (x, y) in plain.iter().zip(&weighted) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Weighted FedAvg returns a convex combination: bounded by the
    /// per-coordinate min/max of the inputs.
    #[test]
    fn weighted_fedavg_is_convex(
        seed in 0u64..1000,
        n in 1usize..16,
        s1 in 1usize..50,
        s2 in 1usize..50,
    ) {
        use rand::{rngs::StdRng, SeedableRng, Rng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g1: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let g2: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let updates = vec![upd(0, g1.clone(), s1), upd(1, g2.clone(), s2)];
        let w = fedavg_weighted(&updates).expect("valid");
        for i in 0..n {
            let lo = g1[i].min(g2[i]) - 1e-4;
            let hi = g1[i].max(g2[i]) + 1e-4;
            prop_assert!(w[i] >= lo && w[i] <= hi, "{} not in [{lo}, {hi}]", w[i]);
        }
    }
}
