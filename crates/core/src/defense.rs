//! The OASIS defense: batch augmentation per paper Eq. 7.

use oasis_data::Batch;
use oasis_fl::{BatchStage, Defense};
use rand::rngs::StdRng;

use crate::OasisConfig;

/// The OASIS defense.
///
/// As a [`BatchStage`] (and therefore a [`Defense`] that can be
/// stacked with others, e.g. a DP-SGD update stage), `Oasis` plugs
/// directly into the FL client pipeline: before gradients are
/// computed, the local batch
/// `D = {x_t}` is expanded to
///
/// ```text
/// D′ = D ∪ ⋃_t X′_t        (paper Eq. 7)
/// ```
///
/// where `X′_t` contains the configured transformations of `x_t`,
/// each labeled like `x_t`. Originals come first in the output batch,
/// followed by the augment groups in sample order — a layout the
/// activation-set analyzer relies on.
#[derive(Debug, Clone, Default)]
pub struct Oasis {
    config: OasisConfig,
}

impl Oasis {
    /// Creates the defense from a configuration.
    pub fn new(config: OasisConfig) -> Self {
        Oasis { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &OasisConfig {
        &self.config
    }

    /// Expands a batch to `D′` (deterministic; the paper's transforms
    /// have fixed parameters, so no randomness is consumed).
    pub fn defend(&self, batch: &Batch) -> Batch {
        let policy = self.config.augmentation();
        let mut images = batch.images.clone();
        let mut labels = batch.labels.clone();
        for (img, &label) in batch.images.iter().zip(&batch.labels) {
            for transformed in policy.expand(img) {
                images.push(transformed);
                labels.push(label);
            }
        }
        Batch::new(images, labels)
    }
}

impl BatchStage for Oasis {
    fn process(&self, batch: &Batch, _rng: &mut StdRng) -> Batch {
        self.defend(batch)
    }

    fn name(&self) -> &str {
        self.config.augmentation().name()
    }
}

impl Defense for Oasis {
    fn name(&self) -> &str {
        "oasis"
    }

    fn batch_stage(&self) -> Option<&dyn BatchStage> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_augment::PolicyKind;
    use oasis_data::cifar_like_with;
    use rand::SeedableRng;

    fn batch(n: usize) -> Batch {
        let ds = cifar_like_with(n, 1, 12, 0);
        Batch::from_items(ds.items().to_vec())
    }

    #[test]
    fn defend_expands_by_policy_factor() {
        for kind in PolicyKind::all() {
            let defense = Oasis::new(OasisConfig::policy(kind));
            let b = batch(5);
            let out = defense.defend(&b);
            assert_eq!(
                out.len(),
                5 * kind.policy().expansion_factor(),
                "policy {}",
                kind.abbrev()
            );
        }
    }

    #[test]
    fn originals_come_first_unchanged() {
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation));
        let b = batch(3);
        let out = defense.defend(&b);
        for i in 0..3 {
            assert_eq!(out.images[i], b.images[i]);
            assert_eq!(out.labels[i], b.labels[i]);
        }
    }

    #[test]
    fn augments_inherit_labels() {
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotationShearing));
        let b = batch(4);
        let out = defense.defend(&b);
        // Layout: originals, then 6 augments per sample in order.
        for t in 0..4 {
            for k in 0..6 {
                let idx = 4 + t * 6 + k;
                assert_eq!(out.labels[idx], b.labels[t], "augment {k} of sample {t}");
            }
        }
    }

    #[test]
    fn without_policy_is_identity() {
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::Without));
        let b = batch(4);
        assert_eq!(defense.defend(&b), b);
    }

    #[test]
    fn preprocessor_name_matches_policy() {
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::Shearing));
        assert_eq!(BatchStage::name(&defense), "SH");
    }

    #[test]
    fn process_is_deterministic() {
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation));
        let b = batch(2);
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(999);
        assert_eq!(
            defense.process(&b, &mut rng1),
            defense.process(&b, &mut rng2)
        );
    }
}
