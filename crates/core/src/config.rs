//! Defense configuration.

use oasis_augment::{AugmentationPolicy, PolicyKind};
use serde::{Deserialize, Serialize};

/// Configuration of the OASIS defense.
///
/// ```
/// use oasis::OasisConfig;
/// use oasis_augment::PolicyKind;
///
/// // The paper's strongest anti-RTF configuration:
/// let mr = OasisConfig::policy(PolicyKind::MajorRotation);
/// assert_eq!(mr.augmentation().name(), "MR");
///
/// // The combination needed against CAH:
/// let combo = OasisConfig::policy(PolicyKind::MajorRotationShearing);
/// assert_eq!(combo.augmentation().expansion_factor(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OasisConfig {
    policy: AugmentationPolicy,
}

impl OasisConfig {
    /// Uses one of the paper's named policies.
    pub fn policy(kind: PolicyKind) -> Self {
        OasisConfig {
            policy: kind.policy(),
        }
    }

    /// Uses a custom augmentation policy.
    pub fn custom(policy: AugmentationPolicy) -> Self {
        OasisConfig { policy }
    }

    /// The configured augmentation policy.
    pub fn augmentation(&self) -> &AugmentationPolicy {
        &self.policy
    }
}

impl Default for OasisConfig {
    /// Defaults to major rotation — the paper's most robust single
    /// transformation against RTF (§IV-B).
    fn default() -> Self {
        OasisConfig::policy(PolicyKind::MajorRotation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_major_rotation() {
        assert_eq!(OasisConfig::default().augmentation().name(), "MR");
    }

    #[test]
    fn custom_policy_is_preserved() {
        let p = AugmentationPolicy::shearing();
        let cfg = OasisConfig::custom(p.clone());
        assert_eq!(cfg.augmentation(), &p);
    }
}
