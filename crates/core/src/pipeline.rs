//! Convenience constructors wiring the defense into the FL client
//! pipeline.

use std::sync::Arc;

use oasis_data::Dataset;
use oasis_fl::{DefenseStack, FlClient};

use crate::{Oasis, OasisConfig};

/// An FL client whose batches pass through the OASIS defense before
/// gradient computation.
///
/// ```
/// use oasis::{defended_client, OasisConfig};
/// use oasis_augment::PolicyKind;
/// use oasis_data::cifar_like_with;
///
/// let shard = cifar_like_with(3, 4, 8, 0);
/// let client = defended_client(0, shard, OasisConfig::policy(PolicyKind::MajorRotation));
/// assert_eq!(client.id(), 0);
/// ```
pub fn defended_client(id: usize, data: Dataset, config: OasisConfig) -> FlClient {
    FlClient::new(id, data, Arc::new(DefenseStack::of(Oasis::new(config))))
}

/// An FL client running an arbitrary [`DefenseStack`] — e.g. OASIS
/// stacked with a DP-SGD update stage.
pub fn stacked_client(id: usize, data: Dataset, stack: DefenseStack) -> FlClient {
    FlClient::new(id, data, Arc::new(stack))
}

/// An undefended FL client (the paper's "Without OASIS" baseline).
pub fn undefended_client(id: usize, data: Dataset) -> FlClient {
    FlClient::new(id, data, Arc::new(DefenseStack::identity()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_augment::PolicyKind;
    use oasis_data::cifar_like_with;
    use oasis_fl::ModelFactory;
    use oasis_nn::{flatten_params, Linear, Relu, Sequential};
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc as StdArc;

    #[test]
    fn defended_client_computes_update_on_expanded_batch() {
        let data = cifar_like_with(3, 4, 8, 0);
        let d = data.feature_dim();
        let factory: ModelFactory = StdArc::new(move || {
            let mut rng = StdRng::seed_from_u64(0);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 8, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(8, 3, &mut rng));
            m
        });
        let global = flatten_params(&mut factory());
        let client = defended_client(
            0,
            data.clone(),
            OasisConfig::policy(PolicyKind::MajorRotation),
        );
        let update = client.compute_update(&factory, &global, 4, 1).unwrap();
        assert_eq!(update.samples, 16, "4 samples × (1 + 3 rotations)");

        let plain = undefended_client(1, data);
        let update2 = plain.compute_update(&factory, &global, 4, 1).unwrap();
        assert_eq!(update2.samples, 4);
    }
}
