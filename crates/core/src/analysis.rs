//! Executable Proposition 1: activation-set overlap analysis.
//!
//! Paper Proposition 1 gives the defense's success condition — for a
//! sample `x_t`, if some `x′_t ∈ D′` activates the *same set* of
//! malicious-layer neurons, the attacker cannot isolate
//! `(∂L_t/∂W, ∂L_t/∂b)` from the summed gradients. This module checks
//! that condition directly against any concrete malicious layer, so
//! experiments can correlate *predicted* protection with *measured*
//! reconstruction PSNR.

use oasis_data::Batch;
use oasis_nn::Linear;
use oasis_tensor::Tensor;

use crate::Oasis;

/// The per-batch result of the Proposition 1 check.
#[derive(Debug, Clone)]
pub struct ActivationAnalysis {
    /// For each original sample: does some augmented sibling share its
    /// exact activation set (or does it activate nothing)?
    pub per_sample_protected: Vec<bool>,
    /// Fraction of protected samples.
    pub protection_rate: f64,
    /// Mean number of active malicious neurons per original sample.
    pub mean_active_neurons: f64,
    /// For each original, how many of its siblings share its set.
    pub twin_counts: Vec<usize>,
}

/// Evaluates Proposition 1 for `batch` under `defense` against the
/// given malicious layer.
///
/// The defended batch is laid out as [`Oasis::defend`] produces it:
/// originals first, then augment groups in sample order.
///
/// # Panics
///
/// Panics if the layer's input width does not match the image size.
pub fn activation_set_analysis(
    malicious_layer: &Linear,
    batch: &Batch,
    defense: &Oasis,
) -> ActivationAnalysis {
    let defended = defense.defend(batch);
    let b = batch.len();
    let group = defense.config().augmentation().expansion_factor() - 1;
    let x = defended.to_matrix();
    assert_eq!(
        x.dims()[1],
        malicious_layer.in_features(),
        "layer width must match image size"
    );

    // Pre-activations of the malicious layer for every defended image.
    let z = x
        .matmul_nt(malicious_layer.weight())
        .and_then(|zz| zz.add_row_broadcast(malicious_layer.bias()))
        .expect("shapes validated above");
    let n = malicious_layer.out_features();
    let active = |row: usize| -> Vec<bool> {
        z.row(row)
            .expect("row in bounds")
            .iter()
            .map(|&v| v > 0.0)
            .collect()
    };

    let mut per_sample_protected = Vec::with_capacity(b);
    let mut twin_counts = Vec::with_capacity(b);
    let mut total_active = 0usize;
    for t in 0..b {
        let set_t = active(t);
        total_active += set_t.iter().filter(|&&a| a).count();
        // A sample that activates nothing contributes no gradient and
        // cannot be reconstructed at all.
        if set_t.iter().all(|&a| !a) {
            per_sample_protected.push(true);
            twin_counts.push(0);
            continue;
        }
        let mut twins = 0usize;
        for k in 0..group {
            let sibling_row = b + t * group + k;
            if active(sibling_row) == set_t {
                twins += 1;
            }
        }
        per_sample_protected.push(twins > 0);
        twin_counts.push(twins);
    }
    let protection_rate = if b == 0 {
        0.0
    } else {
        per_sample_protected.iter().filter(|&&p| p).count() as f64 / b as f64
    };
    let _ = n;
    ActivationAnalysis {
        protection_rate,
        mean_active_neurons: if b == 0 {
            0.0
        } else {
            total_active as f64 / b as f64
        },
        per_sample_protected,
        twin_counts,
    }
}

/// Builds a [`Linear`] from explicit weight/bias for analysis use.
///
/// # Panics
///
/// Panics on shape mismatch (see [`Linear::from_parts`]).
pub fn layer_from_parts(weight: Tensor, bias: Tensor) -> Linear {
    Linear::from_parts(weight, bias).expect("valid layer shapes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OasisConfig;
    use oasis_augment::PolicyKind;
    use oasis_data::cifar_like_with;

    fn batch(n: usize, side: usize) -> Batch {
        let ds = cifar_like_with(n, 1, side, 3);
        Batch::from_items(ds.items().to_vec())
    }

    /// An RTF-style measurement layer: every row is the mean
    /// functional, biases are spread cutoffs.
    fn rtf_style_layer(d: usize, n: usize, mean: f32, spread: f32) -> Linear {
        let w = Tensor::full(&[n, d], 1.0 / d as f32);
        let cuts: Vec<f32> = (0..n)
            .map(|i| -(mean - spread + 2.0 * spread * (i as f32 + 1.0) / (n as f32 + 1.0)))
            .collect();
        layer_from_parts(w, Tensor::from_slice(&cuts))
    }

    #[test]
    fn major_rotation_protects_against_measurement_layers() {
        // Major rotation preserves the mean measurement exactly →
        // every sample's rotations share its activation set →
        // protection rate 1.0 (the paper's Proposition 1 + §IV-B).
        let b = batch(6, 12);
        let d = b.images[0].numel();
        let layer = rtf_style_layer(d, 64, 0.35, 0.15);
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation));
        let analysis = activation_set_analysis(&layer, &b, &defense);
        assert_eq!(analysis.protection_rate, 1.0, "{:?}", analysis.twin_counts);
        // Every *activating* sample should be twinned by (nearly) all
        // three rotations; samples with an empty activation set report
        // zero twins and are protected trivially. Float summation
        // order can cost a stray twin when a pre-activation lands
        // within ~1e-5 of a cutoff.
        for &count in &analysis.twin_counts {
            assert!(count == 0 || count >= 2, "twins {:?}", analysis.twin_counts);
        }
    }

    #[test]
    fn flips_also_protect_measurement_layers() {
        let b = batch(5, 12);
        let d = b.images[0].numel();
        let layer = rtf_style_layer(d, 32, 0.35, 0.15);
        for kind in [PolicyKind::HorizontalFlip, PolicyKind::VerticalFlip] {
            let defense = Oasis::new(OasisConfig::policy(kind));
            let analysis = activation_set_analysis(&layer, &b, &defense);
            assert_eq!(analysis.protection_rate, 1.0, "policy {}", kind.abbrev());
        }
    }

    #[test]
    fn no_augmentation_gives_no_protection() {
        let b = batch(5, 12);
        let d = b.images[0].numel();
        let layer = rtf_style_layer(d, 32, 0.35, 0.15);
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::Without));
        let analysis = activation_set_analysis(&layer, &b, &defense);
        // Samples activating at least one neuron are unprotected.
        let active_samples = analysis
            .per_sample_protected
            .iter()
            .filter(|&&p| !p)
            .count();
        assert!(
            active_samples > 0,
            "test layer should activate for some samples"
        );
    }

    #[test]
    fn random_layer_defeats_single_transforms_sometimes() {
        // Against trap-style random weights, a rotation rarely lands in
        // the identical activation set — the Figure 6 phenomenon that
        // motivates MR+SH. The protection rate must be below 1.
        use rand::{rngs::StdRng, SeedableRng};
        let b = batch(6, 12);
        let d = b.images[0].numel();
        let mut rng = StdRng::seed_from_u64(0);
        let w = Tensor::randn(&[64, d], &mut rng).scale(1.0 / (d as f32).sqrt());
        let layer = layer_from_parts(w, Tensor::zeros(&[64]));
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation));
        let analysis = activation_set_analysis(&layer, &b, &defense);
        assert!(
            analysis.protection_rate < 1.0,
            "random layers should not be universally twinned: {:?}",
            analysis.twin_counts
        );
    }

    #[test]
    fn mean_active_neurons_is_plausible() {
        let b = batch(4, 12);
        let d = b.images[0].numel();
        let layer = rtf_style_layer(d, 50, 0.35, 0.15);
        let defense = Oasis::new(OasisConfig::policy(PolicyKind::Without));
        let analysis = activation_set_analysis(&layer, &b, &defense);
        assert!(analysis.mean_active_neurons > 0.0);
        assert!(analysis.mean_active_neurons <= 50.0);
    }
}
