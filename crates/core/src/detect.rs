//! Client-side detection of malicious layer structure.
//!
//! The paper's threat model notes the server's modifications "should
//! be minimal to avoid detection" (§III-A) — implying clients *could*
//! inspect the broadcast weights. This module makes that inspection
//! concrete: both published attack constructions leave strong
//! statistical fingerprints in the first fully-connected layer.
//!
//! * **RTF imprint modules** use (near-)identical rows — the same
//!   measurement functional repeated `n` times — with biases swept
//!   across quantiles. Honest initializations have essentially
//!   orthogonal rows.
//! * **CAH trap weights** have exactly half of each row's entries
//!   negative with a magnitude asymmetry between the signs, and (in
//!   the calibrated variant) biases far from the usual zero/uniform
//!   initialization.
//!
//! Detection is *complementary* to the OASIS augmentation defense: a
//! client can both augment (so that even undetected attacks fail) and
//! audit (so that blatant attacks can be refused outright). The paper
//! leaves detection unformalized; this is the reproduction's
//! executable version of the remark, not a claimed contribution of
//! the original work.

use oasis_nn::Linear;

/// Verdict of a first-layer audit.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAudit {
    /// Mean absolute cosine similarity between random row pairs
    /// (≈1 for RTF imprint rows; ≈0 for honest init).
    pub mean_row_cosine: f64,
    /// Mean fraction of negative entries per row (≈0.5 both for
    /// honest init and CAH; see `sign_magnitude_skew`).
    pub negative_fraction: f64,
    /// |mean(|negative entries|) − mean(positive entries)| /
    /// (their sum) — trap weights scale one sign group (γ ≠ 1),
    /// honest inits are symmetric.
    pub sign_magnitude_skew: f64,
    /// Standard deviation of the bias vector relative to the weight
    /// scale; imprint modules sweep biases across data quantiles,
    /// honest biases are near zero.
    pub bias_spread: f64,
    /// Excess kurtosis of the weight entries. Honest Kaiming-uniform
    /// initialization gives ≈ −1.2; trap weights (signed half-normal
    /// magnitudes) give ≈ 0.
    pub weight_kurtosis: f64,
    /// Heuristic verdict.
    pub suspicious: bool,
    /// Human-readable reasons behind the verdict.
    pub reasons: Vec<String>,
}

/// Thresholds chosen so honest Kaiming-initialized layers pass with a
/// wide margin (see the tests) while both published constructions
/// trip at least one criterion.
const COSINE_THRESHOLD: f64 = 0.9;
const SKEW_THRESHOLD: f64 = 0.25;
const BIAS_SPREAD_THRESHOLD: f64 = 3.0;
const KURTOSIS_THRESHOLD: f64 = -0.6;

/// Audits a first layer for active-reconstruction fingerprints.
///
/// This is a heuristic: a sophisticated attacker can trade attack
/// efficiency for stealth, which is exactly why the paper builds the
/// augmentation defense instead of relying on detection.
pub fn audit_first_layer(layer: &Linear) -> LayerAudit {
    let n = layer.out_features();
    let d = layer.in_features();
    let w = layer.weight();

    // Row cosine similarity over a deterministic sample of pairs.
    let mut cos_sum = 0.0f64;
    let mut cos_count = 0usize;
    let pairs = n.min(64);
    for k in 0..pairs {
        let i = k;
        let j = (k + n / 2) % n;
        if i == j {
            continue;
        }
        let (a, b) = (w.row(i).expect("row"), w.row(j).expect("row"));
        let dot: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64) * (y as f64))
            .sum();
        let na: f64 = a
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt();
        let nb: f64 = b
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt();
        if na > 0.0 && nb > 0.0 {
            cos_sum += (dot / (na * nb)).abs();
            cos_count += 1;
        }
    }
    let mean_row_cosine = if cos_count == 0 {
        0.0
    } else {
        cos_sum / cos_count as f64
    };

    // Sign statistics.
    let mut neg = 0usize;
    let mut neg_mag = 0.0f64;
    let mut pos_mag = 0.0f64;
    let mut pos = 0usize;
    for &v in w.data() {
        if v < 0.0 {
            neg += 1;
            neg_mag += (-v) as f64;
        } else if v > 0.0 {
            pos += 1;
            pos_mag += v as f64;
        }
    }
    let total = (neg + pos).max(1);
    let negative_fraction = neg as f64 / total as f64;
    let mean_neg = if neg > 0 { neg_mag / neg as f64 } else { 0.0 };
    let mean_pos = if pos > 0 { pos_mag / pos as f64 } else { 0.0 };
    let sign_magnitude_skew = if mean_neg + mean_pos > 0.0 {
        (mean_neg - mean_pos).abs() / (mean_neg + mean_pos)
    } else {
        0.0
    };

    // Excess kurtosis of the weight entries (population estimate).
    let numel = w.numel().max(1) as f64;
    let w_mean = w.data().iter().map(|&v| v as f64).sum::<f64>() / numel;
    let mut m2 = 0.0f64;
    let mut m4 = 0.0f64;
    for &v in w.data() {
        let dlt = v as f64 - w_mean;
        m2 += dlt * dlt;
        m4 += dlt * dlt * dlt * dlt;
    }
    m2 /= numel;
    m4 /= numel;
    let weight_kurtosis = if m2 > 0.0 { m4 / (m2 * m2) - 3.0 } else { 0.0 };

    // Bias spread relative to the expected honest scale 1/√d.
    let bias = layer.bias();
    let bias_mean = bias.data().iter().map(|&v| v as f64).sum::<f64>() / n.max(1) as f64;
    let bias_var = bias
        .data()
        .iter()
        .map(|&v| {
            let dlt = v as f64 - bias_mean;
            dlt * dlt
        })
        .sum::<f64>()
        / n.max(1) as f64;
    let honest_scale = 1.0 / (d as f64).sqrt();
    let bias_spread = bias_var.sqrt() / honest_scale;

    let mut reasons = Vec::new();
    if mean_row_cosine > COSINE_THRESHOLD {
        reasons.push(format!(
            "rows are near-parallel (mean |cos| {mean_row_cosine:.2}) — imprint-module signature"
        ));
    }
    if sign_magnitude_skew > SKEW_THRESHOLD {
        reasons.push(format!(
            "negative/positive magnitude skew {sign_magnitude_skew:.2} — trap-weight signature"
        ));
    }
    if bias_spread > BIAS_SPREAD_THRESHOLD {
        reasons.push(format!(
            "bias spread {bias_spread:.1}× the honest scale — quantile-cutoff signature"
        ));
    }
    if weight_kurtosis > KURTOSIS_THRESHOLD {
        reasons.push(format!(
            "weight kurtosis {weight_kurtosis:.2} far from uniform-init (−1.2) — \
             non-standard weight distribution"
        ));
    }
    LayerAudit {
        mean_row_cosine,
        negative_fraction,
        sign_magnitude_skew,
        bias_spread,
        weight_kurtosis,
        suspicious: !reasons.is_empty(),
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_nn::Linear;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn honest_layer_passes() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(768, 256, &mut rng);
        let audit = audit_first_layer(&layer);
        assert!(
            !audit.suspicious,
            "honest layer flagged: {:?}",
            audit.reasons
        );
        assert!(audit.mean_row_cosine < 0.3);
        assert!((audit.negative_fraction - 0.5).abs() < 0.05);
    }

    #[test]
    fn rtf_imprint_layer_is_flagged() {
        use oasis_attacks::{ActiveAttack, RtfAttack};
        let ds = oasis_data::cifar_like_with(8, 4, 12, 0);
        let calib: Vec<_> = ds.items().iter().map(|it| it.image.clone()).collect();
        let attack = RtfAttack::calibrated(64, &calib).unwrap();
        let model = attack.build_model((3, 12, 12), 8, 0).unwrap();
        let layer = model.layer_as::<Linear>(0).unwrap();
        let audit = audit_first_layer(layer);
        assert!(audit.suspicious, "RTF layer not flagged: {audit:?}");
        assert!(
            audit.mean_row_cosine > 0.99,
            "identical rows must be detected"
        );
    }

    #[test]
    fn cah_trap_layer_is_flagged() {
        use oasis_attacks::{ActiveAttack, CahAttack, DEFAULT_ACTIVATION_TARGET};
        let ds = oasis_data::cifar_like_with(8, 8, 12, 0);
        let calib: Vec<_> = ds.items().iter().map(|it| it.image.clone()).collect();
        let attack = CahAttack::calibrated(64, DEFAULT_ACTIVATION_TARGET, &calib, 3).unwrap();
        let model = attack.build_model((3, 12, 12), 8, 0).unwrap();
        let layer = model.layer_as::<Linear>(0).unwrap();
        let audit = audit_first_layer(layer);
        assert!(audit.suspicious, "CAH layer not flagged: {audit:?}");
    }

    #[test]
    fn audit_reports_reasons_when_suspicious() {
        use oasis_attacks::{ActiveAttack, RtfAttack};
        let attack = RtfAttack::new(32, 0.4, 0.1).unwrap();
        let model = attack.build_model((1, 8, 8), 4, 0).unwrap();
        let layer = model.layer_as::<Linear>(0).unwrap();
        let audit = audit_first_layer(layer);
        assert!(!audit.reasons.is_empty());
    }
}
