//! # oasis — Offsetting Active Reconstruction Attacks in Federated Learning
//!
//! A from-scratch reproduction of **OASIS** (Jeter, Nguyen, Alharbi,
//! Thai — ICDCS 2024): a client-side defense that counters *active
//! reconstruction attacks* by actively dishonest FL servers.
//!
//! ## How the defense works
//!
//! Active attacks (Robbing the Fed, Curious Abandon Honesty) plant a
//! malicious fully-connected layer whose per-neuron gradients
//! `(∂L/∂W_i, ∂L/∂b_i)` memorize individual samples; dividing them
//! (paper Eq. 6) reconstructs training images *exactly*. The paper's
//! Proposition 1 shows the inversion is blocked whenever every sample
//! `x_t` shares its malicious-layer **activation set** with some other
//! batch member `x′_t` — the attacker can then extract only a linear
//! combination of the two.
//!
//! OASIS manufactures those activation-set twins with **image
//! augmentation**: each batch `D` is expanded to
//! `D′ = D ∪ ⋃_t X′_t` (Eq. 7) where `X′_t` holds rotated / flipped /
//! sheared copies of `x_t` with the same label. Because augmentation
//! is also a generalization technique, accuracy is preserved
//! (paper Table I).
//!
//! ## Quickstart
//!
//! ```
//! use oasis::{Oasis, OasisConfig};
//! use oasis_augment::PolicyKind;
//! use oasis_data::{cifar_like_with, Batch};
//! use oasis_fl::BatchStage;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation));
//! let ds = cifar_like_with(4, 2, 16, 0);
//! let batch = Batch::from_items(ds.items().to_vec());
//! let mut rng = StdRng::seed_from_u64(0);
//! let defended = defense.process(&batch, &mut rng);
//! assert_eq!(defended.len(), batch.len() * 4); // original + 3 rotations
//! ```

#![warn(missing_docs)]

mod analysis;
mod config;
mod defense;
mod detect;
mod pipeline;

pub use analysis::{activation_set_analysis, layer_from_parts, ActivationAnalysis};
pub use config::OasisConfig;
pub use defense::Oasis;
pub use detect::{audit_first_layer, LayerAudit};
pub use pipeline::{defended_client, stacked_client, undefended_client};

/// Commonly used items for downstream code.
pub mod prelude {
    pub use crate::{activation_set_analysis, defended_client, Oasis, OasisConfig};
    pub use oasis_augment::{AugmentationPolicy, PolicyKind, Transform};
    pub use oasis_fl::{
        BatchStage, ClipStage, Defense, DefenseStack, DpStage, IdentityPreprocessor, UpdateStage,
    };
}
