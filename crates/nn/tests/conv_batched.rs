//! Batched-conv vs naive-conv equivalence.
//!
//! `Conv2d` runs one whole-batch transposed-im2col matmul; these
//! tests pin it to a direct quadruple-loop convolution (and its
//! adjoint) at several shapes, paddings, strides, and batch sizes —
//! including odd batches that exercise the matmul kernel's paired-row
//! leftover lane. Everything is compared with a floating-point
//! tolerance: the batched path reorders summation, so bit equality is
//! not expected, but agreement must be at the level of rounding
//! error.

use oasis_nn::{Conv2d, Layer, Mode};
use oasis_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 2e-4;

/// Conv hyper-parameters for one comparison case.
#[derive(Clone, Copy, Debug)]
struct Case {
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
    h: usize,
    w: usize,
    batch: usize,
}

const CASES: [Case; 6] = [
    // stride 1, pad 1 — the workloads' standard 3×3.
    Case {
        cin: 3,
        cout: 4,
        k: 3,
        stride: 1,
        pad: 1,
        h: 6,
        w: 6,
        batch: 8,
    },
    // no padding.
    Case {
        cin: 1,
        cout: 2,
        k: 3,
        stride: 1,
        pad: 0,
        h: 5,
        w: 5,
        batch: 3,
    },
    // stride 2 downsampling.
    Case {
        cin: 2,
        cout: 3,
        k: 2,
        stride: 2,
        pad: 0,
        h: 6,
        w: 6,
        batch: 4,
    },
    // stride 2 with padding, non-square input.
    Case {
        cin: 3,
        cout: 5,
        k: 3,
        stride: 2,
        pad: 1,
        h: 7,
        w: 9,
        batch: 8,
    },
    // large kernel, wide padding.
    Case {
        cin: 2,
        cout: 2,
        k: 5,
        stride: 1,
        pad: 2,
        h: 8,
        w: 8,
        batch: 2,
    },
    // odd batch (paired-row kernel leftover) at batch 9.
    Case {
        cin: 2,
        cout: 4,
        k: 3,
        stride: 1,
        pad: 1,
        h: 5,
        w: 5,
        batch: 9,
    },
];

struct NaiveResult {
    y: Vec<f32>,
    gx: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
}

/// Direct convolution + adjoint, one loop nest per quantity, summing
/// in the plainest possible order.
#[allow(clippy::needless_range_loop)]
fn naive_conv(c: Case, x: &[f32], weight: &[f32], bias: &[f32], grad_out: &[f32]) -> NaiveResult {
    let oh = (c.h + 2 * c.pad - c.k) / c.stride + 1;
    let ow = (c.w + 2 * c.pad - c.k) / c.stride + 1;
    let p = oh * ow;
    let in_f = c.cin * c.h * c.w;
    let kk = c.k * c.k;
    let ckk = c.cin * kk;
    let mut y = vec![0.0f32; c.batch * c.cout * p];
    let mut gx = vec![0.0f32; c.batch * in_f];
    let mut gw = vec![0.0f32; c.cout * ckk];
    let mut gb = vec![0.0f32; c.cout];
    for b in 0..c.batch {
        let xb = &x[b * in_f..(b + 1) * in_f];
        for co in 0..c.cout {
            for oy in 0..oh {
                for ox in 0..ow {
                    let pos = oy * ow + ox;
                    let go = grad_out[b * c.cout * p + co * p + pos];
                    let mut acc = bias[co];
                    gb[co] += go;
                    for ci in 0..c.cin {
                        for ky in 0..c.k {
                            let sy = (oy * c.stride + ky) as isize - c.pad as isize;
                            if sy < 0 || sy as usize >= c.h {
                                continue;
                            }
                            for kx in 0..c.k {
                                let sx = (ox * c.stride + kx) as isize - c.pad as isize;
                                if sx < 0 || sx as usize >= c.w {
                                    continue;
                                }
                                let xi = (ci * c.h + sy as usize) * c.w + sx as usize;
                                let wi = co * ckk + ci * kk + ky * c.k + kx;
                                acc += weight[wi] * xb[xi];
                                gw[wi] += go * xb[xi];
                                gx[b * in_f + xi] += go * weight[wi];
                            }
                        }
                    }
                    y[b * c.cout * p + co * p + pos] = acc;
                }
            }
        }
    }
    NaiveResult { y, gx, gw, gb }
}

fn assert_close(actual: &[f32], expected: &[f32], what: &str, case: Case) {
    assert_eq!(actual.len(), expected.len(), "{what} length for {case:?}");
    for (i, (&a, &e)) in actual.iter().zip(expected).enumerate() {
        let denom = 1.0f32.max(a.abs()).max(e.abs());
        assert!(
            (a - e).abs() / denom < TOL,
            "{what}[{i}] diverges for {case:?}: batched {a} vs naive {e}"
        );
    }
}

fn weights_of(conv: &mut Conv2d) -> (Vec<f32>, Vec<f32>) {
    let mut tensors = Vec::new();
    conv.visit_params(&mut |p, _| tensors.push(p.data().to_vec()));
    let bias = tensors.pop().expect("bias");
    let weight = tensors.pop().expect("weight");
    (weight, bias)
}

fn grads_of(conv: &mut Conv2d) -> (Vec<f32>, Vec<f32>) {
    let mut tensors = Vec::new();
    conv.visit_params(&mut |_, g| tensors.push(g.data().to_vec()));
    let gb = tensors.pop().expect("grad bias");
    let gw = tensors.pop().expect("grad weight");
    (gw, gb)
}

#[test]
fn batched_conv_matches_naive_conv() {
    for case in CASES {
        let mut rng = StdRng::seed_from_u64(0xC0_4F + case.batch as u64);
        let mut conv = Conv2d::new(
            case.cin,
            case.cout,
            case.k,
            case.stride,
            case.pad,
            (case.h, case.w),
            &mut rng,
        );
        let in_f = case.cin * case.h * case.w;
        let x = Tensor::randn(&[case.batch, in_f], &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::randn(y.dims(), &mut rng);
        let gx = conv.backward(&grad_out).unwrap();
        let (gw, gb) = grads_of(&mut conv);

        let (weight, bias) = weights_of(&mut conv);
        let naive = naive_conv(case, x.data(), &weight, &bias, grad_out.data());

        assert_close(y.data(), &naive.y, "forward", case);
        assert_close(gx.data(), &naive.gx, "grad_x", case);
        assert_close(&gw, &naive.gw, "grad_w", case);
        assert_close(&gb, &naive.gb, "grad_b", case);
    }
}

#[test]
fn repeated_backward_accumulates_like_naive() {
    // Gradient buffers accumulate across backward calls (standard
    // minibatch-accumulation semantics); two passes must equal 2× one.
    let case = CASES[0];
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::new(
        case.cin,
        case.cout,
        case.k,
        case.stride,
        case.pad,
        (case.h, case.w),
        &mut rng,
    );
    let x = Tensor::randn(&[case.batch, case.cin * case.h * case.w], &mut rng);
    let y = conv.forward(&x, Mode::Train).unwrap();
    let grad_out = Tensor::randn(y.dims(), &mut rng);
    conv.backward(&grad_out).unwrap();
    let (gw1, gb1) = grads_of(&mut conv);
    conv.backward(&grad_out).unwrap();
    let (gw2, gb2) = grads_of(&mut conv);
    for (&g2, &g1) in gw2.iter().zip(&gw1) {
        assert!((g2 - 2.0 * g1).abs() < TOL * 1.0f32.max(g2.abs()));
    }
    for (&g2, &g1) in gb2.iter().zip(&gb1) {
        assert!((g2 - 2.0 * g1).abs() < TOL * 1.0f32.max(g2.abs()));
    }
}
