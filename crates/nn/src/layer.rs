//! The [`Layer`] trait and parameter-vector helpers.

use oasis_tensor::Tensor;
use std::any::Any;

use crate::Result;

/// Whether a forward pass is part of training (batch statistics,
/// cached activations) or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: layers cache activations for `backward` and use batch
    /// statistics.
    Train,
    /// Evaluation: no caching obligations, running statistics used.
    Eval,
}

/// A differentiable network component.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. `forward(x, Mode::Train)` caches whatever `backward` needs.
/// 2. `backward(δy)` **accumulates** parameter gradients (they are not
///    overwritten — call [`Layer::zero_grad`] between steps) and
///    returns `δx`.
/// 3. [`Layer::visit_params`] yields `(param, grad)` pairs in a stable
///    order; optimizers and the FL protocol rely on that order.
pub trait Layer: Send {
    /// Runs the layer on `input` (rank-2: `[batch, features]`).
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Backpropagates `grad_output`, accumulating parameter gradients
    /// and returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns an error if called before `forward` or on shape
    /// mismatch.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every `(parameter, gradient)` pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Visits every parameter tensor read-only, in the same stable
    /// order as [`Layer::visit_params`]. Serialization paths
    /// (checkpointing, broadcast snapshots) use this so inspecting a
    /// model never requires `&mut` access.
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor));

    /// Resets all accumulated gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.map_in_place(|_| 0.0));
    }

    /// A short human-readable layer name.
    fn name(&self) -> &'static str;

    /// Upcast for runtime downcasting (used by the dishonest server to
    /// reach into specific layers of the global model).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for runtime downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Total number of scalar parameters in `layer`.
pub fn param_count(layer: &mut dyn Layer) -> usize {
    let mut n = 0usize;
    layer.visit_params(&mut |p, _| n += p.numel());
    n
}

/// Total number of scalar parameters in `layer`, through a shared
/// borrow.
pub fn param_count_ref(layer: &dyn Layer) -> usize {
    let mut n = 0usize;
    layer.visit_params_ref(&mut |p| n += p.numel());
    n
}

/// [`flatten_params`] through a shared borrow — lets read-only
/// consumers (checkpointing, broadcast snapshots) flatten without
/// exclusive access to the model.
pub fn flatten_params_ref(layer: &dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    layer.visit_params_ref(&mut |p| out.extend_from_slice(p.data()));
    out
}

/// Flattens all parameters into a single `Vec<f32>` in visit order —
/// the "global model weights `w`" that the FL server broadcasts.
pub fn flatten_params(layer: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p, _| out.extend_from_slice(p.data()));
    out
}

/// Flattens all accumulated gradients into a single `Vec<f32>` in
/// visit order — the "model update `G_j`" a client uploads.
pub fn flatten_grads(layer: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    layer.visit_params(&mut |_, g| out.extend_from_slice(g.data()));
    out
}

/// Loads a flat parameter vector produced by [`flatten_params`].
///
/// # Errors
///
/// Returns [`crate::NnError::ParamLength`] if `flat` has the wrong
/// length.
pub fn load_params(layer: &mut dyn Layer, flat: &[f32]) -> Result<()> {
    let expected = param_count(layer);
    if flat.len() != expected {
        return Err(crate::NnError::ParamLength {
            len: flat.len(),
            expected,
        });
    }
    let mut offset = 0usize;
    layer.visit_params(&mut |p, _| {
        let n = p.numel();
        p.data_mut().copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    });
    Ok(())
}

/// Loads a flat gradient vector produced by [`flatten_grads`] — how a
/// server materializes a client update received over the wire back
/// into a model's gradient slots.
///
/// # Errors
///
/// Returns [`crate::NnError::ParamLength`] if `flat` has the wrong
/// length.
pub fn load_grads(layer: &mut dyn Layer, flat: &[f32]) -> Result<()> {
    let expected = param_count(layer);
    if flat.len() != expected {
        return Err(crate::NnError::ParamLength {
            len: flat.len(),
            expected,
        });
    }
    let mut offset = 0usize;
    layer.visit_params(&mut |_, g| {
        let n = g.numel();
        g.data_mut().copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn flatten_load_round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = Linear::new(3, 2, &mut rng);
        let flat = flatten_params(&mut a);
        assert_eq!(flat.len(), 3 * 2 + 2);

        let mut b = Linear::new(3, 2, &mut rng);
        load_params(&mut b, &flat).unwrap();
        assert_eq!(flatten_params(&mut b), flat);
    }

    #[test]
    fn load_rejects_wrong_length() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = Linear::new(3, 2, &mut rng);
        assert!(load_params(&mut a, &[0.0; 4]).is_err());
    }

    #[test]
    fn load_grads_round_trips_flatten_grads() {
        use crate::Mode;
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        l.backward(&Tensor::ones(y.dims())).unwrap();
        let grads = flatten_grads(&mut l);
        l.zero_grad();
        load_grads(&mut l, &grads).unwrap();
        assert_eq!(flatten_grads(&mut l), grads);
        assert!(load_grads(&mut l, &[0.0; 3]).is_err());
    }

    #[test]
    fn zero_grad_clears_gradients() {
        use crate::Mode;
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[4, 2], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        l.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(flatten_grads(&mut l).iter().any(|&g| g != 0.0));
        l.zero_grad();
        assert!(flatten_grads(&mut l).iter().all(|&g| g == 0.0));
    }
}
