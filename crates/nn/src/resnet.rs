//! ResNet-lite — the classifier for the Table I model-performance
//! experiment.
//!
//! The paper trains ResNet-18; this is a narrower residual network of
//! the same family (conv-BN-ReLU stem, three residual stages with
//! stride-2 downsampling, global average pooling, linear head) sized
//! so CPU training finishes in minutes. Table I only compares
//! *with-OASIS vs without-OASIS* accuracy, for which the family — not
//! the width — is what matters.

use oasis_tensor::Tensor;
use rand::Rng;
use std::any::Any;

use crate::{BatchNorm, Conv2d, Layer, Linear, Mode, NnError, Relu, Result, Sequential};

/// A basic residual block: `y = relu(bn2(conv2(relu(bn1(conv1(x))))) + skip(x))`.
///
/// When the channel count or stride changes, the skip path is a 1×1
/// convolution + batch norm (projection shortcut).
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm,
    skip: Option<(Conv2d, BatchNorm)>,
    out_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Creates a block mapping `(in_channels, h, w)` activations to
    /// `(out_channels, h/stride, w/stride)`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        input_hw: (usize, usize),
        rng: &mut impl Rng,
    ) -> Self {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, input_hw, rng);
        let (_, oh, ow) = conv1.output_geometry();
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, (oh, ow), rng);
        let skip = if stride != 1 || in_channels != out_channels {
            let proj = Conv2d::new(in_channels, out_channels, 1, stride, 0, input_hw, rng);
            let bn = BatchNorm::new(out_channels);
            Some((proj, bn))
        } else {
            None
        };
        ResidualBlock {
            conv1,
            bn1: BatchNorm::new(out_channels),
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm::new(out_channels),
            skip,
            out_mask: None,
        }
    }

    /// `(out_channels, out_h, out_w)` of this block.
    pub fn output_geometry(&self) -> (usize, usize, usize) {
        self.conv2.output_geometry()
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let f = self.conv1.forward(input, mode)?;
        let f = self.bn1.forward(&f, mode)?;
        let f = self.relu1.forward(&f, mode)?;
        let f = self.conv2.forward(&f, mode)?;
        let f = self.bn2.forward(&f, mode)?;
        let s = match &mut self.skip {
            Some((proj, bn)) => {
                let s = proj.forward(input, mode)?;
                bn.forward(&s, mode)?
            }
            None => input.clone(),
        };
        let pre = f.add(&s)?;
        if mode == Mode::Train {
            self.out_mask = Some(pre.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(pre.relu())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .out_mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "residual_block",
            })?;
        let mut g = grad_output.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        // Residual path.
        let gf = self.bn2.backward(&g)?;
        let gf = self.conv2.backward(&gf)?;
        let gf = self.relu1.backward(&gf)?;
        let gf = self.bn1.backward(&gf)?;
        let gx_res = self.conv1.backward(&gf)?;
        // Skip path.
        let gx_skip = match &mut self.skip {
            Some((proj, bn)) => {
                let gs = bn.backward(&g)?;
                proj.backward(&gs)?
            }
            None => g,
        };
        Ok(gx_res.add(&gx_skip)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((proj, bn)) = &mut self.skip {
            proj.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        self.conv1.visit_params_ref(f);
        self.bn1.visit_params_ref(f);
        self.conv2.visit_params_ref(f);
        self.bn2.visit_params_ref(f);
        if let Some((proj, bn)) = &self.skip {
            proj.visit_params_ref(f);
            bn.visit_params_ref(f);
        }
    }

    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds the ResNet-lite classifier used by the Table I experiment.
///
/// Architecture for input geometry `(c, h, w)` and `base` width `W`:
///
/// ```text
/// conv3×3(c→W) – BN – ReLU
/// ResidualBlock(W→W,   stride 1)
/// ResidualBlock(W→2W,  stride 2)
/// ResidualBlock(2W→4W, stride 2)
/// GlobalAvgPool – Linear(4W → classes)
/// ```
pub fn resnet_lite(
    input: (usize, usize, usize),
    base: usize,
    classes: usize,
    rng: &mut impl Rng,
) -> Sequential {
    let (c, h, w) = input;
    let mut net = Sequential::new();
    let stem = Conv2d::new(c, base, 3, 1, 1, (h, w), rng);
    let (_, h1, w1) = stem.output_geometry();
    net.push(stem);
    net.push(BatchNorm::new(base));
    net.push(Relu::new());

    let b1 = ResidualBlock::new(base, base, 1, (h1, w1), rng);
    let (_, h2, w2) = b1.output_geometry();
    net.push(b1);

    let b2 = ResidualBlock::new(base, base * 2, 2, (h2, w2), rng);
    let (_, h3, w3) = b2.output_geometry();
    net.push(b2);

    let b3 = ResidualBlock::new(base * 2, base * 4, 2, (h3, w3), rng);
    net.push(b3);

    net.push(crate::AvgPoolAll::new(base * 4));
    net.push(Linear::new(base * 4, classes, rng));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flatten_grads, softmax_cross_entropy};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_block_preserves_geometry() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = ResidualBlock::new(4, 4, 1, (8, 8), &mut rng);
        let x = Tensor::randn(&[2, 4 * 64], &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), x.dims());
    }

    #[test]
    fn downsampling_block_halves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = ResidualBlock::new(4, 8, 2, (8, 8), &mut rng);
        assert_eq!(block.output_geometry(), (8, 4, 4));
        let x = Tensor::randn(&[2, 4 * 64], &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 8 * 16]);
    }

    #[test]
    fn block_backward_matches_input_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = ResidualBlock::new(3, 6, 2, (6, 6), &mut rng);
        let x = Tensor::randn(&[2, 3 * 36], &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        let gx = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn resnet_lite_forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = resnet_lite((3, 16, 16), 8, 10, &mut rng);
        let x = Tensor::randn(&[2, 3 * 256], &mut rng);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn resnet_lite_produces_gradients_everywhere() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = resnet_lite((3, 8, 8), 4, 5, &mut rng);
        let x = Tensor::randn(&[4, 3 * 64], &mut rng);
        let logits = net.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        net.backward(&out.grad).unwrap();
        let grads = flatten_grads(&mut net);
        let nonzero = grads.iter().filter(|&&g| g != 0.0).count();
        assert!(
            nonzero * 2 > grads.len(),
            "only {nonzero}/{} gradients nonzero",
            grads.len()
        );
    }

    #[test]
    fn resnet_lite_trains_on_tiny_problem() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = resnet_lite((1, 8, 8), 4, 2, &mut rng);
        // Two trivially separable classes: bright vs dark images.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            let v = if i % 2 == 0 { 0.9 } else { 0.1 };
            data.extend(std::iter::repeat_n(v, 64));
            labels.push(i % 2);
        }
        let x = Tensor::from_vec(data, &[8, 64]).unwrap();
        let mut opt = crate::Sgd::with_momentum(0.05, 0.9, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward(&x, Mode::Train).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            net.backward(&out.grad).unwrap();
            crate::Optimizer::step(&mut opt, &mut net);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(
            last < first.unwrap(),
            "loss did not decrease: {first:?} -> {last}"
        );
    }
}
