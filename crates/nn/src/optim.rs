//! Optimizers: SGD (with momentum) and Adam.

use oasis_tensor::Tensor;

use crate::Layer;

/// A gradient-based parameter updater.
///
/// Optimizers rely on [`Layer::visit_params`] yielding parameters in a
/// stable order; per-parameter state (momentum, Adam moments) is
/// indexed by visit position.
pub trait Optimizer {
    /// Applies one update step using the gradients currently
    /// accumulated in `model`, then leaves the gradients untouched
    /// (call [`Layer::zero_grad`] before the next backward pass).
    fn step(&mut self, model: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight
/// decay — the update the FL server applies to the global model
/// (paper Eq. 1 uses plain SGD).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum and L2 weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p, g| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.dims()));
            }
            let v = &mut velocity[idx];
            for ((pv, gv), vv) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(v.data_mut().iter_mut())
            {
                let grad = gv + wd * *pv;
                *vv = momentum * *vv + grad;
                *pv -= lr * *vv;
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with decoupled L2 weight decay — used for the
/// Table I model-performance experiment (the paper trains with Adam,
/// lr 1e-3).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let m = &mut self.m;
        let v = &mut self.v;
        let mut idx = 0usize;
        model.visit_params(&mut |p, g| {
            if m.len() <= idx {
                m.push(Tensor::zeros(p.dims()));
                v.push(Tensor::zeros(p.dims()));
            }
            let (mi, vi) = (&mut m[idx], &mut v[idx]);
            for (((pv, gv), mv), vv) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(mi.data_mut().iter_mut())
                .zip(vi.data_mut().iter_mut())
            {
                let grad = gv + wd * *pv;
                *mv = b1 * *mv + (1.0 - b1) * grad;
                *vv = b2 * *vv + (1.0 - b2) * grad * grad;
                let m_hat = *mv / bias1;
                let v_hat = *vv / bias2;
                *pv -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{softmax_cross_entropy, Linear, Mode};
    use rand::{rngs::StdRng, SeedableRng};

    /// One linear layer trained on a trivially separable problem must
    /// reduce the loss.
    fn train_with(optimizer: &mut dyn Optimizer) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Linear::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.1, 0.1, 1.0], &[4, 2]).unwrap();
        let labels = [0usize, 1, 0, 1];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            model.zero_grad();
            let logits = model.forward(&x, Mode::Train).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            model.backward(&out.grad).unwrap();
            optimizer.step(&mut model);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        (first.unwrap(), last)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (first, last) = train_with(&mut Sgd::new(0.5));
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn sgd_momentum_reduces_loss() {
        let (first, last) = train_with(&mut Sgd::with_momentum(0.1, 0.9, 1e-4));
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (first, last) = train_with(&mut Adam::new(0.05, 0.0));
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.1);
        assert_eq!(s.learning_rate(), 0.1);
        s.set_learning_rate(0.01);
        assert_eq!(s.learning_rate(), 0.01);
    }

    #[test]
    fn zero_grad_between_steps_prevents_accumulation_drift() {
        // Two identical steps with zero_grad in between must produce
        // the same parameter change as expected for plain SGD.
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Linear::new(1, 1, &mut rng);
        let w0 = model.weight().data()[0];
        let x = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        let mut opt = Sgd::new(0.1);

        model.zero_grad();
        let y = model.forward(&x, Mode::Train).unwrap();
        let out = crate::mse_loss(&y, &Tensor::zeros(&[1, 1])).unwrap();
        model.backward(&out.grad).unwrap();
        opt.step(&mut model);
        let w1 = model.weight().data()[0];
        assert_ne!(w0, w1);
    }
}
