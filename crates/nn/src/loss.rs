//! Loss functions.

use oasis_tensor::Tensor;

use crate::{NnError, Result};

/// A loss value together with the gradient of the loss with respect to
/// the network output — the starting point for backpropagation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `∂L/∂logits`, shape `[batch, classes]`.
    pub grad: Tensor,
}

/// Row-wise softmax with the max-subtraction trick.
///
/// # Errors
///
/// Returns an error if `logits` is not rank-2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "softmax",
            expected: "[batch, classes]".into(),
            actual: logits.dims().to_vec(),
        });
    }
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Softmax cross-entropy with mean reduction over the batch.
///
/// Returns the loss and `∂L/∂logits = (softmax(z) − onehot(y)) / B` —
/// the per-sample signal whose magnitude becomes the coefficient of
/// each sample in the attacker's reconstructed linear combination
/// (paper §III-A: "the coefficient for each sample … depends on how
/// much the sample contributes to the loss").
///
/// # Errors
///
/// Returns an error on rank mismatch, label/batch length mismatch, or
/// out-of-range labels.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    if logits.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy",
            expected: "[batch, classes]".into(),
            actual: logits.dims().to_vec(),
        });
    }
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != batch {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy",
            expected: format!("{batch} labels"),
            actual: vec![labels.len()],
        });
    }
    let probs = softmax(logits)?;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(NnError::BadLabel { label, classes });
        }
        let p = probs.get(&[r, label])?.max(1e-12);
        loss -= (p as f64).ln();
        let old = grad.get(&[r, label])?;
        grad.set(&[r, label], old - 1.0)?;
    }
    grad.scale_in_place(1.0 / batch as f32);
    Ok(LossOutput {
        loss: (loss / batch as f64) as f32,
        grad,
    })
}

/// Mean-squared-error loss with mean reduction.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn mse_loss(output: &Tensor, target: &Tensor) -> Result<LossOutput> {
    let diff = output.sub(target)?;
    let n = diff.numel().max(1) as f32;
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    Ok(LossOutput { loss, grad })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let z = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&z).unwrap();
        for r in 0..2 {
            let s: f32 = p.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let z = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let z_shift = z.add_scalar(100.0);
        let p = softmax(&z).unwrap();
        let q = softmax(&z_shift).unwrap();
        for (a, b) in p.data().iter().zip(q.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let z = Tensor::from_vec(vec![100.0, 0.0, 0.0], &[1, 3]).unwrap();
        let out = softmax_cross_entropy(&z, &[0]).unwrap();
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_ln_k() {
        let z = Tensor::zeros(&[1, 4]);
        let out = softmax_cross_entropy(&z, &[2]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero_per_row() {
        let z = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.0, 0.0, 0.0], &[2, 3]).unwrap();
        let out = softmax_cross_entropy(&z, &[1, 2]).unwrap();
        for r in 0..2 {
            let s: f32 = out.grad.row(r).unwrap().iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let z = Tensor::zeros(&[1, 3]);
        assert!(softmax_cross_entropy(&z, &[3]).is_err());
        assert!(softmax_cross_entropy(&z, &[0, 1]).is_err());
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let z = Tensor::from_vec(vec![0.5, -0.2, 0.1, 1.0, -1.0, 0.3], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&z, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..z.numel() {
            let mut zp = z.clone();
            zp.data_mut()[i] += eps;
            let mut zm = z.clone();
            zm.data_mut()[i] -= eps;
            let lp = softmax_cross_entropy(&zp, &labels).unwrap().loss;
            let lm = softmax_cross_entropy(&zm, &labels).unwrap().loss;
            let fd = (lp - lm) / (2.0 * eps);
            let an = out.grad.data()[i];
            assert!((fd - an).abs() < 2e-3, "elem {i}: fd {fd} vs analytic {an}");
        }
    }

    #[test]
    fn mse_loss_and_grad() {
        let y = Tensor::from_slice(&[1.0, 2.0]).reshape(&[1, 2]).unwrap();
        let t = Tensor::from_slice(&[0.0, 0.0]).reshape(&[1, 2]).unwrap();
        let out = mse_loss(&y, &t).unwrap();
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.data(), &[1.0, 2.0]);
    }
}
