//! Finite-difference gradient checking.
//!
//! The reconstruction attacks consume the *exact values* of gradient
//! buffers, so a silent backprop bug would invalidate every experiment
//! downstream. This module verifies each layer's analytic gradients
//! against central finite differences through a scalar probe loss
//! `L(x) = Σ r ⊙ layer(x)` with a fixed random projection `r`.

use oasis_tensor::Tensor;
use rand::Rng;

use crate::{Layer, Mode, Result};

/// Result of a gradient check.
///
/// Besides the maxima, the report carries 90th-percentile errors:
/// layers that compose ReLUs with batch normalization have many
/// pre-activations near the ReLU kink, where a finite-difference probe
/// can flip an activation and produce a spurious O(1) error on a few
/// coordinates. For such layers, assert on the percentile instead of
/// the max.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Maximum relative error over checked input coordinates.
    pub max_input_err: f32,
    /// Maximum relative error over checked parameter coordinates.
    pub max_param_err: f32,
    /// 90th-percentile relative error over checked input coordinates.
    pub p90_input_err: f32,
    /// 90th-percentile relative error over checked parameter coords.
    pub p90_param_err: f32,
}

fn percentile(errors: &mut [f32], q: f32) -> f32 {
    if errors.is_empty() {
        return 0.0;
    }
    errors.sort_by(f32::total_cmp);
    let idx = ((errors.len() as f32 - 1.0) * q).round() as usize;
    errors[idx]
}

fn relative_error(a: f32, b: f32) -> f32 {
    (a - b).abs() / 1.0f32.max(a.abs()).max(b.abs())
}

/// Probe loss: elementwise product with `r`, summed.
fn probe_loss(y: &Tensor, r: &Tensor) -> f32 {
    y.data().iter().zip(r.data()).map(|(&a, &b)| a * b).sum()
}

/// Checks `layer`'s input and parameter gradients at `input` against
/// central finite differences.
///
/// `max_coords` bounds how many coordinates of each tensor are probed
/// (probing all coordinates of a conv layer would be slow); the probed
/// subset is deterministic given `rng`.
///
/// # Errors
///
/// Propagates any layer execution error.
pub fn check_layer(
    layer: &mut dyn Layer,
    input: &Tensor,
    eps: f32,
    max_coords: usize,
    rng: &mut impl Rng,
) -> Result<GradCheckReport> {
    // Fixed projection to make the output scalar.
    let y0 = layer.forward(input, Mode::Train)?;
    let r = Tensor::rand_uniform(y0.dims(), -1.0, 1.0, rng);

    // Analytic gradients.
    layer.zero_grad();
    let _ = layer.forward(input, Mode::Train)?;
    let gx = layer.backward(&r)?;
    let mut param_grads: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |_, g| param_grads.push(g.clone()));

    // --- Input coordinates ---
    let mut input_errs = Vec::new();
    let n_in = input.numel();
    let stride_in = (n_in / max_coords.max(1)).max(1);
    let mut x = input.clone();
    for i in (0..n_in).step_by(stride_in) {
        let orig = x.data()[i];
        x.data_mut()[i] = orig + eps;
        let lp = probe_loss(&layer.forward(&x, Mode::Train)?, &r);
        x.data_mut()[i] = orig - eps;
        let lm = probe_loss(&layer.forward(&x, Mode::Train)?, &r);
        x.data_mut()[i] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        input_errs.push(relative_error(fd, gx.data()[i]));
    }

    // --- Parameter coordinates ---
    let mut param_errs = Vec::new();
    for (pi, param_grad) in param_grads.iter().enumerate() {
        let count = param_grad.numel();
        let stride = (count / max_coords.max(1)).max(1);
        for i in (0..count).step_by(stride) {
            let analytic = param_grad.data()[i];
            // Perturb parameter pi[i] in place via the visitor.
            let perturb = |layer: &mut dyn Layer, delta: f32| {
                let mut k = 0usize;
                layer.visit_params(&mut |p, _| {
                    if k == pi {
                        p.data_mut()[i] += delta;
                    }
                    k += 1;
                });
            };
            perturb(layer, eps);
            let lp = probe_loss(&layer.forward(input, Mode::Train)?, &r);
            perturb(layer, -2.0 * eps);
            let lm = probe_loss(&layer.forward(input, Mode::Train)?, &r);
            perturb(layer, eps);
            let fd = (lp - lm) / (2.0 * eps);
            param_errs.push(relative_error(fd, analytic));
        }
    }

    let max_input_err = input_errs.iter().copied().fold(0.0f32, f32::max);
    let max_param_err = param_errs.iter().copied().fold(0.0f32, f32::max);
    Ok(GradCheckReport {
        max_input_err,
        max_param_err,
        p90_input_err: percentile(&mut input_errs, 0.9),
        p90_param_err: percentile(&mut param_errs, 0.9),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AvgPoolAll, BatchNorm, Conv2d, Linear, MaxPool2, Relu, ResidualBlock, Sequential};
    use rand::{rngs::StdRng, SeedableRng};

    const EPS: f32 = 5e-3;
    const TOL: f32 = 3e-2;

    fn assert_grads_ok(layer: &mut dyn Layer, input: &Tensor, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let report = check_layer(layer, input, EPS, 40, &mut rng).unwrap();
        assert!(
            report.max_input_err < TOL,
            "input gradient error {} (layer {})",
            report.max_input_err,
            layer.name()
        );
        assert!(
            report.max_param_err < TOL,
            "param gradient error {} (layer {})",
            report.max_param_err,
            layer.name()
        );
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(&[5, 6], &mut rng);
        assert_grads_ok(&mut layer, &x, 100);
    }

    #[test]
    fn relu_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Relu::new();
        // Keep values away from the kink at 0.
        let x = Tensor::randn(&[4, 7], &mut rng).map(|v| if v.abs() < 0.05 { 0.2 } else { v });
        assert_grads_ok(&mut layer, &x, 101);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, (5, 5), &mut rng);
        let x = Tensor::randn(&[2, 2 * 25], &mut rng);
        assert_grads_ok(&mut layer, &x, 102);
    }

    #[test]
    fn strided_conv_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Conv2d::new(2, 4, 3, 2, 1, (6, 6), &mut rng);
        let x = Tensor::randn(&[2, 2 * 36], &mut rng);
        assert_grads_ok(&mut layer, &x, 103);
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = BatchNorm::new(3);
        let x = Tensor::randn(&[6, 3 * 4], &mut rng);
        assert_grads_ok(&mut layer, &x, 104);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = MaxPool2::new(2, 4, 4);
        // Spread values so the argmax is stable under ±eps.
        let x = Tensor::rand_uniform(&[3, 2 * 16], 0.0, 10.0, &mut rng);
        assert_grads_ok(&mut layer, &x, 105);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = AvgPoolAll::new(4);
        let x = Tensor::randn(&[3, 4 * 9], &mut rng);
        assert_grads_ok(&mut layer, &x, 106);
    }

    #[test]
    fn residual_block_gradcheck() {
        // The block ends in a ReLU fed by batch-norm outputs (centered
        // at zero), so a handful of probes straddle the kink; assert on
        // the robust percentile error instead of the max.
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = ResidualBlock::new(2, 4, 2, (4, 4), &mut rng);
        let x = Tensor::randn(&[3, 2 * 16], &mut rng);
        let mut check_rng = StdRng::seed_from_u64(107);
        let report = check_layer(&mut layer, &x, EPS, 40, &mut check_rng).unwrap();
        assert!(
            report.p90_input_err < TOL,
            "p90 input err {}",
            report.p90_input_err
        );
        assert!(
            report.p90_param_err < TOL,
            "p90 param err {}",
            report.p90_param_err
        );
    }

    #[test]
    fn mlp_gradcheck() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Sequential::new();
        net.push(Linear::new(5, 8, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(8, 3, &mut rng));
        let x = Tensor::randn(&[4, 5], &mut rng).map(|v| v + 0.1);
        assert_grads_ok(&mut net, &x, 108);
    }
}
