//! Error type for network construction and execution.

use oasis_tensor::TensorError;
use std::fmt;

/// Errors produced while building or running networks.
#[derive(Debug)]
pub enum NnError {
    /// An underlying tensor operation failed (usually a shape bug).
    Tensor(TensorError),
    /// The input to a layer has the wrong width/shape.
    BadInput {
        /// The layer reporting the problem.
        layer: &'static str,
        /// Description of the expectation that was violated.
        expected: String,
        /// The actual dims received.
        actual: Vec<usize>,
    },
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward {
        /// The layer reporting the problem.
        layer: &'static str,
    },
    /// A label index is outside `[0, classes)`.
    BadLabel {
        /// The offending label.
        label: usize,
        /// The number of classes.
        classes: usize,
    },
    /// A parameter buffer passed to `load_params` has the wrong length.
    ParamLength {
        /// Length provided.
        len: usize,
        /// Length required.
        expected: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput {
                layer,
                expected,
                actual,
            } => {
                write!(f, "{layer}: expected {expected}, got dims {actual:?}")
            }
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "{layer}: backward called before forward")
            }
            NnError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::ParamLength { len, expected } => {
                write!(f, "parameter buffer of length {len}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs: Vec<NnError> = vec![
            NnError::Tensor(TensorError::EmptyTensor),
            NnError::BadInput {
                layer: "linear",
                expected: "width 4".into(),
                actual: vec![3],
            },
            NnError::BackwardBeforeForward { layer: "relu" },
            NnError::BadLabel {
                label: 7,
                classes: 5,
            },
            NnError::ParamLength {
                len: 1,
                expected: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn tensor_error_converts() {
        let e: NnError = TensorError::EmptyTensor.into();
        assert!(matches!(e, NnError::Tensor(_)));
    }
}
