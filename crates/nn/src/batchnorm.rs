//! Batch normalization over channels of CHW activations.

use oasis_tensor::Tensor;
use std::any::Any;

use crate::{Layer, Mode, NnError, Result};

/// Per-channel batch normalization.
///
/// Input is `[batch, C·P]` (flat CHW); statistics are taken over the
/// batch and all `P` spatial positions of each channel, exactly like
/// `nn.BatchNorm2d`.
#[derive(Debug)]
pub struct BatchNorm {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    spatial: usize,
}

impl BatchNorm {
    /// Creates a batch-norm layer for `channels` channels with the
    /// standard ε = 1e-5 and running-stat momentum 0.1.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<usize> {
        if input.rank() != 2 || !input.dims()[1].is_multiple_of(self.channels) {
            return Err(NnError::BadInput {
                layer: "batchnorm",
                expected: format!("[batch, {}·P]", self.channels),
                actual: input.dims().to_vec(),
            });
        }
        Ok(input.dims()[1] / self.channels)
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let p = self.check_input(input)?;
        let batch = input.dims()[0];
        let n = (batch * p) as f32;
        let mut out = input.clone();
        match mode {
            Mode::Train => {
                let mut inv_std = vec![0.0f32; self.channels];
                let mut x_hat = input.clone();
                for c in 0..self.channels {
                    // Mean and variance over batch × spatial.
                    let mut mean = 0.0f64;
                    for b in 0..batch {
                        let x = &input.data()[b * self.channels * p..];
                        for v in &x[c * p..(c + 1) * p] {
                            mean += *v as f64;
                        }
                    }
                    let mean = (mean / n as f64) as f32;
                    let mut var = 0.0f64;
                    for b in 0..batch {
                        let x = &input.data()[b * self.channels * p..];
                        for v in &x[c * p..(c + 1) * p] {
                            let d = (*v - mean) as f64;
                            var += d * d;
                        }
                    }
                    let var = (var / n as f64) as f32;
                    let istd = 1.0 / (var + self.eps).sqrt();
                    inv_std[c] = istd;
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                    let (g, be) = (self.gamma.data()[c], self.beta.data()[c]);
                    for b in 0..batch {
                        let base = b * self.channels * p + c * p;
                        for i in 0..p {
                            let xh = (input.data()[base + i] - mean) * istd;
                            x_hat.data_mut()[base + i] = xh;
                            out.data_mut()[base + i] = g * xh + be;
                        }
                    }
                }
                self.cache = Some(Cache {
                    x_hat,
                    inv_std,
                    spatial: p,
                });
            }
            Mode::Eval => {
                for c in 0..self.channels {
                    let istd = 1.0 / (self.running_var[c] + self.eps).sqrt();
                    let mean = self.running_mean[c];
                    let (g, be) = (self.gamma.data()[c], self.beta.data()[c]);
                    for b in 0..batch {
                        let base = b * self.channels * p + c * p;
                        for i in 0..p {
                            let xh = (input.data()[base + i] - mean) * istd;
                            out.data_mut()[base + i] = g * xh + be;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "batchnorm" })?;
        let p = cache.spatial;
        let batch = grad_output.dims()[0];
        let n = (batch * p) as f32;
        let mut gx = grad_output.clone();
        for c in 0..self.channels {
            // Accumulate Σδy and Σδy·x̂ per channel.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..batch {
                let base = b * self.channels * p + c * p;
                for i in 0..p {
                    let dy = grad_output.data()[base + i] as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[base + i] as f64;
                }
            }
            self.grad_gamma.data_mut()[c] += sum_dy_xhat as f32;
            self.grad_beta.data_mut()[c] += sum_dy as f32;
            let g = self.gamma.data()[c];
            let istd = cache.inv_std[c];
            let mean_dy = sum_dy as f32 / n;
            let mean_dy_xhat = sum_dy_xhat as f32 / n;
            for b in 0..batch {
                let base = b * self.channels * p + c * p;
                for i in 0..p {
                    let dy = grad_output.data()[base + i];
                    let xh = cache.x_hat.data()[base + i];
                    gx.data_mut()[base + i] = g * istd * (dy - mean_dy - xh * mean_dy_xhat);
                }
            }
        }
        Ok(gx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn name(&self) -> &'static str {
        "batchnorm"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn train_output_is_normalized() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm::new(2);
        let x = Tensor::randn_scaled(&[16, 2 * 9], 5.0, 3.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per channel: mean ≈ 0, var ≈ 1 (γ=1, β=0 at init).
        for c in 0..2 {
            let mut vals = Vec::new();
            for b in 0..16 {
                vals.extend_from_slice(&y.row(b).unwrap()[c * 9..(c + 1) * 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm::new(1);
        // Several training passes to converge the running stats.
        for _ in 0..200 {
            let x = Tensor::randn_scaled(&[32, 4], 2.0, 1.5, &mut rng);
            bn.forward(&x, Mode::Train).unwrap();
        }
        // In eval, a sample at the running mean maps to ≈ β = 0.
        let x = Tensor::full(&[1, 4], 2.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        for &v in y.data() {
            assert!(v.abs() < 0.25, "value {v}");
        }
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut bn = BatchNorm::new(1);
        assert!(bn.backward(&Tensor::zeros(&[1, 4])).is_err());
    }

    #[test]
    fn grad_beta_is_sum_of_upstream() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm::new(1);
        let x = Tensor::randn(&[4, 3], &mut rng);
        bn.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(&[4, 3]);
        bn.backward(&g).unwrap();
        assert!((bn.grad_beta.data()[0] - 12.0).abs() < 1e-4);
    }

    #[test]
    fn rejects_nondivisible_width() {
        let mut bn = BatchNorm::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 4]), Mode::Train).is_err());
    }

    #[test]
    fn input_gradient_sums_to_zero_per_channel() {
        // BN output is invariant to adding a constant per channel, so
        // the input gradient must be orthogonal to constants.
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm::new(1);
        let x = Tensor::randn(&[8, 5], &mut rng);
        bn.forward(&x, Mode::Train).unwrap();
        let g = Tensor::randn(&[8, 5], &mut rng);
        let gx = bn.backward(&g).unwrap();
        let total: f32 = gx.data().iter().sum();
        assert!(total.abs() < 1e-3, "sum {total}");
    }
}
