//! Rectified linear unit.

use oasis_tensor::Tensor;
use std::any::Any;

use crate::{Layer, Mode, NnError, Result};

/// Elementwise `max(0, x)`.
///
/// The ReLU's gating behaviour is the crux of the attacks: a neuron
/// only contributes gradient for samples that *activate* it
/// (pre-activation > 0), which is what lets a dishonest server isolate
/// per-sample gradients (paper Eq. 6 and Proposition 1).
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(input.relu())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "relu" })?;
        if mask.len() != grad_output.numel() {
            return Err(NnError::BadInput {
                layer: "relu",
                expected: format!("{} elements", mask.len()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let mut out = grad_output.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        Ok(out)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "relu"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0])
            .reshape(&[1, 3])
            .unwrap();
        let y = r.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_gates_by_activation() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0])
            .reshape(&[1, 3])
            .unwrap();
        r.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_slice(&[10.0, 10.0, 10.0])
            .reshape(&[1, 3])
            .unwrap();
        let gx = r.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_preactivation_does_not_pass_gradient() {
        // The subgradient at exactly 0 is taken as 0, matching the
        // "activated" definition (z > 0) in the attack analysis.
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[0.0]).reshape(&[1, 1]).unwrap();
        r.forward(&x, Mode::Train).unwrap();
        let gx = r.backward(&Tensor::ones(&[1, 1])).unwrap();
        assert_eq!(gx.data(), &[0.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::ones(&[1, 1])).is_err());
    }

    #[test]
    fn has_no_params() {
        let mut r = Relu::new();
        let mut count = 0;
        r.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}
