//! Fully-connected layer — the layer type the active reconstruction
//! attacks weaponize (paper §III-A).

use oasis_tensor::Tensor;
use rand::Rng;
use std::any::Any;

use crate::{Layer, Mode, NnError, Result};

/// A fully-connected layer `y = x · Wᵀ + b`.
///
/// `W` has shape `(out_features, in_features)` so that row `i` of `W`
/// (together with `b[i]`) parameterizes neuron `i` — matching the
/// paper's notation `(W ∈ R^{n×d}, b ∈ R^n)` for the malicious layer.
///
/// The weight and bias (and their gradients) are directly accessible:
/// the dishonest server edits them, and the attacks read the gradient
/// buffers after a client's backward pass.
#[derive(Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform initialized weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let bound = (1.0 / in_features as f32).sqrt();
        Linear {
            weight: Tensor::rand_uniform(&[out_features, in_features], -bound, bound, rng),
            bias: Tensor::rand_uniform(&[out_features], -bound, bound, rng),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Creates a layer from explicit weights — how an attacker builds
    /// a malicious layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `weight` is not rank-2 or `bias` length
    /// differs from the weight's row count.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.rank() != 2 || bias.rank() != 1 || bias.numel() != weight.dims()[0] {
            return Err(NnError::BadInput {
                layer: "linear",
                expected: "weight (out,in) and bias (out)".into(),
                actual: weight.dims().to_vec(),
            });
        }
        let (out_f, in_f) = (weight.dims()[0], weight.dims()[1]);
        Ok(Linear {
            weight,
            bias,
            grad_weight: Tensor::zeros(&[out_f, in_f]),
            grad_bias: Tensor::zeros(&[out_f]),
            cached_input: None,
        })
    }

    /// Number of input features `d`.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Number of output neurons `n`.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// The weight matrix `W (out, in)`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight matrix — used by the dishonest server.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector `b (out)`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias vector — used by the dishonest server.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Accumulated weight gradient `∂L/∂W` — what a client uploads and
    /// the attacker inverts.
    pub fn grad_weight(&self) -> &Tensor {
        &self.grad_weight
    }

    /// Accumulated bias gradient `∂L/∂b`.
    pub fn grad_bias(&self) -> &Tensor {
        &self.grad_bias
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(NnError::BadInput {
                layer: "linear",
                expected: format!("[batch, {}]", self.in_features()),
                actual: input.dims().to_vec(),
            });
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        let y = input.matmul_nt(&self.weight)?;
        Ok(y.add_row_broadcast(&self.bias)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "linear" })?;
        // ∂L/∂W = δᵀ · x  (out, in)
        self.grad_weight
            .add_assign(&grad_output.matmul_tn(input)?)?;
        // ∂L/∂b = Σ_batch δ
        self.grad_bias.add_assign(&grad_output.sum_axis0()?)?;
        // ∂L/∂x = δ · W
        Ok(grad_output.matmul(&self.weight)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_hand_computation() {
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]).unwrap();
        let b = Tensor::from_slice(&[0.5, -0.5]);
        let mut l = Linear::from_parts(w, b).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[1.5, 3.5]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert!(l.forward(&Tensor::zeros(&[1, 4]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert!(l.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn single_sample_gradient_is_outer_product() {
        // For one sample x and upstream signal g, ∂L/∂W_i = g_i · x and
        // ∂L/∂b_i = g_i — the identity that makes Eq. 6 inversion work.
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.3, -0.7, 0.2], &[1, 3]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(vec![2.0, -1.5], &[1, 2]).unwrap();
        l.backward(&g).unwrap();
        let _ = y;
        for i in 0..2 {
            let gi = g.data()[i];
            assert!((l.grad_bias().data()[i] - gi).abs() < 1e-6);
            for j in 0..3 {
                let expect = gi * x.data()[j];
                let got = l.grad_weight().get(&[i, j]).unwrap();
                assert!((got - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn batch_gradients_are_summed_over_samples() {
        // Paper §III-A: "all derivatives are summed over the batch
        // dimension".
        let mut rng = StdRng::seed_from_u64(2);
        let make = |rng: &mut StdRng| Linear::new(3, 2, rng);
        let mut l_batch = make(&mut rng);
        let mut l_single =
            Linear::from_parts(l_batch.weight().clone(), l_batch.bias().clone()).unwrap();

        let x = Tensor::randn(&[4, 3], &mut rng);
        let g = Tensor::randn(&[4, 2], &mut rng);

        l_batch.forward(&x, Mode::Train).unwrap();
        l_batch.backward(&g).unwrap();

        for s in 0..4 {
            let xs = x.slice_rows(s, s + 1).unwrap();
            let gs = g.slice_rows(s, s + 1).unwrap();
            l_single.forward(&xs, Mode::Train).unwrap();
            l_single.backward(&gs).unwrap(); // accumulates
        }
        for (a, b) in l_batch
            .grad_weight()
            .data()
            .iter()
            .zip(l_single.grad_weight().data())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn from_parts_validates_shapes() {
        let w = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3]);
        assert!(Linear::from_parts(w, b).is_err());
    }
}
