//! Pooling layers: 2×2 max pooling and global average pooling.

use oasis_tensor::Tensor;
use std::any::Any;

use crate::{Layer, Mode, NnError, Result};

/// 2×2 max pooling with stride 2 over fixed CHW geometry.
#[derive(Debug)]
pub struct MaxPool2 {
    channels: usize,
    in_h: usize,
    in_w: usize,
    /// For each output element, the flat input index that won the max.
    argmax: Option<Vec<usize>>,
    in_features: usize,
}

impl MaxPool2 {
    /// Creates a pooling layer for inputs of geometry
    /// `(channels, h, w)`; `h` and `w` must be even.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is odd.
    pub fn new(channels: usize, h: usize, w: usize) -> Self {
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "MaxPool2 requires even spatial dims"
        );
        MaxPool2 {
            channels,
            in_h: h,
            in_w: w,
            argmax: None,
            in_features: channels * h * w,
        }
    }

    /// `(channels, h/2, w/2)`.
    pub fn output_geometry(&self) -> (usize, usize, usize) {
        (self.channels, self.in_h / 2, self.in_w / 2)
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: "maxpool2",
                expected: format!("[batch, {}]", self.in_features),
                actual: input.dims().to_vec(),
            });
        }
        let batch = input.dims()[0];
        let (oh, ow) = (self.in_h / 2, self.in_w / 2);
        let out_f = self.channels * oh * ow;
        let mut out = Tensor::zeros(&[batch, out_f]);
        let mut argmax = vec![0usize; batch * out_f];
        for b in 0..batch {
            let x = &input.data()[b * self.in_features..(b + 1) * self.in_features];
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let idx = (c * self.in_h + iy) * self.in_w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = (c * oh + oy) * ow + ox;
                        out.row_mut(b)?[o] = best;
                        argmax[b * out_f + o] = best_idx;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.argmax = Some(argmax);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "maxpool2" })?;
        let batch = grad_output.dims()[0];
        let out_f = grad_output.dims()[1];
        let mut gx = Tensor::zeros(&[batch, self.in_features]);
        for b in 0..batch {
            for o in 0..out_f {
                let src = argmax[b * out_f + o];
                gx.row_mut(b)?[src] += grad_output.row(b)?[o];
            }
        }
        Ok(gx)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Global average pooling: `[batch, C·P] → [batch, C]`.
#[derive(Debug)]
pub struct AvgPoolAll {
    channels: usize,
    spatial: Option<usize>,
}

impl AvgPoolAll {
    /// Creates a global average pool over `channels` channels; the
    /// spatial size is inferred from the first forward pass.
    pub fn new(channels: usize) -> Self {
        AvgPoolAll {
            channels,
            spatial: None,
        }
    }
}

impl Layer for AvgPoolAll {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || !input.dims()[1].is_multiple_of(self.channels) {
            return Err(NnError::BadInput {
                layer: "avgpool_all",
                expected: format!("[batch, {}·P]", self.channels),
                actual: input.dims().to_vec(),
            });
        }
        let batch = input.dims()[0];
        let p = input.dims()[1] / self.channels;
        self.spatial = Some(p);
        let mut out = Tensor::zeros(&[batch, self.channels]);
        for b in 0..batch {
            let x = &input.data()[b * self.channels * p..(b + 1) * self.channels * p];
            for c in 0..self.channels {
                let sum: f32 = x[c * p..(c + 1) * p].iter().sum();
                out.row_mut(b)?[c] = sum / p as f32;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let p = self.spatial.ok_or(NnError::BackwardBeforeForward {
            layer: "avgpool_all",
        })?;
        let batch = grad_output.dims()[0];
        let mut gx = Tensor::zeros(&[batch, self.channels * p]);
        for b in 0..batch {
            for c in 0..self.channels {
                let g = grad_output.row(b)?[c] / p as f32;
                for v in &mut gx.row_mut(b)?[c * p..(c + 1) * p] {
                    *v = g;
                }
            }
        }
        Ok(gx)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}

    fn name(&self) -> &'static str {
        "avgpool_all"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maximum() {
        let mut pool = MaxPool2::new(1, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.5], &[1, 4]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2::new(1, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.5], &[1, 4]).unwrap();
        pool.forward(&x, Mode::Train).unwrap();
        let gx = pool
            .backward(&Tensor::from_vec(vec![5.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn maxpool_rejects_odd_dims() {
        let _ = MaxPool2::new(1, 3, 4);
    }

    #[test]
    fn avgpool_averages_per_channel() {
        let mut pool = AvgPoolAll::new(2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 10.0, 20.0], &[1, 4]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let mut pool = AvgPoolAll::new(1);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 4]).unwrap();
        pool.forward(&x, Mode::Train).unwrap();
        let gx = pool
            .backward(&Tensor::from_vec(vec![8.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_rejects_nondivisible_width() {
        let mut pool = AvgPoolAll::new(3);
        assert!(pool.forward(&Tensor::zeros(&[1, 4]), Mode::Eval).is_err());
    }
}
