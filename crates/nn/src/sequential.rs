//! Layer composition.

use oasis_tensor::Tensor;
use std::any::Any;

use crate::{Layer, Mode, Result};

/// A stack of layers applied in order.
///
/// `Sequential` is itself a [`Layer`], so blocks nest. The dishonest
/// server reaches specific layers through [`Sequential::layer_mut`]
/// plus `as_any_mut` downcasting.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow layer `i`.
    pub fn layer(&self, i: usize) -> Option<&dyn Layer> {
        self.layers.get(i).map(|b| b.as_ref())
    }

    /// Mutably borrow layer `i`.
    pub fn layer_mut(&mut self, i: usize) -> Option<&mut (dyn Layer + 'static)> {
        self.layers.get_mut(i).map(|b| b.as_mut() as _)
    }

    /// Downcast layer `i` to a concrete type.
    pub fn layer_as<T: 'static>(&self, i: usize) -> Option<&T> {
        self.layers.get(i).and_then(|b| b.as_any().downcast_ref())
    }

    /// Mutably downcast layer `i` to a concrete type.
    pub fn layer_as_mut<T: 'static>(&mut self, i: usize) -> Option<&mut T> {
        self.layers
            .get_mut(i)
            .and_then(|b| b.as_any_mut().downcast_mut())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[")?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", l.name())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use rand::{rngs::StdRng, SeedableRng};

    fn mlp(rng: &mut StdRng) -> Sequential {
        let mut s = Sequential::new();
        s.push(Linear::new(4, 8, rng));
        s.push(Relu::new());
        s.push(Linear::new(8, 3, rng));
        s
    }

    #[test]
    fn forward_chains_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(&mut rng);
        let y = m
            .forward(&Tensor::randn(&[5, 4], &mut rng), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[5, 3]);
    }

    #[test]
    fn backward_returns_input_grad_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(&mut rng);
        let x = Tensor::randn(&[5, 4], &mut rng);
        let y = m.forward(&x, Mode::Train).unwrap();
        let gx = m.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn downcast_reaches_concrete_layer() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(&mut rng);
        assert!(m.layer_as::<Linear>(0).is_some());
        assert!(m.layer_as::<Relu>(0).is_none());
        assert!(m.layer_as_mut::<Linear>(2).is_some());
        assert!(m.layer_as::<Linear>(9).is_none());
    }

    #[test]
    fn param_visit_covers_all_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(&mut rng);
        let n = crate::param_count(&mut m);
        assert_eq!(n, (4 * 8 + 8) + (8 * 3 + 3));
    }

    #[test]
    fn debug_lists_layer_names() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = mlp(&mut rng);
        assert_eq!(format!("{m:?}"), "Sequential[linear, relu, linear]");
    }
}
