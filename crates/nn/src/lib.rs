//! # oasis-nn
//!
//! Neural networks with hand-derived backpropagation, built on
//! [`oasis_tensor`].
//!
//! Every layer implements [`Layer`]: a `forward` pass that caches what
//! backward needs, a `backward` pass that accumulates parameter
//! gradients and returns the input gradient, and a parameter visitor
//! used by optimizers and the federated-learning protocol.
//!
//! The gradients are **analytically exact** — this matters because the
//! active reconstruction attacks in `oasis-attacks` invert gradient
//! algebra (paper Eq. 6); approximate gradients would corrupt the
//! attack itself rather than test the defense. `gradcheck` verifies
//! every layer against central finite differences.
//!
//! ```
//! use oasis_nn::{Linear, Layer, Mode, Relu, Sequential};
//! use oasis_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), oasis_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Linear::new(4, 8, &mut rng));
//! model.push(Relu::new());
//! model.push(Linear::new(8, 2, &mut rng));
//!
//! let x = Tensor::randn(&[3, 4], &mut rng);
//! let logits = model.forward(&x, Mode::Train)?;
//! assert_eq!(logits.dims(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batchnorm;
mod conv;
mod error;
pub mod gradcheck;
mod layer;
mod linear;
mod loss;
mod optim;
mod pool;
mod relu;
mod resnet;
mod sequential;

pub use batchnorm::BatchNorm;
pub use conv::Conv2d;
pub use error::NnError;
pub use layer::{
    flatten_grads, flatten_params, flatten_params_ref, load_grads, load_params, param_count,
    param_count_ref, Layer, Mode,
};
pub use linear::Linear;
pub use loss::{mse_loss, softmax, softmax_cross_entropy, LossOutput};
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::{AvgPoolAll, MaxPool2};
pub use relu::Relu;
pub use resnet::{resnet_lite, ResidualBlock};
pub use sequential::Sequential;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, NnError>;
