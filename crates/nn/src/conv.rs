//! 2-D convolution via batched, transposed im2col.
//!
//! The whole workspace passes activations as rank-2 tensors
//! `[batch, features]`; convolution layers therefore carry their
//! input geometry `(channels, height, width)` and reinterpret the flat
//! features as CHW. This keeps the `Layer` interface uniform — which
//! is exactly what the attacks need, since they treat the first layer
//! as an `n×d` matrix regardless of what sits behind it.
//!
//! ## Hot-path layout
//!
//! The lowering matrix is built **once per batch** and **transposed**:
//! `col` is `(C·k·k, B·P)` with column index `b·P + oy·ow + ox`. This
//! shape is what makes the layer fast:
//!
//! * each `col` row walks the input along `ox`, so filling (and its
//!   adjoint, the input-gradient scatter) is contiguous runs instead
//!   of per-element gathers;
//! * forward is one long-row product `W (oc, C·k²) · col → (oc, B·P)`
//!   for the whole batch — `B` per-sample matmuls of awkward aspect
//!   ratio collapse into a single kernel-friendly one;
//! * the `(oc, B·P)` result is channel-major, so reshaping to the
//!   workspace's `[batch, oc·P]` rows is a bias-fused copy of
//!   contiguous `P`-long segments.
//!
//! The buffers are held on the layer and reused across calls, and a
//! training-mode forward leaves `col` valid so backward skips the
//! rebuild entirely.

use oasis_tensor::{parallel, Tensor};
use rand::Rng;
use std::any::Any;

use crate::{Layer, Mode, NnError, Result};

/// Minimum buffer size (elements) before a lowering fill, gradient
/// transpose, or scatter enters the worker pool. These fills are pure
/// memory traffic (~1 ns/element), so below a few tens of KiB the
/// pool's dispatch latency would dominate — sub-threshold batches run
/// serially on the caller.
const PAR_MIN_ELEMS: usize = 16 * 1024;

/// Eight-lane unrolled sum (deterministic lane-combine order; the
/// independent accumulators let the reduction vectorize).
fn lane_sum(row: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut chunks = row.chunks_exact(8);
    for c in &mut chunks {
        for l in 0..8 {
            acc[l] += c[l];
        }
    }
    let tail: f32 = chunks.remainder().iter().sum();
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// A 2-D convolution with square kernels, zero padding and stride.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    in_h: usize,
    in_w: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    /// Reused `(C·k·k, B·P)` transposed-im2col scratch.
    scratch_col: Vec<f32>,
    /// Whether `scratch_col` holds the lowering of `cached_input`
    /// (set by a training-mode forward, cleared by an eval forward).
    col_valid: bool,
    /// Reused `(out_c, B·P)` gradient-transpose scratch.
    scratch_dy: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// `input_hw` fixes the spatial geometry of incoming activations;
    /// inputs must be `[batch, in_channels * h * w]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input_hw: (usize, usize),
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (1.0 / fan_in).sqrt();
        let ckk = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            in_h: input_hw.0,
            in_w: input_hw.1,
            weight: Tensor::rand_uniform(&[out_channels, ckk], -bound, bound, rng),
            bias: Tensor::rand_uniform(&[out_channels], -bound, bound, rng),
            grad_weight: Tensor::zeros(&[out_channels, ckk]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_input: None,
            scratch_col: Vec::new(),
            col_valid: false,
            scratch_dy: Vec::new(),
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Flat output feature count `out_channels * out_h * out_w`.
    pub fn out_features(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Flat input feature count `in_channels * in_h * in_w`.
    pub fn in_features(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// `(out_channels, out_h, out_w)` — geometry for the next layer.
    pub fn output_geometry(&self) -> (usize, usize, usize) {
        (self.out_channels, self.out_h(), self.out_w())
    }

    /// The valid `ox` window `[lo, hi)` for kernel column `kx`: the
    /// positions whose source column `ox·stride + kx − padding` lands
    /// inside `[0, w)`.
    fn ox_window(&self, kx: usize) -> (usize, usize) {
        let (stride, pad, w, ow) = (self.stride, self.padding, self.in_w, self.out_w());
        let lo = if pad > kx {
            (pad - kx).div_ceil(stride)
        } else {
            0
        };
        let hi = (w + pad).saturating_sub(kx).div_ceil(stride).min(ow);
        (lo.min(hi), hi)
    }

    /// Fills the whole batch's transposed im2col matrix: `col` is
    /// `(C·k·k, B·P)` with column index `b·P + oy·ow + ox`.
    ///
    /// Each `(row, b, oy)` triple is one `ow`-long destination run
    /// whose in-bounds span is a single contiguous (stride 1) or
    /// fixed-stride copy from the input; the padded remainder is
    /// zero-filled, so a dirty reused buffer needs no separate clear.
    fn im2col_t(&self, input: &[f32], batch: usize, col: &mut [f32]) {
        let _span = oasis_telemetry::span("nn.conv.im2col");
        let (c, h, w) = (self.in_channels, self.in_h, self.in_w);
        let (k, stride, pad) = (self.kernel, self.stride, self.padding);
        let (oh, ow) = (self.out_h(), self.out_w());
        let p = oh * ow;
        let bp = batch * p;
        let in_f = self.in_features();
        debug_assert_eq!(col.len(), c * k * k * bp);
        parallel::for_each_row_block_min(col, bp, PAR_MIN_ELEMS, |q0, rows| {
            for (lq, row) in rows.chunks_mut(bp).enumerate() {
                let q = q0 + lq;
                let (ch, ky, kx) = (q / (k * k), q / k % k, q % k);
                let (ox_lo, ox_hi) = self.ox_window(kx);
                for b in 0..batch {
                    let x = &input[b * in_f..(b + 1) * in_f];
                    for oy in 0..oh {
                        let dst = &mut row[b * p + oy * ow..b * p + (oy + 1) * ow];
                        let sy = (oy * stride + ky) as isize - pad as isize;
                        if sy < 0 || sy as usize >= h || ox_lo >= ox_hi {
                            dst.fill(0.0);
                            continue;
                        }
                        let base = (ch * h + sy as usize) * w;
                        let sx_lo = ox_lo * stride + kx - pad;
                        dst[..ox_lo].fill(0.0);
                        if stride == 1 {
                            dst[ox_lo..ox_hi]
                                .copy_from_slice(&x[base + sx_lo..base + sx_lo + (ox_hi - ox_lo)]);
                        } else {
                            for (i, d) in dst[ox_lo..ox_hi].iter_mut().enumerate() {
                                *d = x[base + sx_lo + i * stride];
                            }
                        }
                        dst[ox_hi..].fill(0.0);
                    }
                }
            }
        });
    }

    /// Scatter-adds one sample's slice of the `(C·k·k, B·P)`
    /// column-gradient back into its flat CHW input gradient (the
    /// adjoint of [`Conv2d::im2col_t`], same contiguous runs).
    fn col2im_t(&self, dcol: &[f32], bp: usize, b: usize, gx: &mut [f32]) {
        let (c, h, w) = (self.in_channels, self.in_h, self.in_w);
        let (k, stride, pad) = (self.kernel, self.stride, self.padding);
        let (oh, ow) = (self.out_h(), self.out_w());
        let p = oh * ow;
        for q in 0..c * k * k {
            let (ch, ky, kx) = (q / (k * k), q / k % k, q % k);
            let (ox_lo, ox_hi) = self.ox_window(kx);
            if ox_lo >= ox_hi {
                continue;
            }
            let row = &dcol[q * bp..(q + 1) * bp];
            for oy in 0..oh {
                let sy = (oy * stride + ky) as isize - pad as isize;
                if sy < 0 || sy as usize >= h {
                    continue;
                }
                let base = (ch * h + sy as usize) * w;
                let sx_lo = ox_lo * stride + kx - pad;
                let src = &row[b * p + oy * ow + ox_lo..b * p + oy * ow + ox_hi];
                if stride == 1 {
                    let dst = &mut gx[base + sx_lo..base + sx_lo + (ox_hi - ox_lo)];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                } else {
                    for (i, &s) in src.iter().enumerate() {
                        gx[base + sx_lo + i * stride] += s;
                    }
                }
            }
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: format!("[batch, {}]", self.in_features()),
                actual: input.dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check_input(input)?;
        let _span = oasis_telemetry::span("nn.conv.forward");
        let batch = input.dims()[0];
        let p = self.out_h() * self.out_w();
        let bp = batch * p;
        let oc = self.out_channels;
        let ckk = self.weight.dims()[1];
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        let mut colv = std::mem::take(&mut self.scratch_col);
        colv.resize(ckk * bp, 0.0);
        self.im2col_t(input.data(), batch, &mut colv);
        let col = Tensor::from_vec(colv, &[ckk, bp])?;
        let y = self.weight.matmul(&col)?; // (oc, B·P)
        self.scratch_col = col.into_vec();
        // A training forward leaves `col` describing `cached_input`,
        // so the next backward can skip the rebuild.
        self.col_valid = mode == Mode::Train;

        // (oc, B·P) → per-sample channel-major rows, bias fused into
        // the copy.
        let mut out = Tensor::zeros(&[batch, oc * p]);
        let ydata = y.data();
        let bias = self.bias.data();
        parallel::for_each_row_block_min(out.data_mut(), oc * p, PAR_MIN_ELEMS, |b0, rows| {
            for (lb, orow) in rows.chunks_mut(oc * p).enumerate() {
                let b = b0 + lb;
                for (c, dst) in orow.chunks_mut(p).enumerate() {
                    let src = &ydata[c * bp + b * p..c * bp + (b + 1) * p];
                    let bv = bias[c];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = s + bv;
                    }
                }
            }
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let _span = oasis_telemetry::span("nn.conv.backward");
        let batch = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?
            .dims()[0];
        let p = self.out_h() * self.out_w();
        let bp = batch * p;
        let oc = self.out_channels;
        if grad_output.rank() != 2
            || grad_output.dims()[0] != batch
            || grad_output.dims()[1] != oc * p
        {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: format!("[{batch}, {}]", oc * p),
                actual: grad_output.dims().to_vec(),
            });
        }
        // Taken by value so the scratch buffers can be borrowed
        // mutably alongside it; restored before returning.
        let input = self.cached_input.take().expect("checked above");
        let in_f = self.in_features();
        let ckk = self.weight.dims()[1];

        let mut colv = std::mem::take(&mut self.scratch_col);
        if !self.col_valid || colv.len() != ckk * bp {
            colv.resize(ckk * bp, 0.0);
            self.im2col_t(input.data(), batch, &mut colv);
            self.col_valid = true;
        }
        let col = Tensor::from_vec(colv, &[ckk, bp])?;

        // δY as (oc, B·P): contiguous P-long segment copies from the
        // channel-major layer output gradient.
        let mut dyv = std::mem::take(&mut self.scratch_dy);
        dyv.resize(oc * bp, 0.0);
        let go = grad_output.data();
        parallel::for_each_row_block_min(&mut dyv, bp, PAR_MIN_ELEMS, |c0, rows| {
            for (lc, drow) in rows.chunks_mut(bp).enumerate() {
                let c = c0 + lc;
                for (b, dst) in drow.chunks_mut(p).enumerate() {
                    dst.copy_from_slice(&go[b * oc * p + c * p..b * oc * p + (c + 1) * p]);
                }
            }
        });
        // Bias gradient = per-channel row sums, taken before δY moves
        // into its tensor so no scratch vector is needed.
        let gb = Tensor::from_vec(dyv.chunks(bp).map(lane_sum).collect(), &[oc])?;
        let dy = Tensor::from_vec(dyv, &[oc, bp])?;

        let gw = dy.matmul_nt(&col)?; // (oc, C·k·k)
        let dcol = self.weight.matmul_tn(&dy)?; // (C·k·k, B·P)
        self.grad_weight.add_assign(&gw)?;
        self.grad_bias.add_assign(&gb)?;

        let mut grad_input = Tensor::zeros(&[batch, in_f]);
        let dcol_data = dcol.data();
        parallel::for_each_row_block_min(grad_input.data_mut(), in_f, PAR_MIN_ELEMS, |b0, rows| {
            for (lb, gx) in rows.chunks_mut(in_f).enumerate() {
                self.col2im_t(dcol_data, bp, b0 + lb, gx);
            }
        });
        self.scratch_col = col.into_vec();
        self.scratch_dy = dy.into_vec();
        self.cached_input = Some(input);
        Ok(grad_input)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, (4, 4), &mut rng);
        conv.weight_set_for_test(&[1.0]);
        conv.bias_set_for_test(&[0.0]);
        let x = Tensor::randn(&[2, 16], &mut rng);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn averaging_kernel_averages() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 2, 2, 0, (2, 2), &mut rng);
        conv.weight_set_for_test(&[0.25, 0.25, 0.25, 0.25]);
        conv.bias_set_for_test(&[0.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1]);
        assert!((y.data()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn geometry_with_stride_and_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 16, 3, 2, 1, (32, 32), &mut rng);
        assert_eq!(conv.out_h(), 16);
        assert_eq!(conv.out_w(), 16);
        assert_eq!(conv.out_features(), 16 * 16 * 16);
        assert_eq!(conv.output_geometry(), (16, 16, 16));
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, (4, 4), &mut rng);
        assert!(conv.forward(&Tensor::zeros(&[1, 15]), Mode::Eval).is_err());
    }

    #[test]
    fn bias_shifts_every_position() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, (2, 2), &mut rng);
        conv.weight_set_for_test(&[0.0]);
        conv.bias_set_for_test(&[0.7]);
        let y = conv.forward(&Tensor::zeros(&[1, 4]), Mode::Eval).unwrap();
        assert!(y.data().iter().all(|&v| (v - 0.7).abs() < 1e-6));
    }

    #[test]
    fn backward_shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, (5, 5), &mut rng);
        let x = Tensor::randn(&[4, 2 * 25], &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let gx = conv.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(conv.grad_weight_for_test().dims(), &[3, 2 * 9]);
    }

    #[test]
    fn eval_forward_between_train_and_backward_is_safe() {
        // An eval-mode forward (different batch) must not poison the
        // cached lowering the next backward uses.
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, (5, 5), &mut rng);
        let x = Tensor::randn(&[4, 2 * 25], &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();

        let mut reference = Conv2d::new(2, 3, 3, 1, 1, (5, 5), &mut StdRng::seed_from_u64(1));
        reference.forward(&x, Mode::Train).unwrap();

        // Same-size eval batch with different contents.
        let other = Tensor::randn(&[4, 2 * 25], &mut rng);
        conv.forward(&other, Mode::Eval).unwrap();

        let gx = conv.backward(&Tensor::ones(y.dims())).unwrap();
        let gx_ref = reference.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx, gx_ref);
        assert_eq!(
            conv.grad_weight_for_test().data(),
            reference.grad_weight_for_test().data()
        );
    }

    impl Conv2d {
        fn weight_set_for_test(&mut self, values: &[f32]) {
            self.weight.data_mut().copy_from_slice(values);
        }
        fn bias_set_for_test(&mut self, values: &[f32]) {
            self.bias.data_mut().copy_from_slice(values);
        }
        fn grad_weight_for_test(&self) -> &Tensor {
            &self.grad_weight
        }
    }
}
