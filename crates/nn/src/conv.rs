//! 2-D convolution via im2col, with fixed spatial geometry.
//!
//! The whole workspace passes activations as rank-2 tensors
//! `[batch, features]`; convolution layers therefore carry their
//! input geometry `(channels, height, width)` and reinterpret the flat
//! features as CHW. This keeps the `Layer` interface uniform — which
//! is exactly what the attacks need, since they treat the first layer
//! as an `n×d` matrix regardless of what sits behind it.

use oasis_tensor::{parallel, Tensor};
use rand::Rng;
use std::any::Any;

use crate::{Layer, Mode, NnError, Result};

/// A 2-D convolution with square kernels, zero padding and stride.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    in_h: usize,
    in_w: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// `input_hw` fixes the spatial geometry of incoming activations;
    /// inputs must be `[batch, in_channels * h * w]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input_hw: (usize, usize),
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (1.0 / fan_in).sqrt();
        let ckk = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            in_h: input_hw.0,
            in_w: input_hw.1,
            weight: Tensor::rand_uniform(&[out_channels, ckk], -bound, bound, rng),
            bias: Tensor::rand_uniform(&[out_channels], -bound, bound, rng),
            grad_weight: Tensor::zeros(&[out_channels, ckk]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_input: None,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Flat output feature count `out_channels * out_h * out_w`.
    pub fn out_features(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Flat input feature count `in_channels * in_h * in_w`.
    pub fn in_features(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// `(out_channels, out_h, out_w)` — geometry for the next layer.
    pub fn output_geometry(&self) -> (usize, usize, usize) {
        (self.out_channels, self.out_h(), self.out_w())
    }

    /// Extracts the im2col matrix `(P, C·k·k)` for one sample.
    fn im2col(&self, x: &[f32]) -> Vec<f32> {
        let (c, h, w) = (self.in_channels, self.in_h, self.in_w);
        let k = self.kernel;
        let (oh, ow) = (self.out_h(), self.out_w());
        let ckk = c * k * k;
        let mut col = vec![0.0f32; oh * ow * ckk];
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * ckk;
                for ch in 0..c {
                    for ky in 0..k {
                        let sy = (oy * self.stride + ky) as isize - self.padding as isize;
                        if sy < 0 || sy as usize >= h {
                            continue;
                        }
                        for kx in 0..k {
                            let sx = (ox * self.stride + kx) as isize - self.padding as isize;
                            if sx < 0 || sx as usize >= w {
                                continue;
                            }
                            col[row + ch * k * k + ky * k + kx] =
                                x[(ch * h + sy as usize) * w + sx as usize];
                        }
                    }
                }
            }
        }
        col
    }

    /// Scatter-adds a `(P, C·k·k)` column-gradient back into a flat
    /// CHW input gradient (the adjoint of [`Conv2d::im2col`]).
    fn col2im(&self, col: &[f32], gx: &mut [f32]) {
        let (c, h, w) = (self.in_channels, self.in_h, self.in_w);
        let k = self.kernel;
        let (oh, ow) = (self.out_h(), self.out_w());
        let ckk = c * k * k;
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * ckk;
                for ch in 0..c {
                    for ky in 0..k {
                        let sy = (oy * self.stride + ky) as isize - self.padding as isize;
                        if sy < 0 || sy as usize >= h {
                            continue;
                        }
                        for kx in 0..k {
                            let sx = (ox * self.stride + kx) as isize - self.padding as isize;
                            if sx < 0 || sx as usize >= w {
                                continue;
                            }
                            gx[(ch * h + sy as usize) * w + sx as usize] +=
                                col[row + ch * k * k + ky * k + kx];
                        }
                    }
                }
            }
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: format!("[batch, {}]", self.in_features()),
                actual: input.dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check_input(input)?;
        let batch = input.dims()[0];
        let p = self.out_h() * self.out_w();
        let oc = self.out_channels;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        let in_f = self.in_features();
        let rows: Vec<Vec<f32>> =
            parallel::map_indexed(&(0..batch).collect::<Vec<_>>(), |_, &b| {
                let x = &input.data()[b * in_f..(b + 1) * in_f];
                let col = self.im2col(x);
                let col_t =
                    Tensor::from_vec(col, &[p, self.weight.dims()[1]]).expect("im2col geometry");
                // (P, CKK) · (CKK, out_c) via nt on W (out_c, CKK).
                let y = col_t.matmul_nt(&self.weight).expect("conv forward matmul");
                // Rearrange (P, oc) → channel-major (oc, P) with bias.
                let mut row = vec![0.0f32; oc * p];
                for pi in 0..p {
                    for c in 0..oc {
                        row[c * p + pi] = y.data()[pi * oc + c] + self.bias.data()[c];
                    }
                }
                row
            });
        let mut out = Tensor::zeros(&[batch, oc * p]);
        for (b, row) in rows.into_iter().enumerate() {
            out.row_mut(b)?.copy_from_slice(&row);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?;
        let batch = input.dims()[0];
        let p = self.out_h() * self.out_w();
        let oc = self.out_channels;
        if grad_output.rank() != 2
            || grad_output.dims()[0] != batch
            || grad_output.dims()[1] != oc * p
        {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: format!("[{batch}, {}]", oc * p),
                actual: grad_output.dims().to_vec(),
            });
        }
        let in_f = self.in_features();
        let ckk = self.weight.dims()[1];

        // Per-sample partials computed in parallel, reduced serially.
        struct Partial {
            gw: Tensor,
            gb: Tensor,
            gx: Vec<f32>,
        }
        let partials: Vec<Partial> =
            parallel::map_indexed(&(0..batch).collect::<Vec<_>>(), |_, &b| {
                let x = &input.data()[b * in_f..(b + 1) * in_f];
                let col = self.im2col(x);
                let col_t = Tensor::from_vec(col, &[p, ckk]).expect("im2col geometry");
                // δY for this sample, rearranged (oc, P) → (P, oc).
                let go = &grad_output.data()[b * oc * p..(b + 1) * oc * p];
                let mut dy = vec![0.0f32; p * oc];
                for c in 0..oc {
                    for pi in 0..p {
                        dy[pi * oc + c] = go[c * p + pi];
                    }
                }
                let dy_t = Tensor::from_vec(dy, &[p, oc]).expect("dy geometry");
                let gw = dy_t.matmul_tn(&col_t).expect("conv grad_w"); // (oc, ckk)
                let gb = dy_t.sum_axis0().expect("conv grad_b"); // (oc)
                let dcol = dy_t.matmul(&self.weight).expect("conv grad_col"); // (P, ckk)
                let mut gx = vec![0.0f32; in_f];
                self.col2im(dcol.data(), &mut gx);
                Partial { gw, gb, gx }
            });

        let mut grad_input = Tensor::zeros(&[batch, in_f]);
        for (b, part) in partials.into_iter().enumerate() {
            self.grad_weight.add_assign(&part.gw)?;
            self.grad_bias.add_assign(&part.gb)?;
            grad_input.row_mut(b)?.copy_from_slice(&part.gx);
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, (4, 4), &mut rng);
        conv.weight_set_for_test(&[1.0]);
        conv.bias_set_for_test(&[0.0]);
        let x = Tensor::randn(&[2, 16], &mut rng);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn averaging_kernel_averages() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 2, 2, 0, (2, 2), &mut rng);
        conv.weight_set_for_test(&[0.25, 0.25, 0.25, 0.25]);
        conv.bias_set_for_test(&[0.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1]);
        assert!((y.data()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn geometry_with_stride_and_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 16, 3, 2, 1, (32, 32), &mut rng);
        assert_eq!(conv.out_h(), 16);
        assert_eq!(conv.out_w(), 16);
        assert_eq!(conv.out_features(), 16 * 16 * 16);
        assert_eq!(conv.output_geometry(), (16, 16, 16));
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, (4, 4), &mut rng);
        assert!(conv.forward(&Tensor::zeros(&[1, 15]), Mode::Eval).is_err());
    }

    #[test]
    fn bias_shifts_every_position() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, (2, 2), &mut rng);
        conv.weight_set_for_test(&[0.0]);
        conv.bias_set_for_test(&[0.7]);
        let y = conv.forward(&Tensor::zeros(&[1, 4]), Mode::Eval).unwrap();
        assert!(y.data().iter().all(|&v| (v - 0.7).abs() < 1e-6));
    }

    #[test]
    fn backward_shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, (5, 5), &mut rng);
        let x = Tensor::randn(&[4, 2 * 25], &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let gx = conv.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(conv.grad_weight_for_test().dims(), &[3, 2 * 9]);
    }

    impl Conv2d {
        fn weight_set_for_test(&mut self, values: &[f32]) {
            self.weight.data_mut().copy_from_slice(values);
        }
        fn bias_set_for_test(&mut self, values: &[f32]) {
            self.bias.data_mut().copy_from_slice(values);
        }
        fn grad_weight_for_test(&self) -> &Tensor {
            &self.grad_weight
        }
    }
}
