//! # oasis-campaign
//!
//! Long-horizon federation campaigns: multi-phase schedules of
//! **churn**, **drift**, and **adaptive adversaries** driven over an
//! [`oasis_population::CohortRunner`].
//!
//! Single-shot trials (one attack, one defense, one round) answer
//! "can this gradient leak?" — the scenario engine's job. Campaigns
//! answer the deployment question the paper's threat model implies:
//! what happens over *hundreds* of rounds while clients come and go,
//! the data distribution drifts, the network degrades, and the
//! adversary switches attack families mid-stream?
//!
//! * [`CampaignSpec`] — the declarative `campaign:` grammar: ordered
//!   phases, each a round count plus `+join=`/`+leave=` churn rates,
//!   `+alpha=` Dirichlet drift, `+net=` conditions, and an
//!   `+attack=a|b` adversary program (`FromStr` ⇄ `Display`,
//!   proptested).
//! * [`CampaignRunner`] — the engine: trains each round under the
//!   exact [`oasis_population::CohortScheduler::round_rng`] stream
//!   (a one-phase campaign is bit-identical to
//!   [`oasis_population::CohortRunner::run`]), applies dynamics on
//!   disjoint salted streams, probes the adversary, and calls an
//!   optional [`DefenseAdapter`] hook that can re-parameterize the
//!   [`oasis_fl::DefenseStack`] from observed signals.
//! * [`TrajectoryReport`] — one serde record per round (PSNR, leak
//!   rate, accuracy proxy, bytes on wire, delivered/dropped/churned
//!   counts, telemetry phase timings), written as schema-versioned
//!   JSONL and checked by [`validate_trajectory`].
//!
//! ```
//! use oasis_campaign::{linear_relu_factory, CampaignRunner, CampaignSetup, CampaignSpec};
//! use oasis_data::cifar_like_with;
//!
//! let spec: CampaignSpec = "campaign:2;2+leave=0.3+join=0.5".parse().unwrap();
//! let dataset = cifar_like_with(3, 8, 8, 3);
//! let setup = CampaignSetup::new(dataset, 6, linear_relu_factory(192, 12, 3, 11));
//! let mut campaign = CampaignRunner::new(spec, setup).unwrap();
//! campaign.run().unwrap();
//! assert_eq!(campaign.records().len(), 4);
//! ```

#![warn(missing_docs)]

mod engine;
mod spec;
mod trajectory;

pub use engine::{
    adversary_seed, churn_rng, drift_rng, linear_relu_factory, AdaptSignals, AdversaryEval,
    CampaignError, CampaignRunner, CampaignSetup, DefenseAdapter,
};
pub use spec::{CampaignSpec, PhaseSpec};
pub use trajectory::{
    validate_trajectory, TrajectoryRecord, TrajectoryReport, TrajectorySummary,
    TRAJECTORY_SCHEMA_VERSION,
};
