//! The campaign engine: drives a [`CohortRunner`] through the phases
//! of a [`CampaignSpec`], applying churn, drift, network changes, and
//! adversary probes round by round.
//!
//! ## Determinism and resumability
//!
//! Every round `r` trains under
//! [`CohortScheduler::round_rng`]`(seed, r)` — exactly the stream
//! [`CohortRunner::run`] uses — so a one-phase campaign with no
//! dynamics reproduces today's cohort rounds bit for bit at any
//! thread count. Every *dynamic* draws from its own salted stream
//! (churn keyed by round, drift by phase, adversary probes by round),
//! never from the training rng, so adding churn to a phase does not
//! perturb the rounds before it and any round's dynamics can be
//! replayed without training. That is what makes campaigns
//! checkpoint-resumable: [`CampaignRunner::seek`] fast-forwards the
//! population dynamics to a round, and restoring the model weights
//! there continues the campaign on the identical trajectory.

use std::sync::Arc;

use oasis_attacks::{run_attack, ActiveAttack, AttackError};
use oasis_data::{Batch, Dataset};
use oasis_fl::{DefenseStack, FlConfig, FlError, FlServer, ModelFactory, WireConfig};
use oasis_image::Image;
use oasis_population::{CohortRunner, CohortScheduler, Population};
use oasis_scenario::{AttackSpec, DefenseSpec, ScenarioError};
use oasis_wire::{CodecSpec, NetSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::spec::{CampaignSpec, PhaseSpec};
use crate::trajectory::{TrajectoryRecord, TrajectoryReport};

/// A [`ModelFactory`] producing the evaluation workhorse model —
/// `Linear(d, hidden) → ReLU → Linear(hidden, classes)` with weights
/// drawn from `seed` — shared by the campaign binaries and tests.
pub fn linear_relu_factory(d: usize, hidden: usize, classes: usize, seed: u64) -> ModelFactory {
    use oasis_nn::{Linear, Relu, Sequential};
    Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = Sequential::new();
        model.push(Linear::new(d, hidden, &mut rng));
        model.push(Relu::new());
        model.push(Linear::new(hidden, classes, &mut rng));
        model
    })
}

/// The round-mixing multiplier shared with
/// [`CohortScheduler::round_rng`].
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stream salts keeping each dynamic's rng disjoint from the training
/// stream (keyed bare `seed ^ round·GOLDEN`) and from each other.
const CHURN_SALT: u64 = 0xC482_91AD_55E1_0B7F;
const DRIFT_SALT: u64 = 0xD21F_7A3C_9B64_E015;
const ADV_SALT: u64 = 0xAD7E_4501_C3F8_269B;
const PROBE_SALT: u64 = 0x0B5E_55ED_71A2_D4C3;
const CAL_SALT: u64 = 0xCA1B_0A8E_6F3D_1257;

/// Per-round churn stream: which clients leave or rejoin at round
/// `round`. Keyed by round only, so churn replays without training.
pub fn churn_rng(seed: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ CHURN_SALT ^ round.wrapping_mul(GOLDEN))
}

/// Per-phase drift stream: the Dirichlet re-partition applied when
/// phase `phase` is entered.
pub fn drift_rng(seed: u64, phase: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ DRIFT_SALT ^ phase.wrapping_mul(GOLDEN))
}

/// Per-round adversary probe seed (passed to
/// [`oasis_attacks::run_attack`]).
pub fn adversary_seed(seed: u64, round: u64) -> u64 {
    seed ^ ADV_SALT ^ round.wrapping_mul(GOLDEN)
}

/// Errors a campaign can raise.
#[derive(Debug)]
pub enum CampaignError {
    /// A spec could not be parsed or built.
    Spec(ScenarioError),
    /// The federation substrate failed.
    Fl(FlError),
    /// An adversary probe failed.
    Attack(AttackError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "campaign spec error: {e}"),
            CampaignError::Fl(e) => write!(f, "campaign federation error: {e}"),
            CampaignError::Attack(e) => write!(f, "campaign adversary error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ScenarioError> for CampaignError {
    fn from(e: ScenarioError) -> Self {
        CampaignError::Spec(e)
    }
}

impl From<FlError> for CampaignError {
    fn from(e: FlError) -> Self {
        CampaignError::Fl(e)
    }
}

impl From<AttackError> for CampaignError {
    fn from(e: AttackError) -> Self {
        CampaignError::Attack(e)
    }
}

/// Everything a campaign needs besides its [`CampaignSpec`].
pub struct CampaignSetup {
    /// The workload the population shards.
    pub dataset: Dataset,
    /// Population size (client count).
    pub clients: usize,
    /// Defense stack every client runs (adaptation hooks can swap it
    /// mid-campaign).
    pub defense: DefenseSpec,
    /// Server model factory.
    pub factory: ModelFactory,
    /// Federation hyperparameters.
    pub fl: FlConfig,
    /// Update codec on the wire (networks come from the phases).
    pub codec: CodecSpec,
    /// Campaign seed — keys training, churn, drift, and probes.
    pub seed: u64,
    /// Seed for the initial i.i.d. partition (ignored when phase 0
    /// declares `alpha=`); separate from `seed` so a campaign can
    /// reproduce an existing population exactly.
    pub partition_seed: u64,
    /// Evaluate the adversary every `eval_every` rounds (0 = never,
    /// even when phases declare candidates).
    pub eval_every: usize,
    /// Probe batch size the adversary attacks.
    pub probe_batch: usize,
    /// PSNR threshold (dB) above which a reconstruction counts as a
    /// leak.
    pub leak_threshold_db: f64,
}

impl CampaignSetup {
    /// A setup with the evaluation defaults: no defense, default FL
    /// hyperparameters, raw codec, probe batch 8, leak threshold
    /// 60 dB, adversary probed every round.
    pub fn new(dataset: Dataset, clients: usize, factory: ModelFactory) -> Self {
        CampaignSetup {
            dataset,
            clients,
            defense: DefenseSpec::none(),
            factory,
            fl: FlConfig::default(),
            codec: CodecSpec::Raw,
            seed: 0,
            partition_seed: 0,
            eval_every: 1,
            probe_batch: 8,
            leak_threshold_db: 60.0,
        }
    }
}

/// One adversary candidate's probe outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryEval {
    /// Round the probe ran at.
    pub round: u64,
    /// Canonical candidate spec.
    pub spec: String,
    /// Mean PSNR of the candidate's reconstructions.
    pub mean_psnr: f64,
    /// Leak rate at the campaign threshold.
    pub leak_rate: f64,
    /// Whether this candidate won the round (worst case for the
    /// defender).
    pub picked: bool,
}

/// Signals a defense adaptation hook observes after each round.
#[derive(Debug)]
pub struct AdaptSignals<'a> {
    /// The round just completed.
    pub round: u64,
    /// Its phase index.
    pub phase: usize,
    /// The trajectory record just produced (privacy, utility,
    /// traffic, churn).
    pub record: &'a TrajectoryRecord,
}

/// A defense adaptation hook: observes each round's signals and may
/// return a new [`DefenseSpec`] to install for subsequent rounds.
/// Hooks must be deterministic functions of their signals or
/// campaigns lose replayability.
pub type DefenseAdapter = Box<dyn FnMut(&AdaptSignals<'_>) -> Option<DefenseSpec> + Send>;

/// Drives a [`CohortRunner`] through a [`CampaignSpec`].
pub struct CampaignRunner {
    spec: CampaignSpec,
    dataset: Dataset,
    clients: usize,
    seed: u64,
    codec: CodecSpec,
    eval_every: usize,
    leak_threshold_db: f64,
    probe: Option<Batch>,
    calibration_pool: Vec<Image>,
    defense_spec: DefenseSpec,
    defense_stack: Arc<DefenseStack>,
    runner: CohortRunner,
    base: Population,
    active: Vec<bool>,
    active_count: usize,
    entered_phase: usize,
    adapter: Option<DefenseAdapter>,
    attack_cache: Vec<(String, Box<dyn ActiveAttack>)>,
    adversary_log: Vec<AdversaryEval>,
    records: Vec<TrajectoryRecord>,
}

impl CampaignRunner {
    /// Builds the campaign at round 0: partitions the population
    /// (Dirichlet when phase 0 declares `alpha=`, i.i.d. otherwise),
    /// installs phase 0's network, and draws the adversary's probe
    /// batch and calibration images from the workload.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] when the defense cannot be
    /// built and [`CampaignError::Fl`] when the server cannot.
    pub fn new(spec: CampaignSpec, setup: CampaignSetup) -> Result<Self, CampaignError> {
        let CampaignSetup {
            dataset,
            clients,
            defense,
            factory,
            fl,
            codec,
            seed,
            partition_seed,
            eval_every,
            probe_batch,
            leak_threshold_db,
        } = setup;
        if clients == 0 {
            return Err(CampaignError::Spec(ScenarioError::BadSpec(
                "campaign needs at least one client".into(),
            )));
        }
        let defense_stack = Arc::new(defense.build()?);
        let phase0 = spec.phases()[0].clone();
        let base = match phase0.alpha {
            Some(alpha) => Population::dirichlet(
                &dataset,
                clients,
                alpha,
                Arc::clone(&defense_stack),
                &mut drift_rng(seed, 0),
            ),
            None => Population::iid(
                &dataset,
                clients,
                Arc::clone(&defense_stack),
                &mut StdRng::seed_from_u64(partition_seed),
            ),
        };
        let mut server = FlServer::new(factory, fl)?;
        server.set_wire(WireConfig::new(codec, phase0.net.unwrap_or(NetSpec::Ideal)));
        let runner = CohortRunner::new(server, base.clone());

        // The adversary's probe batch and calibration pool come from
        // the workload distribution (the attacker-knowledge
        // assumption the scenario engine makes), on streams salted
        // away from training.
        let wants_adversary = eval_every > 0 && spec.phases().iter().any(|p| !p.attack.is_empty());
        let probe = if wants_adversary {
            let size = probe_batch.clamp(1, dataset.len());
            Some(dataset.sample_batch(size, &mut StdRng::seed_from_u64(seed ^ PROBE_SALT)))
        } else {
            None
        };
        let calibration_need = spec
            .phases()
            .iter()
            .flat_map(|p| p.attack.iter().map(|a| a.default_calibration()))
            .max()
            .unwrap_or(0);
        let calibration_pool = if wants_adversary && calibration_need > 0 {
            let mut rng = StdRng::seed_from_u64(seed ^ CAL_SALT);
            let mut idx: Vec<usize> = (0..dataset.len()).collect();
            idx.shuffle(&mut rng);
            (0..calibration_need)
                .map(|i| dataset.items()[idx[i % idx.len()]].image.clone())
                .collect()
        } else {
            Vec::new()
        };

        let dirichlet_start = phase0.alpha.is_some();
        let mut campaign = CampaignRunner {
            spec,
            dataset,
            clients,
            seed,
            codec,
            eval_every,
            leak_threshold_db,
            probe,
            calibration_pool,
            defense_spec: defense,
            defense_stack,
            runner,
            base,
            active: vec![true; clients],
            active_count: clients,
            entered_phase: 0,
            adapter: None,
            attack_cache: Vec::new(),
            adversary_log: Vec::new(),
            records: Vec::new(),
        };
        if dirichlet_start {
            // Dirichlet partitions can starve clients of data; keep
            // starved clients offline from round 0.
            campaign.sync_population();
        }
        Ok(campaign)
    }

    /// Installs a defense adaptation hook (see [`DefenseAdapter`]).
    pub fn set_defense_adapter(&mut self, adapter: DefenseAdapter) {
        self.adapter = Some(adapter);
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The defense currently installed (adaptation hooks move this).
    pub fn defense_spec(&self) -> &DefenseSpec {
        &self.defense_spec
    }

    /// The next round to run (== rounds completed or skipped so far).
    pub fn round(&self) -> u64 {
        self.runner.server().round() as u64
    }

    /// Whether every phase has run to completion.
    pub fn is_complete(&self) -> bool {
        self.round() >= self.spec.total_rounds() as u64
    }

    /// The server being driven (checkpointing, evaluation).
    pub fn server(&self) -> &FlServer {
        self.runner.server()
    }

    /// Mutable server access (checkpoint restore on resume).
    pub fn server_mut(&mut self) -> &mut FlServer {
        self.runner.server_mut()
    }

    /// Trajectory records produced so far, in round order.
    pub fn records(&self) -> &[TrajectoryRecord] {
        &self.records
    }

    /// Every adversary candidate probe run so far.
    pub fn adversary_log(&self) -> &[AdversaryEval] {
        &self.adversary_log
    }

    /// Clients currently active (not churned out).
    pub fn active_clients(&self) -> usize {
        self.active_count
    }

    /// Assembles the trajectory report for everything run so far.
    pub fn trajectory(&self, defense_label: &str) -> TrajectoryReport {
        TrajectoryReport {
            spec: self.spec.to_string(),
            seed: self.seed,
            defense: defense_label.to_string(),
            clients: self.clients,
            records: self.records.clone(),
        }
    }

    /// Runs at most `rounds` rounds, stopping at the campaign's end.
    /// Returns how many rounds actually ran.
    ///
    /// # Errors
    ///
    /// Propagates federation and adversary failures.
    pub fn run_rounds(&mut self, rounds: usize) -> Result<usize, CampaignError> {
        let mut ran = 0;
        for _ in 0..rounds {
            if self.is_complete() {
                break;
            }
            self.step()?;
            ran += 1;
        }
        Ok(ran)
    }

    /// Runs the remaining rounds of every phase.
    ///
    /// # Errors
    ///
    /// Propagates federation and adversary failures.
    pub fn run(&mut self) -> Result<(), CampaignError> {
        while !self.is_complete() {
            self.step()?;
        }
        Ok(())
    }

    /// Fast-forwards the population dynamics (phase entries, drift
    /// re-partitions, churn) to `to_round` **without training** — the
    /// resume path: seek, then restore the model checkpoint taken at
    /// that round, and the campaign continues on the identical
    /// trajectory. Skipped rounds produce no trajectory records.
    /// Defense adaptation hooks do not run while seeking; resuming an
    /// adapted campaign requires re-installing the defense the hook
    /// had reached.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] when `to_round` lies past the
    /// campaign's end or behind the current round.
    pub fn seek(&mut self, to_round: u64) -> Result<(), CampaignError> {
        if to_round > self.spec.total_rounds() as u64 || to_round < self.round() {
            return Err(CampaignError::Spec(ScenarioError::BadSpec(format!(
                "cannot seek to round {to_round} (current {}, campaign ends at {})",
                self.round(),
                self.spec.total_rounds()
            ))));
        }
        while self.round() < to_round {
            let r = self.round();
            let (pi, phase) = self
                .spec
                .phase_at(r)
                .map(|(i, p)| (i, p.clone()))
                .expect("round inside campaign");
            self.ensure_phase(pi, &phase);
            self.apply_churn(r, &phase);
            let next = self.runner.server().round() + 1;
            self.runner.server_mut().set_round(next);
        }
        Ok(())
    }

    /// Runs one campaign round: phase entry (network swap, drift),
    /// churn, the training round under the round-keyed rng, the
    /// adversary probe, trajectory recording, and defense adaptation.
    fn step(&mut self) -> Result<(), CampaignError> {
        let r = self.round();
        let (pi, phase) = self
            .spec
            .phase_at(r)
            .map(|(i, p)| (i, p.clone()))
            .expect("step called past campaign end");
        self.ensure_phase(pi, &phase);
        let (churn_left, churn_joined) = self.apply_churn(r, &phase);

        // The training stream: identical to `CohortRunner::run`.
        let mut rng = CohortScheduler::round_rng(self.seed, r);
        let report = self.runner.run_round(&mut rng)?.round_report;

        let probe_due = self.eval_every > 0
            && !phase.attack.is_empty()
            && r.is_multiple_of(self.eval_every as u64);
        let probe = if probe_due {
            self.evaluate_adversary(r, &phase.attack)?
        } else {
            None
        };

        let record = TrajectoryRecord {
            round: r,
            phase: pi,
            active_clients: self.active_count,
            cohort: report.cohort,
            delivered: report.participants,
            dropped: report.dropped,
            churn_left,
            churn_joined,
            bytes_up: report.bytes_up,
            bytes_down: report.bytes_down,
            sim_ms: report.sim_ms,
            mean_loss: report.mean_loss as f64,
            accuracy_proxy: (-(report.mean_loss as f64)).exp(),
            attack: probe.as_ref().map(|p| p.spec.clone()),
            mean_psnr: probe.as_ref().map(|p| p.mean_psnr),
            leak_rate: probe.as_ref().map(|p| p.leak_rate),
            timings_ns: report.timings.map(|t| {
                t.phases()
                    .iter()
                    .map(|&(name, ns)| (name.to_string(), ns))
                    .collect()
            }),
        };

        if self.adapter.is_some() {
            let signals = AdaptSignals {
                round: r,
                phase: pi,
                record: &record,
            };
            let decision = self.adapter.as_mut().and_then(|adapter| adapter(&signals));
            if let Some(new_spec) = decision {
                self.install_defense(new_spec)?;
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// Re-parameterizes the defense stack for subsequent rounds (the
    /// adaptation hook's effector; also callable directly).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] when the spec cannot build.
    pub fn install_defense(&mut self, spec: DefenseSpec) -> Result<(), CampaignError> {
        if spec == self.defense_spec {
            return Ok(());
        }
        let stack = Arc::new(spec.build()?);
        self.defense_spec = spec;
        self.defense_stack = Arc::clone(&stack);
        self.base.set_defense(Arc::clone(&stack));
        self.runner.population_mut().set_defense(stack);
        Ok(())
    }

    /// Applies phase-entry actions exactly once per phase: the
    /// network swap (sticky until overridden) and the Dirichlet drift
    /// re-partition. Phase 0's actions run at construction.
    fn ensure_phase(&mut self, pi: usize, phase: &PhaseSpec) {
        if pi == self.entered_phase {
            return;
        }
        if let Some(net) = phase.net {
            self.runner
                .server_mut()
                .set_wire(WireConfig::new(self.codec, net));
        }
        if let Some(alpha) = phase.alpha {
            self.base = Population::dirichlet(
                &self.dataset,
                self.clients,
                alpha,
                Arc::clone(&self.defense_stack),
                &mut drift_rng(self.seed, pi as u64),
            );
            self.sync_population();
        }
        self.entered_phase = pi;
    }

    /// Flips client membership for round `r` on the churn stream: one
    /// uniform draw per client (position-independent), actives leave
    /// with `leave`, departed rejoin with `join`. The last active
    /// client never leaves, so the population cannot die.
    fn apply_churn(&mut self, r: u64, phase: &PhaseSpec) -> (usize, usize) {
        if phase.join.is_none() && phase.leave.is_none() {
            return (0, 0);
        }
        let join = phase.join.unwrap_or(0.0);
        let leave = phase.leave.unwrap_or(0.0);
        let mut rng = churn_rng(self.seed, r);
        let (mut left, mut joined) = (0usize, 0usize);
        for id in 0..self.clients {
            let u: f64 = rng.gen();
            if self.active[id] {
                if u < leave && self.active_count > 1 {
                    self.active[id] = false;
                    self.active_count -= 1;
                    left += 1;
                }
            } else if u < join {
                self.active[id] = true;
                self.active_count += 1;
                joined += 1;
            }
        }
        if left > 0 || joined > 0 {
            self.sync_population();
        }
        (left, joined)
    }

    /// Rebuilds the runner's population as the active subset of the
    /// base partition (descriptors keep their ids, so rejoining
    /// clients hydrate their original shards). Clients whose current
    /// shard is empty — extreme-α Dirichlet drift can starve a
    /// client of data — stay offline until a later re-partition
    /// provisions them again.
    fn sync_population(&mut self) {
        let eligible = |id: usize| self.base.descriptor(id).shard_len() > 0;
        if self.active_count == self.clients && (0..self.clients).all(eligible) {
            self.runner.set_population(self.base.clone());
            return;
        }
        let mut positions: Vec<usize> = (0..self.clients)
            .filter(|&id| self.active[id] && eligible(id))
            .collect();
        if positions.is_empty() {
            // Every active client is starved; keep the protocol alive
            // on whoever still holds data.
            positions = (0..self.clients).filter(|&id| eligible(id)).collect();
        }
        self.runner.set_population(self.base.subset(&positions));
    }

    /// Probes every candidate against the current defense and returns
    /// the winner (max leak rate, then max PSNR) — the adaptive
    /// adversary's worst-case report.
    fn evaluate_adversary(
        &mut self,
        r: u64,
        candidates: &[AttackSpec],
    ) -> Result<Option<AdversaryEval>, CampaignError> {
        let probe = match &self.probe {
            Some(batch) => batch.clone(),
            None => return Ok(None),
        };
        let classes = self.dataset.num_classes();
        let probe_seed = adversary_seed(self.seed, r);
        let mut evals = Vec::with_capacity(candidates.len());
        for spec in candidates {
            let key = spec.to_string();
            if !self.attack_cache.iter().any(|(k, _)| *k == key) {
                let need = spec.default_calibration().min(self.calibration_pool.len());
                let attack = spec.build(&self.calibration_pool[..need], classes)?;
                self.attack_cache.push((key.clone(), attack));
            }
            let attack = &self
                .attack_cache
                .iter()
                .find(|(k, _)| *k == key)
                .expect("just inserted")
                .1;
            let outcome = run_attack(
                attack.as_ref(),
                &probe,
                &self.defense_stack,
                classes,
                probe_seed,
            )?;
            evals.push(AdversaryEval {
                round: r,
                spec: key,
                mean_psnr: outcome.mean_psnr(),
                leak_rate: outcome.leak_rate(self.leak_threshold_db),
                picked: false,
            });
        }
        let winner = evals
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                (a.leak_rate, a.mean_psnr)
                    .partial_cmp(&(b.leak_rate, b.mean_psnr))
                    .expect("probe metrics are finite")
            })
            .map(|(i, _)| i);
        if let Some(i) = winner {
            evals[i].picked = true;
        }
        let picked = winner.map(|i| evals[i].clone());
        self.adversary_log.extend(evals);
        Ok(picked)
    }
}

impl std::fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("spec", &self.spec.to_string())
            .field("round", &self.round())
            .field("active", &self.active_count)
            .field("clients", &self.clients)
            .finish_non_exhaustive()
    }
}
