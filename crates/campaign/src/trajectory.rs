//! Per-round campaign trajectories: schema-v1 JSONL records of
//! privacy, utility, traffic, churn, and phase timings.
//!
//! A trajectory file is one `meta` line followed by one `round` line
//! per campaign round:
//!
//! ```text
//! {"kind":"meta","schema_version":1,"spec":"campaign:20;30",...}
//! {"kind":"round","round":0,"phase":0,"mean_psnr":8.1,...}
//! ```
//!
//! [`validate_trajectory`] is the `trace_check`-style schema gate CI
//! runs over every smoke trajectory: structural problems (bad JSON,
//! missing fields) and semantic ones (non-contiguous rounds,
//! delivered > cohort, dead population) both fail it.

use std::path::Path;

use serde::{Deserialize, Serialize};

/// Trajectory schema version this crate writes and validates.
pub const TRAJECTORY_SCHEMA_VERSION: u64 = 1;

/// One round of a campaign, as recorded in the trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryRecord {
    /// Global campaign round (0-based, contiguous).
    pub round: u64,
    /// Index of the phase the round ran under.
    pub phase: usize,
    /// Clients currently active (not churned out).
    pub active_clients: usize,
    /// Cohort size the scheduler drew this round.
    pub cohort: usize,
    /// Updates that arrived and were aggregated.
    pub delivered: usize,
    /// Cohort members whose update was lost or cut off.
    pub dropped: usize,
    /// Clients that churned out before this round.
    pub churn_left: usize,
    /// Departed clients that rejoined before this round.
    pub churn_joined: usize,
    /// Encoded update bytes uplink (including lost updates).
    pub bytes_up: u64,
    /// Broadcast model bytes downlink.
    pub bytes_down: u64,
    /// Simulated round wall-clock in milliseconds.
    pub sim_ms: f64,
    /// Mean local loss over delivered clients.
    pub mean_loss: f64,
    /// Utility proxy `exp(−mean_loss)` — the geometric-mean predicted
    /// probability of the true class under cross-entropy, in (0, 1].
    pub accuracy_proxy: f64,
    /// Spec of the adversary candidate that won this round's probe
    /// (`None` on rounds without an adversary evaluation).
    pub attack: Option<String>,
    /// Mean PSNR of the winning candidate's reconstructions.
    pub mean_psnr: Option<f64>,
    /// Leak rate of the winning candidate at the campaign threshold.
    pub leak_rate: Option<f64>,
    /// Telemetry phase breakdown `(name, ns)` in execution order,
    /// recorded only while telemetry is enabled.
    pub timings_ns: Option<Vec<(String, u64)>>,
}

/// A whole campaign trajectory: run metadata plus per-round records.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryReport {
    /// Canonical campaign spec string.
    pub spec: String,
    /// Campaign seed.
    pub seed: u64,
    /// Defense stack spec string (e.g. `oasis:MR+dp:1,0.01`).
    pub defense: String,
    /// Population size at campaign start.
    pub clients: usize,
    /// Per-round records in round order.
    pub records: Vec<TrajectoryRecord>,
}

fn tag_kind(value: serde::Value, kind: &str) -> serde::Value {
    match value {
        serde::Value::Object(mut fields) => {
            fields.insert(0, ("kind".to_string(), serde::Value::Str(kind.to_string())));
            serde::Value::Object(fields)
        }
        other => other,
    }
}

impl TrajectoryReport {
    /// Renders the schema-v1 JSONL text.
    pub fn to_jsonl(&self) -> String {
        let meta = serde::Value::Object(vec![
            ("kind".to_string(), serde::Value::Str("meta".to_string())),
            (
                "schema_version".to_string(),
                serde::Value::U64(TRAJECTORY_SCHEMA_VERSION),
            ),
            ("spec".to_string(), serde::Value::Str(self.spec.clone())),
            ("seed".to_string(), serde::Value::U64(self.seed)),
            (
                "defense".to_string(),
                serde::Value::Str(self.defense.clone()),
            ),
            (
                "clients".to_string(),
                serde::Value::U64(self.clients as u64),
            ),
        ]);
        let mut out = serde_json::to_string(&meta).expect("meta value serializes");
        out.push('\n');
        for record in &self.records {
            let line = serde_json::to_string(&tag_kind(record.to_value(), "round"))
                .expect("record value serializes");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Writes the trajectory as JSONL, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_jsonl())
    }

    /// Parses schema-v1 JSONL text back into a report.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message on structural problems.
    pub fn from_jsonl_str(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, meta_line) = lines.next().ok_or("empty trajectory file")?;
        let meta: serde::Value =
            serde_json::from_str(meta_line).map_err(|e| format!("line 1: bad JSON: {e:?}"))?;
        if meta.get("kind").and_then(|k| k.as_str()) != Some("meta") {
            return Err("line 1: first line must be the `meta` record".into());
        }
        let version = meta
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .ok_or("line 1: missing `schema_version`")?;
        if version != TRAJECTORY_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {TRAJECTORY_SCHEMA_VERSION})"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            Ok(meta
                .get(key)
                .and_then(|v| v.as_str())
                .ok_or(format!("line 1: missing `{key}`"))?
                .to_string())
        };
        let mut report = TrajectoryReport {
            spec: str_field("spec")?,
            seed: meta
                .get("seed")
                .and_then(|v| v.as_u64())
                .ok_or("line 1: missing `seed`")?,
            defense: str_field("defense")?,
            clients: meta
                .get("clients")
                .and_then(|v| v.as_u64())
                .ok_or("line 1: missing `clients`")? as usize,
            records: Vec::new(),
        };
        for (i, line) in lines {
            let line_no = i + 1;
            let value: serde_json::Value = serde_json::from_str(line)
                .map_err(|e| format!("line {line_no}: bad JSON: {e:?}"))?;
            match value.get("kind").and_then(|k| k.as_str()) {
                Some("round") => {}
                other => {
                    return Err(format!(
                        "line {line_no}: expected kind `round`, got {other:?}"
                    ))
                }
            }
            let record = TrajectoryRecord::from_value(&value)
                .map_err(|e| format!("line {line_no}: {e:?}"))?;
            report.records.push(record);
        }
        Ok(report)
    }
}

/// Summary returned by a successful [`validate_trajectory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectorySummary {
    /// Rounds recorded.
    pub rounds: usize,
    /// Distinct phases seen.
    pub phases: usize,
    /// Rounds with an adversary evaluation.
    pub probed_rounds: usize,
    /// Total churn events (leaves + joins).
    pub churn_events: usize,
}

/// The schema gate: parses and semantically checks a trajectory.
///
/// # Errors
///
/// Returns a message naming the first violated invariant: rounds must
/// be contiguous from 0, phases monotonic, `delivered + dropped ==
/// cohort`, `delivered ≤ active_clients`, the population must never
/// be empty, and the utility proxy must stay in (0, 1].
pub fn validate_trajectory(text: &str) -> Result<TrajectorySummary, String> {
    let report = TrajectoryReport::from_jsonl_str(text)?;
    if report.records.is_empty() {
        return Err("trajectory has no round records".into());
    }
    let mut phases = 0usize;
    let mut probed = 0usize;
    let mut churn = 0usize;
    let mut last_phase = 0usize;
    for (i, r) in report.records.iter().enumerate() {
        let ctx = |msg: String| format!("round record {i}: {msg}");
        if r.round != i as u64 {
            return Err(ctx(format!(
                "round {} out of order (expected {i})",
                r.round
            )));
        }
        if r.phase < last_phase {
            return Err(ctx(format!(
                "phase went backwards ({} after {last_phase})",
                r.phase
            )));
        }
        if r.phase > last_phase || i == 0 {
            phases += 1;
        }
        last_phase = r.phase;
        if r.delivered + r.dropped != r.cohort {
            return Err(ctx(format!(
                "delivered {} + dropped {} != cohort {}",
                r.delivered, r.dropped, r.cohort
            )));
        }
        if r.cohort > r.active_clients {
            return Err(ctx(format!(
                "cohort {} exceeds active clients {}",
                r.cohort, r.active_clients
            )));
        }
        if r.active_clients == 0 {
            return Err(ctx("population died (0 active clients)".into()));
        }
        if r.delivered > 0 && r.bytes_up == 0 {
            return Err(ctx("delivered updates but no uplink bytes".into()));
        }
        if !(r.accuracy_proxy > 0.0 && r.accuracy_proxy <= 1.0 + 1e-9) {
            return Err(ctx(format!(
                "accuracy proxy {} outside (0, 1]",
                r.accuracy_proxy
            )));
        }
        let probe_fields = [
            r.attack.is_some(),
            r.mean_psnr.is_some(),
            r.leak_rate.is_some(),
        ];
        if probe_fields.iter().any(|&p| p) && !probe_fields.iter().all(|&p| p) {
            return Err(ctx("partial adversary evaluation fields".into()));
        }
        if r.attack.is_some() {
            probed += 1;
        }
        churn += r.churn_left + r.churn_joined;
    }
    Ok(TrajectorySummary {
        rounds: report.records.len(),
        phases,
        probed_rounds: probed,
        churn_events: churn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u64) -> TrajectoryRecord {
        TrajectoryRecord {
            round,
            phase: 0,
            active_clients: 8,
            cohort: 4,
            delivered: 3,
            dropped: 1,
            churn_left: 0,
            churn_joined: 0,
            bytes_up: 4096,
            bytes_down: 8192,
            sim_ms: 1.5,
            mean_loss: 2.0,
            accuracy_proxy: (-2.0f64).exp(),
            attack: Some("qbi:64".into()),
            mean_psnr: Some(9.5),
            leak_rate: Some(0.0),
            timings_ns: Some(vec![("compute".into(), 1000)]),
        }
    }

    fn report() -> TrajectoryReport {
        TrajectoryReport {
            spec: "campaign:2".into(),
            seed: 7,
            defense: "oasis:MR".into(),
            clients: 8,
            records: vec![record(0), record(1)],
        }
    }

    #[test]
    fn jsonl_roundtrips() {
        let r = report();
        let text = r.to_jsonl();
        let back = TrajectoryReport::from_jsonl_str(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn validate_accepts_a_good_trajectory() {
        let summary = validate_trajectory(&report().to_jsonl()).unwrap();
        assert_eq!(summary.rounds, 2);
        assert_eq!(summary.phases, 1);
        assert_eq!(summary.probed_rounds, 2);
    }

    #[test]
    fn validate_rejects_schema_violations() {
        // Non-contiguous rounds.
        let mut r = report();
        r.records[1].round = 5;
        assert!(validate_trajectory(&r.to_jsonl()).is_err());
        // Accounting mismatch.
        let mut r = report();
        r.records[0].dropped = 2;
        assert!(validate_trajectory(&r.to_jsonl()).is_err());
        // Dead population.
        let mut r = report();
        r.records[1].active_clients = 0;
        r.records[1].cohort = 0;
        r.records[1].delivered = 0;
        r.records[1].dropped = 0;
        assert!(validate_trajectory(&r.to_jsonl()).is_err());
        // Partial probe fields.
        let mut r = report();
        r.records[0].leak_rate = None;
        assert!(validate_trajectory(&r.to_jsonl()).is_err());
        // Missing meta line.
        assert!(validate_trajectory("{\"kind\":\"round\"}\n").is_err());
        // Wrong schema version.
        let text = report()
            .to_jsonl()
            .replace("\"schema_version\":1", "\"schema_version\":9");
        assert!(validate_trajectory(&text).is_err());
    }
}
