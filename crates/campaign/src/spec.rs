//! The `campaign:` spec grammar — declarative multi-phase campaigns.
//!
//! A campaign is an ordered list of **phases** separated by `;`,
//! prefixed with the `campaign:` family tag so the string is
//! self-identifying next to attack/defense specs:
//!
//! ```text
//! campaign:20;30+alpha=0.5+attack=qbi:128;50+join=0.2+leave=0.1+net=sim:20,8,0.05
//! ```
//!
//! Each phase starts with its round count; optional `+key=value`
//! fields declare the phase's per-round dynamics:
//!
//! * `join=F` / `leave=F` — per-round churn probabilities over the
//!   client population (departed clients keep their shard and can
//!   rejoin);
//! * `alpha=A` — Dirichlet re-partition at phase entry (label-skew
//!   drift, the [`oasis_fl::partition_dirichlet`] discipline);
//! * `net=SPEC` — network conditions for the phase
//!   ([`NetSpec`] grammar: `ideal` or `sim:LAT,BW,DROP[,DL]`),
//!   sticky until a later phase overrides it;
//! * `attack=S[|S...]` — the adversary program: candidate
//!   [`AttackSpec`]s evaluated each probe round; with several
//!   candidates the adversary adaptively reports its worst case.
//!
//! `Display` and `FromStr` are exact inverses on canonical specs
//! (proptested), so campaigns round-trip through filenames, CLI
//! flags, and trajectory metadata.

use std::fmt;
use std::str::FromStr;

use oasis_scenario::{AttackSpec, ScenarioError};
use oasis_wire::NetSpec;

/// One campaign phase: a round count plus per-round dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// How many rounds the phase runs.
    pub rounds: usize,
    /// Per-round probability that an active client churns out.
    pub leave: Option<f64>,
    /// Per-round probability that a departed client rejoins.
    pub join: Option<f64>,
    /// Dirichlet concentration for a label-skew re-partition applied
    /// at phase entry; `None` keeps the current partition.
    pub alpha: Option<f64>,
    /// Network conditions installed at phase entry; `None` keeps the
    /// previous phase's network.
    pub net: Option<NetSpec>,
    /// Adversary candidates evaluated on probe rounds; empty = the
    /// adversary sits out this phase.
    pub attack: Vec<AttackSpec>,
}

impl PhaseSpec {
    /// A plain training phase: `rounds` rounds, no churn, no drift,
    /// no adversary.
    pub fn rounds(rounds: usize) -> Self {
        PhaseSpec {
            rounds,
            leave: None,
            join: None,
            alpha: None,
            net: None,
            attack: Vec::new(),
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        if self.rounds == 0 {
            return Err(ScenarioError::BadSpec(
                "campaign phase needs at least 1 round".into(),
            ));
        }
        for (field, v) in [("join", self.join), ("leave", self.leave)] {
            if let Some(v) = v {
                if !(0.0..=1.0).contains(&v) {
                    return Err(ScenarioError::BadSpec(format!(
                        "campaign `{field}` must be a probability in [0,1], got `{v}`"
                    )));
                }
            }
        }
        if let Some(a) = self.alpha {
            // NaN must fail too, so compare on the accepting side.
            if a <= 0.0 || a.is_nan() {
                return Err(ScenarioError::BadSpec(format!(
                    "campaign `alpha` must be positive, got `{a}`"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for PhaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.rounds)?;
        if let Some(v) = self.join {
            write!(f, "+join={v}")?;
        }
        if let Some(v) = self.leave {
            write!(f, "+leave={v}")?;
        }
        if let Some(v) = self.alpha {
            write!(f, "+alpha={v}")?;
        }
        if let Some(net) = self.net {
            write!(f, "+net={net}")?;
        }
        if !self.attack.is_empty() {
            let specs: Vec<String> = self.attack.iter().map(|a| a.to_string()).collect();
            write!(f, "+attack={}", specs.join("|"))?;
        }
        Ok(())
    }
}

impl FromStr for PhaseSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut fields = s.split('+');
        let rounds_str = fields.next().unwrap_or("");
        let rounds: usize = rounds_str.trim().parse().map_err(|_| {
            ScenarioError::BadSpec(format!(
                "campaign phase must start with its round count, got `{rounds_str}`"
            ))
        })?;
        let mut phase = PhaseSpec::rounds(rounds);
        for field in fields {
            let (key, value) = field.split_once('=').ok_or_else(|| {
                ScenarioError::BadSpec(format!("campaign phase field `{field}` is not `key=value`"))
            })?;
            let parse_f64 = |v: &str| -> Result<f64, ScenarioError> {
                v.trim().parse().map_err(|_| {
                    ScenarioError::BadSpec(format!("bad campaign `{key}` value `{v}`"))
                })
            };
            match key {
                "join" => phase.join = Some(parse_f64(value)?),
                "leave" => phase.leave = Some(parse_f64(value)?),
                "alpha" => phase.alpha = Some(parse_f64(value)?),
                "net" => {
                    phase.net = Some(value.parse::<NetSpec>().map_err(|e| {
                        ScenarioError::BadSpec(format!("bad campaign `net` value `{value}`: {e}"))
                    })?)
                }
                "attack" => {
                    phase.attack = value
                        .split('|')
                        .map(|spec| spec.parse::<AttackSpec>())
                        .collect::<Result<Vec<_>, _>>()?;
                    if phase.attack.is_empty() {
                        return Err(ScenarioError::BadSpec(
                            "campaign `attack` needs at least one candidate".into(),
                        ));
                    }
                }
                _ => {
                    return Err(ScenarioError::BadSpec(format!(
                        "unknown campaign phase field `{key}` \
                         (known: join, leave, alpha, net, attack)"
                    )))
                }
            }
        }
        phase.validate()?;
        Ok(phase)
    }
}

/// An ordered list of [`PhaseSpec`]s — the whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    phases: Vec<PhaseSpec>,
}

impl CampaignSpec {
    /// Builds a campaign from its phases.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::BadSpec`] when there are no phases or
    /// any phase is invalid.
    pub fn new(phases: Vec<PhaseSpec>) -> Result<Self, ScenarioError> {
        if phases.is_empty() {
            return Err(ScenarioError::BadSpec(
                "campaign needs at least one phase".into(),
            ));
        }
        for phase in &phases {
            phase.validate()?;
        }
        Ok(CampaignSpec { phases })
    }

    /// The phases in order.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Total rounds across all phases.
    pub fn total_rounds(&self) -> usize {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// The phase index and spec active at global `round`, or `None`
    /// past the campaign's end.
    pub fn phase_at(&self, round: u64) -> Option<(usize, &PhaseSpec)> {
        let mut start = 0u64;
        for (i, phase) in self.phases.iter().enumerate() {
            let end = start + phase.rounds as u64;
            if round < end {
                return Some((i, phase));
            }
            start = end;
        }
        None
    }

    /// The global round at which phase `index` starts.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn phase_start(&self, index: usize) -> u64 {
        self.phases[..index].iter().map(|p| p.rounds as u64).sum()
    }
}

impl fmt::Display for CampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phases: Vec<String> = self.phases.iter().map(|p| p.to_string()).collect();
        write!(f, "campaign:{}", phases.join(";"))
    }
}

impl FromStr for CampaignSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix("campaign:").ok_or_else(|| {
            ScenarioError::BadSpec(format!(
                "campaign spec must start with `campaign:`, got `{s}`"
            ))
        })?;
        let phases = body
            .split(';')
            .map(|p| p.parse::<PhaseSpec>())
            .collect::<Result<Vec<_>, _>>()?;
        CampaignSpec::new(phases)
    }
}

impl serde::Serialize for CampaignSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for CampaignSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("campaign spec string", value))?;
        s.parse().map_err(|e| serde::Error::msg(format!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        s.parse::<CampaignSpec>().expect(s).to_string()
    }

    #[test]
    fn minimal_single_phase_roundtrips() {
        assert_eq!(roundtrip("campaign:20"), "campaign:20");
    }

    #[test]
    fn full_grammar_roundtrips() {
        let s = "campaign:20+join=0.2+leave=0.1+alpha=0.5+net=sim:20,8,0.05+attack=rtf:128;\
                 30+attack=rtf:128|qbi:96,4;10";
        assert_eq!(roundtrip(s), s);
    }

    #[test]
    fn attack_args_canonicalize() {
        // `qbi:64,8` elides the default batch target, like bare specs.
        assert_eq!(
            roundtrip("campaign:5+attack=qbi:64,8"),
            "campaign:5+attack=qbi:64"
        );
    }

    #[test]
    fn phase_bookkeeping() {
        let spec: CampaignSpec = "campaign:3;4;5".parse().unwrap();
        assert_eq!(spec.total_rounds(), 12);
        assert_eq!(spec.phase_start(0), 0);
        assert_eq!(spec.phase_start(2), 7);
        assert_eq!(spec.phase_at(0).unwrap().0, 0);
        assert_eq!(spec.phase_at(2).unwrap().0, 0);
        assert_eq!(spec.phase_at(3).unwrap().0, 1);
        assert_eq!(spec.phase_at(11).unwrap().0, 2);
        assert!(spec.phase_at(12).is_none());
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "20",                       // missing family tag
            "campaign:",                // no phases
            "campaign:0",               // zero rounds
            "campaign:5+join=1.5",      // probability out of range
            "campaign:5+alpha=0",       // non-positive alpha
            "campaign:5+warp=1",        // unknown field
            "campaign:5+join",          // not key=value
            "campaign:5+net=warp",      // bad net spec
            "campaign:5+attack=warp:1", // unknown attack family
            "campaign:5;x",             // bad round count
        ] {
            assert!(bad.parse::<CampaignSpec>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn serde_roundtrips_via_spec_string() {
        use serde::{Deserialize, Serialize};
        let spec: CampaignSpec = "campaign:5+alpha=0.3;7+attack=qbi:64".parse().unwrap();
        let back = CampaignSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(spec, back);
    }
}
