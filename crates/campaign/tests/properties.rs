//! Property tests for the `campaign:` grammar: `Display` ⇄ `FromStr`
//! are exact inverses on canonical specs, and phase bookkeeping is
//! consistent for arbitrary phase lists.

use oasis_campaign::{CampaignSpec, PhaseSpec};
use proptest::prelude::*;

fn opt<S>(s: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), s.prop_map(Some).boxed()].boxed()
}

fn arb_attack() -> impl Strategy<Value = String> {
    prop_oneof![
        (1usize..200).prop_map(|n| format!("rtf:{n}")),
        (1usize..200).prop_map(|n| format!("cah:{n}")),
        (1usize..200, 2usize..16).prop_map(|(n, b)| format!("qbi:{n},{b}")),
        Just("linear".to_string()),
    ]
}

fn arb_phase() -> impl Strategy<Value = String> {
    (
        (1usize..500, opt(0u32..=100), opt(0u32..=100)),
        (
            opt(1u32..400),
            opt(prop_oneof![
                Just("ideal".to_string()),
                (1u32..100, 1u32..64, 0u32..50)
                    .prop_map(|(lat, bw, drop)| format!("sim:{lat},{bw},{}", drop as f64 / 100.0)),
            ]),
            proptest::collection::vec(arb_attack(), 0..3),
        ),
    )
        .prop_map(|((rounds, join, leave), (alpha, net, attacks))| {
            let mut s = rounds.to_string();
            if let Some(j) = join {
                s.push_str(&format!("+join={}", j as f64 / 100.0));
            }
            if let Some(l) = leave {
                s.push_str(&format!("+leave={}", l as f64 / 100.0));
            }
            if let Some(a) = alpha {
                s.push_str(&format!("+alpha={}", a as f64 / 100.0));
            }
            if let Some(n) = net {
                s.push_str(&format!("+net={n}"));
            }
            if !attacks.is_empty() {
                s.push_str(&format!("+attack={}", attacks.join("|")));
            }
            s
        })
}

fn arb_campaign() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_phase(), 1..5)
        .prop_map(|phases| format!("campaign:{}", phases.join(";")))
}

proptest! {
    /// parse → display → parse is a fixpoint: the displayed form
    /// parses back to the identical spec, and displaying again
    /// changes nothing (canonicalization converges in one step).
    #[test]
    fn display_fromstr_roundtrip(s in arb_campaign()) {
        let spec: CampaignSpec = s.parse().expect("generated specs parse");
        let shown = spec.to_string();
        let back: CampaignSpec = shown.parse().expect("displayed specs parse");
        prop_assert_eq!(&spec, &back);
        prop_assert_eq!(shown, back.to_string());
    }

    /// Every round maps to exactly one phase, phase starts partition
    /// the round range, and `total_rounds` is their sum.
    #[test]
    fn phase_bookkeeping_is_consistent(s in arb_campaign()) {
        let spec: CampaignSpec = s.parse().expect("generated specs parse");
        let total = spec.total_rounds() as u64;
        prop_assert!(spec.phase_at(total).is_none());
        for (i, phase) in spec.phases().iter().enumerate() {
            let start = spec.phase_start(i);
            let (pi, at) = spec.phase_at(start).expect("start is in range");
            prop_assert_eq!(pi, i);
            prop_assert_eq!(at, phase);
            let (pi, _) = spec
                .phase_at(start + phase.rounds as u64 - 1)
                .expect("last round is in range");
            prop_assert_eq!(pi, i);
        }
    }

    /// Structured construction displays to a string that parses back
    /// to the same value (the programmatic API round-trips too).
    #[test]
    fn constructed_specs_roundtrip(rounds in proptest::collection::vec(1usize..100, 1..4)) {
        let phases: Vec<PhaseSpec> = rounds.into_iter().map(PhaseSpec::rounds).collect();
        let spec = CampaignSpec::new(phases).expect("plain phases are valid");
        let back: CampaignSpec = spec.to_string().parse().expect("displayed specs parse");
        prop_assert_eq!(spec, back);
    }
}
