//! Boxplot-style summary statistics for figure output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Five-number summary plus mean/std — one boxplot of the paper's
/// Figures 5, 6 and 13 (the green triangle is `mean`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// Computes the summary of `values`. Returns an all-zero summary
    /// for empty input.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
                std: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / sorted.len() as f64;
        Summary {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean,
            std: var.sqrt(),
        }
    }
}

/// Linear-interpolated quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:<4} min={:>7.2} q1={:>7.2} med={:>7.2} q3={:>7.2} max={:>7.2} mean={:>7.2}±{:.2}",
            self.count, self.min, self.q1, self.median, self.q3, self.max, self.mean, self.std
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary_of_known_data() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let s = Summary::from_values(&[0.0, 1.0, 2.0, 3.0]);
        assert!((s.q1 - 0.75).abs() < 1e-12);
        assert!((s.median - 1.5).abs() < 1e-12);
        assert!((s.q3 - 2.25).abs() < 1e-12);
    }

    #[test]
    fn single_value_collapses() {
        let s = Summary::from_values(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn empty_input_is_zeroed() {
        let s = Summary::from_values(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn std_of_constant_is_zero() {
        let s = Summary::from_values(&[4.0; 10]);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = Summary::from_values(&[1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("min="));
        assert!(text.contains("mean="));
    }
}
