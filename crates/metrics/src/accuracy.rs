//! Classification accuracy.

use oasis_tensor::Tensor;

/// Top-1 accuracy of `logits` (`[batch, classes]`) against `labels`.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or the label count differs from
/// the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = logits
        .argmax_rows()
        .expect("logits must be [batch, classes]");
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0], &[2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0], &[2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    fn mixed_scores_fraction() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]), 0.5);
    }

    #[test]
    fn empty_batch_scores_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }
}
