//! Peak signal-to-noise ratio.

use oasis_image::Image;

/// The PSNR value reported for (numerically) identical images.
///
/// True zero-MSE reconstructions would be +∞ dB; the paper's "perfect"
/// reconstructions land around 130–150 dB because of float round-off.
/// We cap at 160 dB, safely above anything float32 noise produces.
pub const PSNR_CAP: f64 = 160.0;

/// Mean-squared-error floor below which PSNR saturates at
/// [`PSNR_CAP`].
const MSE_FLOOR: f64 = 1e-16;

/// PSNR between two same-length signals with peak value 1.0, in dB.
///
/// The MSE reduction runs on the runtime-dispatched
/// [`oasis_tensor::simd`] squared-error kernel, whose eight-lane f64
/// accumulation (fixed combine order) is bit-identical across SIMD
/// backends and deterministic for a given input.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn psnr_data(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "psnr requires equal lengths");
    assert!(!a.is_empty(), "psnr of empty signals");
    let mse = oasis_tensor::simd::sq_err_sum(a, b) / a.len() as f64;
    if mse < MSE_FLOOR {
        return PSNR_CAP;
    }
    (10.0 * (1.0 / mse).log10()).min(PSNR_CAP)
}

/// PSNR between two images of identical dimensions, in dB. Higher
/// means the reconstruction is closer to the original (paper §IV-A).
///
/// # Panics
///
/// Panics if image dimensions differ.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.dims(), b.dims(), "psnr requires identical dimensions");
    psnr_data(a.data(), b.data())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_hit_cap() {
        let mut a = Image::new(1, 4, 4);
        a.fill(0.3);
        assert_eq!(psnr(&a, &a.clone()), PSNR_CAP);
    }

    #[test]
    fn known_mse_maps_to_expected_db() {
        // MSE = 0.01 → PSNR = 10·log10(1/0.01) = 20 dB.
        let a = vec![0.0f32; 100];
        let b = vec![0.1f32; 100];
        let p = psnr_data(&a, &b);
        assert!((p - 20.0).abs() < 1e-5, "psnr {p}");
    }

    #[test]
    fn more_noise_means_lower_psnr() {
        let base = vec![0.5f32; 64];
        let small: Vec<f32> = base.iter().map(|v| v + 0.01).collect();
        let large: Vec<f32> = base.iter().map(|v| v + 0.2).collect();
        assert!(psnr_data(&base, &small) > psnr_data(&base, &large));
    }

    #[test]
    fn symmetric() {
        let a = vec![0.1f32, 0.5, 0.9];
        let b = vec![0.2f32, 0.4, 0.8];
        assert_eq!(psnr_data(&a, &b), psnr_data(&b, &a));
    }

    #[test]
    fn float32_round_off_lands_in_perfect_band() {
        // A reconstruction that differs only by f32 noise (≈1e-7
        // relative) must land in the paper's 120–160 dB "perfect" band.
        let a: Vec<f32> = (0..1000).map(|i| (i as f32) / 1000.0).collect();
        let b: Vec<f32> = a.iter().map(|&v| v * (1.0 + 1e-7) + 1e-8).collect();
        let p = psnr_data(&a, &b);
        assert!(p > 120.0, "psnr {p}");
    }

    #[test]
    fn psnr_is_bit_identical_across_simd_backends() {
        // The MSE reduction dispatches to the SIMD backend; golden
        // fixtures pin PSNR f64s bit-exactly, so the score must not
        // depend on which backend scored it.
        use oasis_tensor::simd::{self, Backend};
        for n in [1usize, 7, 8, 9, 31, 32, 33, 1000] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
            let scalar = simd::with_backend(Backend::Scalar, || psnr_data(&a, &b));
            let best = simd::with_backend(Backend::detect(), || psnr_data(&a, &b));
            assert_eq!(scalar.to_bits(), best.to_bits(), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn rejects_mismatched_lengths() {
        psnr_data(&[0.0], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn rejects_mismatched_images() {
        let a = Image::new(1, 2, 2);
        let b = Image::new(1, 2, 3);
        psnr(&a, &b);
    }
}
