//! # oasis-metrics
//!
//! Measurement utilities for the OASIS evaluation: PSNR (the paper's
//! reconstruction-quality metric), reconstruction↔original matching,
//! classification accuracy and boxplot-style summary statistics.
//!
//! ```
//! use oasis_image::Image;
//! use oasis_metrics::psnr;
//!
//! let mut a = Image::new(3, 8, 8);
//! a.fill(0.5);
//! let b = a.clone();
//! assert_eq!(psnr(&a, &b), oasis_metrics::PSNR_CAP); // identical images
//! ```

#![warn(missing_docs)]

mod accuracy;
mod matching;
mod psnr;
mod stats;

pub use accuracy::accuracy;
pub use matching::{
    best_psnr_per_original, match_greedy, match_greedy_coarse, ReconstructionMatch,
};
pub use psnr::{psnr, psnr_data, PSNR_CAP};
pub use stats::Summary;
