//! Matching reconstructions to original training samples.
//!
//! The attacks emit a pool of candidate reconstructions (one per bin
//! or per trap neuron). To score an attack the way the paper and the
//! `breaching` framework do, each reconstruction is assigned to an
//! original image one-to-one by descending PSNR, and the matched
//! PSNRs are what the figures report.

use oasis_image::Image;
use serde::{Deserialize, Serialize};

use crate::psnr;

/// One reconstruction↔original assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconstructionMatch {
    /// Index into the reconstruction pool.
    pub recon_idx: usize,
    /// Index into the original batch `D`.
    pub original_idx: usize,
    /// PSNR of the pair, in dB.
    pub psnr: f64,
}

/// Greedy one-to-one matching by descending PSNR.
///
/// Returns `min(recons.len(), originals.len())` matches; both sides
/// are used at most once. Greedy matching on a descending-sorted pair
/// list is the standard evaluation choice (optimal assignment changes
/// numbers negligibly and costs O(n³)).
pub fn match_greedy(recons: &[Image], originals: &[Image]) -> Vec<ReconstructionMatch> {
    let mut pairs = Vec::with_capacity(recons.len() * originals.len());
    for (ri, r) in recons.iter().enumerate() {
        for (oi, o) in originals.iter().enumerate() {
            pairs.push(ReconstructionMatch {
                recon_idx: ri,
                original_idx: oi,
                psnr: psnr(r, o),
            });
        }
    }
    pairs.sort_by(|a, b| b.psnr.total_cmp(&a.psnr));
    let mut recon_used = vec![false; recons.len()];
    let mut orig_used = vec![false; originals.len()];
    let mut out = Vec::new();
    for p in pairs {
        if !recon_used[p.recon_idx] && !orig_used[p.original_idx] {
            recon_used[p.recon_idx] = true;
            orig_used[p.original_idx] = true;
            out.push(p);
            if out.len() == recons.len().min(originals.len()) {
                break;
            }
        }
    }
    out
}

/// Two-stage greedy matching for large pools: pairs are *selected* on
/// box-downsampled copies (cheap), then the returned PSNR of each
/// selected pair is recomputed at full resolution.
///
/// With `coarse_side >=` the image side this is identical to
/// [`match_greedy`].
pub fn match_greedy_coarse(
    recons: &[Image],
    originals: &[Image],
    coarse_side: usize,
) -> Vec<ReconstructionMatch> {
    let shrink = |imgs: &[Image]| -> Vec<Image> {
        imgs.iter()
            .map(|i| i.downsample(coarse_side, coarse_side))
            .collect()
    };
    let small_r = shrink(recons);
    let small_o = shrink(originals);
    let coarse = match_greedy(&small_r, &small_o);
    coarse
        .into_iter()
        .map(|m| ReconstructionMatch {
            psnr: psnr(&recons[m.recon_idx], &originals[m.original_idx]),
            ..m
        })
        .collect()
}

/// For every original, the best PSNR any reconstruction achieves
/// against it — the per-sample "leakage" view used by the
/// Proposition 1 ablation. Empty reconstruction pools yield 0 dB.
pub fn best_psnr_per_original(recons: &[Image], originals: &[Image]) -> Vec<f64> {
    originals
        .iter()
        .map(|o| recons.iter().map(|r| psnr(r, o)).fold(0.0f64, f64::max))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(v: f32) -> Image {
        let mut i = Image::new(1, 2, 2);
        i.fill(v);
        i
    }

    #[test]
    fn exact_matches_pair_up() {
        let originals = vec![img(0.1), img(0.5), img(0.9)];
        let recons = vec![img(0.9), img(0.1)];
        let matches = match_greedy(&recons, &originals);
        assert_eq!(matches.len(), 2);
        for m in &matches {
            assert_eq!(m.psnr, crate::PSNR_CAP);
        }
        let pairs: Vec<(usize, usize)> = matches
            .iter()
            .map(|m| (m.recon_idx, m.original_idx))
            .collect();
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(1, 0)));
    }

    #[test]
    fn one_to_one_constraint_holds() {
        let originals = vec![img(0.5), img(0.5)];
        let recons = vec![img(0.5), img(0.5), img(0.5)];
        let matches = match_greedy(&recons, &originals);
        assert_eq!(matches.len(), 2);
        let mut orig: Vec<usize> = matches.iter().map(|m| m.original_idx).collect();
        orig.sort_unstable();
        orig.dedup();
        assert_eq!(orig.len(), 2);
    }

    #[test]
    fn empty_pools_give_empty_matches() {
        assert!(match_greedy(&[], &[img(0.5)]).is_empty());
        assert!(match_greedy(&[img(0.5)], &[]).is_empty());
    }

    #[test]
    fn best_psnr_per_original_finds_leaks() {
        let originals = vec![img(0.2), img(0.8)];
        let recons = vec![img(0.8)];
        let best = best_psnr_per_original(&recons, &originals);
        assert!(best[1] > best[0]);
        assert_eq!(best[1], crate::PSNR_CAP);
    }

    #[test]
    fn best_psnr_with_no_recons_is_zero() {
        let originals = vec![img(0.2)];
        assert_eq!(best_psnr_per_original(&[], &originals), vec![0.0]);
    }

    #[test]
    fn coarse_matching_agrees_with_exact_on_distinct_images() {
        let originals = vec![img(0.1), img(0.5), img(0.9)];
        let recons = vec![img(0.5), img(0.9)];
        let exact = match_greedy(&recons, &originals);
        let coarse = match_greedy_coarse(&recons, &originals, 2);
        let key = |ms: &[ReconstructionMatch]| {
            let mut v: Vec<(usize, usize)> =
                ms.iter().map(|m| (m.recon_idx, m.original_idx)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&exact), key(&coarse));
    }
}
