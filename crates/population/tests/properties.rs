//! Property tests for the population crate: spec round-trips in the
//! style of the scenario spec proptests, scheduler determinism, and
//! the streaming-fold weight identity.

use oasis_population::{CohortScheduler, PopulationSpec, SampleSpec, StreamingAggregator};
use oasis_wire::CodecSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// `population:N` round-trips `FromStr` ⇄ `Display`.
    #[test]
    fn population_specs_round_trip(clients in 1usize..2_000_000) {
        let spec = PopulationSpec { clients };
        let printed = spec.to_string();
        let parsed: PopulationSpec = printed.parse().expect("printed spec parses");
        prop_assert_eq!(parsed, spec, "`{}` did not round-trip", printed);
        prop_assert!(!printed.contains(char::is_whitespace));
    }

    /// `sample:K` round-trips `FromStr` ⇄ `Display`.
    #[test]
    fn sample_specs_round_trip(cohort in 1usize..100_000) {
        let spec = SampleSpec { cohort };
        let printed = spec.to_string();
        let parsed: SampleSpec = printed.parse().expect("printed spec parses");
        prop_assert_eq!(parsed, spec, "`{}` did not round-trip", printed);
        prop_assert!(!printed.contains(char::is_whitespace));
    }

    /// Bare counts parse to the same value as the prefixed form — the
    /// contract CLI comma-list sweeps rely on.
    #[test]
    fn bare_counts_parse_like_prefixed(n in 1usize..1_000_000) {
        let bare: PopulationSpec = n.to_string().parse().expect("bare count parses");
        let prefixed: PopulationSpec = format!("population:{n}").parse().unwrap();
        prop_assert_eq!(bare, prefixed);
        let bare_k: SampleSpec = n.to_string().parse().expect("bare count parses");
        let prefixed_k: SampleSpec = format!("sample:{n}").parse().unwrap();
        prop_assert_eq!(bare_k, prefixed_k);
    }

    /// One scheduler replayed with equal rng streams replays equal
    /// cohorts (the identity-reset invariant), and every cohort is a
    /// duplicate-free subset of the population.
    #[test]
    fn cohorts_are_deterministic_duplicate_free_subsets(
        population in 1usize..500,
        cohort in 1usize..500,
        seed in 0u64..1_000_000,
        rounds in 1usize..4,
    ) {
        let mut sched = CohortScheduler::new(population);
        let mut replay = CohortScheduler::new(population);
        for round in 0..rounds as u64 {
            let m = sched.cohort_size(cohort);
            let (ids, s1) = sched.sample(m, &mut CohortScheduler::round_rng(seed, round));
            let ids: Vec<u32> = ids.to_vec();
            let (ids2, s2) = replay.sample(m, &mut CohortScheduler::round_rng(seed, round));
            prop_assert_eq!(&ids, &ids2.to_vec());
            prop_assert_eq!(s1, s2);
            prop_assert_eq!(ids.len(), cohort.min(population));
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ids.len(), "cohort has duplicates");
            prop_assert!(ids.iter().all(|&i| (i as usize) < population));
        }
    }

    /// Streaming folds equal the direct weighted sum for lossless
    /// codecs, element for element.
    #[test]
    fn streaming_fold_is_the_weighted_sum(
        updates in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 6..7),
            1..6,
        ),
        weights in proptest::collection::vec(0.01f32..1.0, 6),
    ) {
        let codec = CodecSpec::Raw.build();
        let n = updates[0].len();
        let mut agg = StreamingAggregator::new(n);
        let mut direct = vec![0.0f32; n];
        for (u, &w) in updates.iter().zip(&weights) {
            agg.fold(&*codec, &codec.encode(u).unwrap(), w).unwrap();
            for (d, &g) in direct.iter_mut().zip(u) {
                *d += w * g;
            }
        }
        prop_assert_eq!(agg.as_slice(), &direct[..]);
        prop_assert_eq!(agg.folded(), updates.len());
        // Raw frames fold as borrowed views: the aggregator's
        // footprint is exactly the accumulator, never a decode copy.
        prop_assert_eq!(agg.peak_bytes(), 4 * n);
    }
}

/// The keyed round stream is thread-count independent by
/// construction (it never touches the pool); pin that it is also
/// stable across scheduler instances.
#[test]
fn round_rng_is_instance_free() {
    use rand::Rng;
    let mut a = CohortScheduler::round_rng(7, 3);
    let mut b = CohortScheduler::round_rng(7, 3);
    let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
    let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
    assert_eq!(xs, ys);
}

/// Sampling the whole population is a permutation — the legacy
/// "everyone participates" mode.
#[test]
fn full_cohort_is_a_permutation() {
    let mut sched = CohortScheduler::new(100);
    let (ids, _) = sched.sample(100, &mut StdRng::seed_from_u64(4));
    let mut sorted: Vec<u32> = ids.to_vec();
    sorted.sort_unstable();
    let identity: Vec<u32> = (0..100).collect();
    assert_eq!(sorted, identity);
}
