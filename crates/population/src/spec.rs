//! Spec-string forms of the population dimensions.
//!
//! The scenario grammar is built from `FromStr ⇄ Display`
//! round-tripping spec types; these two carry the population axes:
//!
//! * `population:N` — how many clients exist.
//! * `sample:K` — how many are drawn into each round's cohort.
//!
//! Both also parse from a bare number (`"100000"`), which is what CLI
//! comma-list sweeps pass through.

use std::fmt;
use std::str::FromStr;

use oasis_fl::FlError;

fn parse_count(s: &str, prefix: &str, what: &str) -> Result<usize, FlError> {
    let body = match s.split_once(':') {
        Some((head, body)) if head == prefix => body,
        Some((head, _)) => {
            return Err(FlError::BadConfig(format!(
                "unknown {what} spec `{head}:` (expected `{prefix}:N` or a bare count)"
            )))
        }
        None => s,
    };
    let n: usize = body
        .parse()
        .map_err(|_| FlError::BadConfig(format!("bad {what} count `{body}` in `{s}`")))?;
    if n == 0 {
        return Err(FlError::BadConfig(format!("{what} must be at least 1")));
    }
    Ok(n)
}

/// The `population:N` spec dimension: the deployment size a
/// scenario's cohorts are sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationSpec {
    /// Number of clients in the population (≥ 1).
    pub clients: usize,
}

impl fmt::Display for PopulationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "population:{}", self.clients)
    }
}

impl FromStr for PopulationSpec {
    type Err = FlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(PopulationSpec {
            clients: parse_count(s, "population", "population")?,
        })
    }
}

/// The `sample:K` spec dimension: per-round cohort size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Clients sampled into each round's cohort (≥ 1).
    pub cohort: usize,
}

impl fmt::Display for SampleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sample:{}", self.cohort)
    }
}

impl FromStr for SampleSpec {
    type Err = FlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(SampleSpec {
            cohort: parse_count(s, "sample", "sample")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixed_and_bare_forms_parse() {
        assert_eq!(
            "population:100000".parse::<PopulationSpec>().unwrap(),
            PopulationSpec { clients: 100_000 }
        );
        assert_eq!(
            "4096".parse::<PopulationSpec>().unwrap(),
            PopulationSpec { clients: 4096 }
        );
        assert_eq!(
            "sample:64".parse::<SampleSpec>().unwrap(),
            SampleSpec { cohort: 64 }
        );
        assert_eq!(
            "64".parse::<SampleSpec>().unwrap(),
            SampleSpec { cohort: 64 }
        );
    }

    #[test]
    fn display_round_trips() {
        let p = PopulationSpec { clients: 12345 };
        assert_eq!(p.to_string().parse::<PopulationSpec>().unwrap(), p);
        let k = SampleSpec { cohort: 64 };
        assert_eq!(k.to_string().parse::<SampleSpec>().unwrap(), k);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!("population:".parse::<PopulationSpec>().is_err());
        assert!("population:0".parse::<PopulationSpec>().is_err());
        assert!("cohort:5".parse::<SampleSpec>().is_err());
        assert!("sample:-3".parse::<SampleSpec>().is_err());
        assert!("".parse::<PopulationSpec>().is_err());
    }
}
