//! Seeded deterministic cohort sampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Samples the K participants of each round from a population of N,
/// reproducing the legacy server's selection exactly.
///
/// The legacy [`FlServer::run_round`](oasis_fl::FlServer::run_round)
/// shuffles a freshly collected client slice and takes a prefix; the
/// vendored Fisher–Yates consumes rng draws that depend only on the
/// slice **length**, so shuffling an identity index buffer of the
/// same length consumes the identical draw sequence and yields the
/// identical permutation — that is what makes the population path
/// bit-exact with the resident path at matched scale.
///
/// The index buffer is owned and reused across rounds (`O(N)` once,
/// not per round) and reset to identity before every shuffle: a
/// shuffle of an already-shuffled buffer would compose permutations
/// and diverge from the legacy draw-for-draw equivalence.
#[derive(Debug)]
pub struct CohortScheduler {
    population: usize,
    indices: Vec<u32>,
}

impl CohortScheduler {
    /// A scheduler over `population` clients.
    pub fn new(population: usize) -> Self {
        CohortScheduler {
            population,
            indices: Vec::new(),
        }
    }

    /// The population size this scheduler samples from.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Resolves a configured cohort size against the population:
    /// `0` means everyone, anything else is capped at the population
    /// — the exact rule [`oasis_fl::FlConfig::clients_per_round`]
    /// uses.
    pub fn cohort_size(&self, clients_per_round: usize) -> usize {
        if clients_per_round == 0 {
            self.population
        } else {
            clients_per_round.min(self.population)
        }
    }

    /// Draws one round's cohort: shuffles the identity index buffer
    /// with `rng`, then draws the round seed — the same rng discipline
    /// (shuffle first, seed second) as the legacy server. Returns the
    /// selected ids in selection order plus the `round_seed` that
    /// keys every client's local rng and the wire transport.
    pub fn sample(&mut self, cohort: usize, rng: &mut StdRng) -> (&[u32], u64) {
        self.indices.clear();
        self.indices.extend(0..self.population as u32);
        self.indices.shuffle(rng);
        let round_seed: u64 = rng.gen();
        let m = cohort.min(self.population);
        (&self.indices[..m], round_seed)
    }

    /// The per-round rng stream for `(seed, round)` — splittable
    /// determinism for multi-round runs: round `r` of a run is
    /// reproducible without replaying rounds `0..r`, at any thread
    /// count.
    pub fn round_rng(seed: u64, round: u64) -> StdRng {
        StdRng::seed_from_u64(seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_matches_legacy_slice_shuffle() {
        // Shuffling any same-length slice consumes identical draws:
        // emulate the legacy path on a Vec of values and compare.
        let n = 37usize;
        let mut legacy: Vec<usize> = (0..n).collect();
        let mut rng_a = StdRng::seed_from_u64(77);
        legacy.shuffle(&mut rng_a);
        let legacy_seed: u64 = rng_a.gen();

        let mut sched = CohortScheduler::new(n);
        let mut rng_b = StdRng::seed_from_u64(77);
        let (ids, seed) = sched.sample(n, &mut rng_b);
        assert_eq!(seed, legacy_seed);
        let got: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        assert_eq!(got, legacy);
    }

    #[test]
    fn buffer_resets_to_identity_between_rounds() {
        let mut sched = CohortScheduler::new(16);
        let mut rng1 = StdRng::seed_from_u64(5);
        let first: Vec<u32> = sched.sample(8, &mut rng1).0.to_vec();
        let mut rng2 = StdRng::seed_from_u64(9);
        sched.sample(8, &mut rng2);
        // Replaying the first rng must replay the first cohort — it
        // would not if the buffer kept the previous permutation.
        let mut rng1_again = StdRng::seed_from_u64(5);
        assert_eq!(sched.sample(8, &mut rng1_again).0, &first[..]);
    }

    #[test]
    fn cohort_size_follows_clients_per_round_rule() {
        let sched = CohortScheduler::new(100);
        assert_eq!(sched.cohort_size(0), 100);
        assert_eq!(sched.cohort_size(64), 64);
        assert_eq!(sched.cohort_size(1000), 100);
    }

    #[test]
    fn round_rng_streams_differ_by_round() {
        let mut a = CohortScheduler::round_rng(42, 0);
        let mut b = CohortScheduler::round_rng(42, 1);
        let mut a2 = CohortScheduler::round_rng(42, 0);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        let xs2: Vec<u64> = (0..4).map(|_| a2.gen()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }
}
