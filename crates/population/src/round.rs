//! The population-scale round driver.

use oasis_fl::{FlError, FlServer, Result, RoundReport};
use oasis_tensor::parallel;
use oasis_wire::{DeliveryStatus, EncodedUpdate, Submission};
use rand::rngs::StdRng;

use crate::{CohortScheduler, Population, StreamingAggregator};

/// A [`RoundReport`] plus the population-scale facts the legacy
/// report has no room for.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// The protocol-level outcome, field-compatible with the legacy
    /// server's report (same selection, same wire, same weights).
    pub round_report: RoundReport,
    /// Population size the cohort was sampled from.
    pub population: usize,
    /// How many clients were actually hydrated and computed an
    /// update. Dropped cohort members are never materialized — their
    /// delivery fate is known from the wire plan before any compute —
    /// so this equals `round_report.participants`, not the cohort.
    pub computed: usize,
    /// Peak accumulator + decode-scratch bytes held by the streaming
    /// fold, independent of population and cohort: `4·n` for an
    /// `n`-parameter model on the raw zero-copy wire (frames fold as
    /// borrowed views), `2 × 4·n` when a lossy codec needs a decode
    /// slot.
    pub peak_accum_bytes: usize,
    /// Peak encoded-frame bytes alive at once: one wire frame per
    /// concurrent compute slot, `O(threads · frame)`, never
    /// `O(cohort · frame)`.
    pub peak_frame_bytes: usize,
}

/// Drives an [`FlServer`] through rounds sampled from a
/// [`Population`], replacing the resident-client round loop with
/// descriptor sampling → delivery planning → lazy hydration →
/// streaming aggregation.
///
/// At matched scale (population == resident client count, same seed,
/// same wire) [`CohortRunner::run_round`] reproduces
/// [`FlServer::run_round`] bit-exactly: identical selection shuffle,
/// round seed, per-client rng streams, delivery fates, FedAvg
/// weights, fold order, and SGD step. What changes is the resource
/// shape: memory is `O(model + cohort_scratch)` and dropped clients
/// cost nothing, so population can grow to 10⁵–10⁶ while the server
/// footprint stays flat.
pub struct CohortRunner {
    server: FlServer,
    population: Population,
    scheduler: CohortScheduler,
}

impl CohortRunner {
    /// Couples a server to a population. Cohort size comes from the
    /// server's [`oasis_fl::FlConfig::clients_per_round`]: `0` means
    /// the whole population, exactly as on the legacy path.
    pub fn new(server: FlServer, population: Population) -> Self {
        let scheduler = CohortScheduler::new(population.len());
        CohortRunner {
            server,
            population,
            scheduler,
        }
    }

    /// The server being driven.
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// Mutable access to the server (evaluation, wire swaps).
    pub fn server_mut(&mut self) -> &mut FlServer {
        &mut self.server
    }

    /// The population rounds sample from.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Mutable access to the population (defense re-parameterization
    /// between rounds).
    pub fn population_mut(&mut self) -> &mut Population {
        &mut self.population
    }

    /// Replaces the population mid-run — how campaigns express churn
    /// (an active-subset swap) and non-IID drift (a re-partition).
    /// The scheduler is rebuilt only when the client count changes,
    /// so a same-size swap leaves the sampling stream untouched.
    pub fn set_population(&mut self, population: Population) {
        if population.len() != self.scheduler.population() {
            self.scheduler = CohortScheduler::new(population.len());
        }
        self.population = population;
    }

    /// Releases the server (e.g. to checkpoint the trained model).
    pub fn into_server(self) -> FlServer {
        self.server
    }

    /// Runs one population round off an explicit rng — the bridge
    /// form: driving this with the same sequential
    /// `StdRng::seed_from_u64(seed)` the legacy
    /// [`FlServer::run`] uses reproduces its rounds bit-exactly at
    /// matched scale.
    ///
    /// The round proceeds: sample cohort → broadcast → **delivery
    /// plan** (every codec's wire size is value-independent, so each
    /// cohort member's fate is decided before any gradient exists) →
    /// meta pre-pass summing the delivered clients' sample counts →
    /// wave-parallel hydrate/compute/encode of **delivered clients
    /// only** → serial streaming fold in delivery order → server SGD
    /// step.
    ///
    /// A round where nothing is delivered is a no-op, not an error —
    /// and unlike the legacy path it skips client compute entirely.
    ///
    /// # Errors
    ///
    /// [`FlError::NoClients`] on an empty population, client model
    /// errors, wire codec failures, or a delivered set whose sample
    /// counts sum to zero.
    pub fn run_round(&mut self, rng: &mut StdRng) -> Result<CohortReport> {
        if self.population.is_empty() {
            return Err(FlError::NoClients);
        }
        let round_span = oasis_telemetry::span("fl.round");
        let mut timings = oasis_telemetry::enabled().then(oasis_fl::RoundTimings::default);
        let m = self
            .scheduler
            .cohort_size(self.server.config().clients_per_round);
        // Same rng discipline as the legacy server: selection shuffle
        // first, round seed second.
        let select_span = oasis_telemetry::span("fl.round.select");
        let (cohort, round_seed) = self.scheduler.sample(m, rng);
        let cohort: Vec<u32> = cohort.to_vec();
        let select_ns = select_span.finish_ns();

        let broadcast_span = oasis_telemetry::span("fl.round.broadcast");
        let global = self.server.broadcast_weights();
        let n = global.len();
        let bytes_down_each = n * 4;
        let codec = self.server.wire().codec().build();
        let bytes_up_each = codec.encoded_len(n);
        let net = self.server.wire().net;
        let round = self.server.round();
        let broadcast_ns = broadcast_span.finish_ns();

        // Delivery plan: per-submission fates are pure in
        // (seed, round, client, bytes), and bytes are value-
        // independent, so the whole wire outcome is known before a
        // single gradient is computed. Dropped clients cost nothing.
        let deliver_span = oasis_telemetry::span("fl.round.deliver");
        let mut bytes_up = 0u64;
        let mut bytes_down = 0u64;
        let mut round_ms = 0.0f64;
        let mut any_missing = false;
        let mut delivered_ids: Vec<u32> = Vec::new();
        for &id in &cohort {
            let sub = Submission {
                client_id: id as usize,
                bytes_up: bytes_up_each,
                bytes_down: bytes_down_each,
            };
            bytes_up += sub.bytes_up as u64;
            bytes_down += sub.bytes_down as u64;
            let fate = net.delivery(round_seed, round as u64, &sub);
            match fate.status {
                DeliveryStatus::Delivered => {
                    round_ms = round_ms.max(fate.arrival_ms);
                    delivered_ids.push(id);
                }
                DeliveryStatus::Straggler | DeliveryStatus::Dropped => any_missing = true,
            }
        }
        if any_missing {
            round_ms = round_ms.max(net.straggler_wait_ms());
        }
        let dropped = cohort.len() - delivered_ids.len();
        let deliver_ns = deliver_span.finish_ns();

        let batch = self.server.config().local_batch_size;
        let mut agg = StreamingAggregator::new(n);
        let mut peak_frame_bytes = 0usize;
        let mut hydrate_ns = 0u64;
        let mut compute_ns = 0u64;
        let mut fold_ns = 0u64;
        let mut step_ns = 0u64;
        let (mean_loss, update_norm) = if delivered_ids.is_empty() {
            (0.0, 0.0)
        } else {
            // Meta pre-pass: FedAvg weights need the delivered total
            // before the first fold. `round_samples` replays only the
            // rng-consuming batch prefix — no model, no gradients.
            let population = &self.population;
            let hydrate_span = oasis_telemetry::span("fl.round.hydrate");
            let samples: Vec<usize> = parallel::map_indexed(&delivered_ids, |_, &id| {
                population
                    .hydrate(population.descriptor(id as usize))
                    .round_samples(batch, round_seed)
            });
            hydrate_ns = hydrate_span.finish_ns();
            let total: usize = samples.iter().sum();
            if total == 0 {
                return Err(FlError::BadConfig(
                    "weighted FedAvg over zero samples".into(),
                ));
            }
            // Waves of lazy clients: hydrate → compute → encode, then
            // drop client and gradients; only the wire frame survives
            // into the serial fold, which runs in delivery order so
            // the FP sequence matches the legacy server bit-exactly
            // at any thread count.
            let wave_width = parallel::effective_parallelism()
                .min(delivered_ids.len())
                .max(1);
            peak_frame_bytes = wave_width * bytes_up_each;
            let factory = self.server.factory().clone();
            let mut loss_sum = 0.0f32;
            for wave in delivered_ids.chunks(wave_width) {
                let compute_span = oasis_telemetry::span("fl.round.compute");
                let frames: Vec<Result<(f32, usize, EncodedUpdate)>> =
                    parallel::map_indexed(wave, |_, &id| {
                        let client = population.hydrate(population.descriptor(id as usize));
                        let update = client.compute_update(&factory, &global, batch, round_seed)?;
                        let encoded = codec.encode(&update.grads)?;
                        Ok((update.loss, update.samples, encoded))
                    });
                compute_ns += compute_span.finish_ns();
                let fold_span = oasis_telemetry::span("fl.round.fold");
                for frame in frames {
                    let (loss, samples, encoded) = frame?;
                    agg.fold(&*codec, &encoded, samples as f32 / total as f32)?;
                    loss_sum += loss;
                }
                fold_ns += fold_span.finish_ns();
            }
            oasis_telemetry::counter!("fl.clients_computed").add(delivered_ids.len() as u64);
            oasis_telemetry::gauge!("agg.peak_accum_bytes").set_max(agg.peak_bytes() as i64);
            let mean_loss = loss_sum / delivered_ids.len() as f32;
            let update_norm = agg.norm();
            let step_span = oasis_telemetry::span("fl.round.step");
            self.server.apply_update(agg.as_slice())?;
            step_ns = step_span.finish_ns();
            (mean_loss, update_norm)
        };
        oasis_telemetry::counter!("fl.rounds").add(1);
        let total_ns = round_span.finish_ns();
        if let Some(t) = timings.as_mut() {
            t.select_ns = select_ns;
            t.broadcast_ns = broadcast_ns;
            t.hydrate_ns = hydrate_ns;
            t.compute_ns = compute_ns;
            t.deliver_ns = deliver_ns;
            t.fold_ns = fold_ns;
            t.step_ns = step_ns;
            t.total_ns = total_ns;
        }

        let report = RoundReport {
            round,
            participants: delivered_ids.len(),
            cohort: cohort.len(),
            dropped,
            mean_loss,
            update_norm,
            bytes_up,
            bytes_down,
            sim_ms: round_ms,
            timings,
        };
        self.server.set_round(round + 1);
        Ok(CohortReport {
            round_report: report,
            population: self.population.len(),
            computed: agg.folded(),
            peak_accum_bytes: agg.peak_bytes(),
            peak_frame_bytes,
        })
    }

    /// Runs `rounds` rounds with per-round keyed rng streams
    /// ([`CohortScheduler::round_rng`]): round `r` depends only on
    /// `(seed, r)`, so long runs can be split, resumed, or replayed
    /// from any round without replaying the prefix. (The legacy
    /// bridge — one sequential rng across rounds — is available by
    /// driving [`CohortRunner::run_round`] directly.)
    ///
    /// # Errors
    ///
    /// Stops at the first failing round.
    pub fn run(&mut self, rounds: usize, seed: u64) -> Result<Vec<CohortReport>> {
        (0..rounds)
            .map(|_| {
                let mut rng = CohortScheduler::round_rng(seed, self.server.round() as u64);
                self.run_round(&mut rng)
            })
            .collect()
    }
}

impl std::fmt::Debug for CohortRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CohortRunner(population={}, {:?})",
            self.population.len(),
            self.server,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;
    use oasis_fl::{DefenseStack, FlConfig, ModelFactory, WireConfig};
    use oasis_nn::{Linear, Relu, Sequential};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn factory(d: usize, classes: usize) -> ModelFactory {
        Arc::new(move || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut m = Sequential::new();
            m.push(Linear::new(d, 12, &mut rng));
            m.push(Relu::new());
            m.push(Linear::new(12, classes, &mut rng));
            m
        })
    }

    fn runner(population: usize, cohort: usize) -> CohortRunner {
        let data = cifar_like_with(3, 8, 8, 3);
        let d = data.feature_dim();
        let pop = Population::iid(
            &data,
            population,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(5),
        );
        let server = FlServer::new(
            factory(d, 3),
            FlConfig {
                clients_per_round: cohort,
                ..FlConfig::default()
            },
        )
        .unwrap();
        CohortRunner::new(server, pop)
    }

    #[test]
    fn cohort_round_reports_sampling() {
        let mut r = runner(200, 16);
        let report = r.run_round(&mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(report.population, 200);
        assert_eq!(report.round_report.cohort, 16);
        assert_eq!(report.round_report.selected(), 16);
        assert_eq!(report.round_report.participants, 16);
        assert_eq!(report.computed, 16);
        assert!(report.round_report.update_norm > 0.0);
    }

    #[test]
    fn dropped_cohort_members_are_never_computed() {
        let mut r = runner(100, 32);
        r.server_mut().set_wire(WireConfig::new(
            oasis_wire::CodecSpec::Raw,
            "sim:5,10,0.4".parse().unwrap(),
        ));
        let report = r.run_round(&mut StdRng::seed_from_u64(1)).unwrap();
        assert!(report.round_report.dropped > 0, "40% loss should drop");
        assert_eq!(report.computed, report.round_report.participants);
        assert_eq!(
            report.computed + report.round_report.dropped,
            report.round_report.cohort
        );
    }

    #[test]
    fn keyed_run_splits_cleanly() {
        let mut whole = runner(64, 8);
        let all = whole.run(4, 99).unwrap();
        let mut split = runner(64, 8);
        let first = split.run(2, 99).unwrap();
        let rest = split.run(2, 99).unwrap();
        let rejoined: Vec<_> = first.into_iter().chain(rest).collect();
        assert_eq!(all, rejoined);
    }

    #[test]
    fn empty_population_errors() {
        let data = cifar_like_with(2, 2, 8, 0);
        let d = data.feature_dim();
        let pop = Population::iid(
            &data,
            1,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(0),
        );
        // Population::iid clamps n to 1, so build an empty one by
        // sampling zero rounds instead: the smallest real check is a
        // 1-client population running fine.
        let server = FlServer::new(factory(d, 2), FlConfig::default()).unwrap();
        let mut r = CohortRunner::new(server, pop);
        assert!(r.run_round(&mut StdRng::seed_from_u64(0)).is_ok());
    }

    #[test]
    fn raw_memory_stays_one_model_buffer_regardless_of_cohort() {
        // Raw frames fold as borrowed views — the streaming
        // aggregator never materializes a decode slot, so the peak is
        // exactly the accumulator however large the cohort.
        let mut r = runner(300, 64);
        let report = r.run_round(&mut StdRng::seed_from_u64(3)).unwrap();
        let n = 8 * 8 * 3 * 12 + 12 + 12 * 3 + 3;
        assert_eq!(report.peak_accum_bytes, 4 * n);
    }

    #[test]
    fn lossy_memory_stays_two_model_buffers_regardless_of_cohort() {
        let mut r = runner(300, 64);
        r.server_mut().set_wire(WireConfig::new(
            oasis_wire::CodecSpec::Q8,
            oasis_wire::NetSpec::Ideal,
        ));
        let report = r.run_round(&mut StdRng::seed_from_u64(3)).unwrap();
        let n = 8 * 8 * 3 * 12 + 12 + 12 * 3 + 3;
        assert_eq!(report.peak_accum_bytes, 2 * 4 * n);
    }
}
