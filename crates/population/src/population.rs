//! The deployment as data: descriptors over a shared sample pool.

use std::sync::Arc;

use oasis_data::{Dataset, LabeledImage};
use oasis_fl::{DefenseStack, FlClient};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Everything the server needs to remember about one client while it
/// is **not** participating: 12 bytes. A million clients cost ~12 MB
/// of descriptors; a million resident [`FlClient`]s would cost a data
/// shard and defense stack each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientDescriptor {
    id: u32,
    start: u32,
    len: u32,
}

impl ClientDescriptor {
    /// The client id — also its index in the population.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// How many samples the client's shard holds.
    pub fn shard_len(&self) -> usize {
        self.len as usize
    }
}

/// A population of lightweight clients over one shared sample pool.
///
/// Construction shuffles the dataset once and records, per client, a
/// `(start, len)` window into the shared pool — the same shards
/// [`partition_iid`](oasis_fl::partition_iid) would build, without
/// materializing them. [`Population::hydrate`] turns a descriptor
/// into a full [`FlClient`] (copying only that client's window) for
/// the duration of its local computation; the client is dropped when
/// its update has been computed.
#[derive(Clone)]
pub struct Population {
    items: Arc<Vec<LabeledImage>>,
    name: String,
    num_classes: usize,
    // Shard-name infix: "shard" for i.i.d. partitions, "dirichlet"
    // for label-skewed ones, matching the names the eager
    // `partition_*` helpers give their materialized clients.
    shard_label: &'static str,
    defense: Arc<DefenseStack>,
    descriptors: Vec<ClientDescriptor>,
}

impl Population {
    /// Builds an i.i.d. population of `n` clients, shard-compatible
    /// with [`partition_iid`](oasis_fl::partition_iid): the same
    /// `rng` produces descriptors that hydrate into bit-identical
    /// clients (same shard contents, names, and ids).
    ///
    /// When `n` exceeds the sample count — the population-scale
    /// regime `partition_iid` cannot express — every client gets a
    /// single sample, assigned round-robin from the shuffled pool, so
    /// all clients stay trainable.
    pub fn iid(dataset: &Dataset, n: usize, defense: Arc<DefenseStack>, rng: &mut StdRng) -> Self {
        let mut items = dataset.items().to_vec();
        items.shuffle(rng);
        let total = items.len();
        let n = n.max(1);
        let per = total / n;
        let descriptors = (0..n)
            .map(|i| {
                if per == 0 {
                    // More clients than samples: wrap round-robin.
                    ClientDescriptor {
                        id: i as u32,
                        start: (i % total.max(1)) as u32,
                        len: total.min(1) as u32,
                    }
                } else {
                    let start = i * per;
                    let end = if i == n - 1 { total } else { (i + 1) * per };
                    ClientDescriptor {
                        id: i as u32,
                        start: start as u32,
                        len: (end - start) as u32,
                    }
                }
            })
            .collect();
        Population {
            items: Arc::new(items),
            name: dataset.name().to_string(),
            num_classes: dataset.num_classes(),
            shard_label: "shard",
            defense,
            descriptors,
        }
    }

    /// Builds a label-skewed population of `n` clients,
    /// shard-compatible with
    /// [`partition_dirichlet`](oasis_fl::partition_dirichlet): the
    /// same `rng` consumes the identical draw sequence (per-class
    /// shuffle, then `n` Gamma(α) draws per class), so descriptors
    /// hydrate into bit-identical clients — same shard contents,
    /// names, and ids as the eager partitioner would materialize.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is not positive or `n` is zero, matching
    /// `partition_dirichlet`.
    pub fn dirichlet(
        dataset: &Dataset,
        n: usize,
        alpha: f64,
        defense: Arc<DefenseStack>,
        rng: &mut StdRng,
    ) -> Self {
        use rand::Rng;
        assert!(alpha > 0.0, "Dirichlet concentration must be positive");
        assert!(n > 0, "need at least one client");

        // Johnk's Gamma(α) sampler — byte-for-byte the draw sequence
        // `partition_dirichlet` consumes, so the two constructions
        // stay interchangeable under one rng seed.
        let gamma_sample = |a: f64, rng: &mut StdRng| -> f64 {
            let mut acc = 0.0f64;
            let mut shape = a;
            while shape >= 1.0 {
                acc += -(1.0 - rng.gen::<f64>()).ln();
                shape -= 1.0;
            }
            if shape > 1e-9 {
                loop {
                    let u: f64 = rng.gen();
                    let v: f64 = rng.gen();
                    let x = u.powf(1.0 / shape);
                    let y = v.powf(1.0 / (1.0 - shape));
                    if x + y <= 1.0 {
                        let e = -(1.0 - rng.gen::<f64>()).ln();
                        acc += e * x / (x + y);
                        break;
                    }
                }
            }
            acc
        };

        let mut per_client_items: Vec<Vec<LabeledImage>> = (0..n).map(|_| Vec::new()).collect();
        for class in 0..dataset.num_classes() {
            let mut class_items: Vec<_> = dataset
                .items()
                .iter()
                .filter(|it| it.label == class)
                .cloned()
                .collect();
            if class_items.is_empty() {
                continue;
            }
            class_items.shuffle(rng);
            let weights: Vec<f64> = (0..n)
                .map(|_| gamma_sample(alpha, rng).max(1e-12))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut start = 0usize;
            for (client, &w) in weights.iter().enumerate() {
                let count = if client == n - 1 {
                    class_items.len() - start
                } else {
                    ((w / total) * class_items.len() as f64).round() as usize
                };
                let end = (start + count).min(class_items.len());
                per_client_items[client].extend(class_items[start..end].iter().cloned());
                start = end;
            }
        }

        // Flatten client shards into one pool so each descriptor is a
        // contiguous window, exactly like the i.i.d. layout.
        let mut items = Vec::with_capacity(dataset.len());
        let mut descriptors = Vec::with_capacity(n);
        for (i, shard) in per_client_items.into_iter().enumerate() {
            descriptors.push(ClientDescriptor {
                id: i as u32,
                start: items.len() as u32,
                len: shard.len() as u32,
            });
            items.extend(shard);
        }
        Population {
            items: Arc::new(items),
            name: dataset.name().to_string(),
            num_classes: dataset.num_classes(),
            shard_label: "dirichlet",
            defense,
            descriptors,
        }
    }

    /// A population restricted to the clients at `positions` (indices
    /// into [`Population::descriptors`]), sharing the sample pool.
    /// Descriptors keep their original ids, so a churned-out client
    /// that later rejoins hydrates back into the *same* shard — data
    /// lives on the device across connectivity gaps.
    ///
    /// # Panics
    ///
    /// Panics when any position is out of range.
    pub fn subset(&self, positions: &[usize]) -> Population {
        Population {
            items: Arc::clone(&self.items),
            name: self.name.clone(),
            num_classes: self.num_classes,
            shard_label: self.shard_label,
            defense: Arc::clone(&self.defense),
            descriptors: positions.iter().map(|&p| self.descriptors[p]).collect(),
        }
    }

    /// Swaps the defense stack every subsequently hydrated client
    /// runs. The sample pool and descriptors are untouched, so this
    /// is how a campaign re-parameterizes defenses mid-run.
    pub fn set_defense(&mut self, defense: Arc<DefenseStack>) {
        self.defense = defense;
    }

    /// Number of clients in the population.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the population has no clients.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// The descriptor of client `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn descriptor(&self, id: usize) -> ClientDescriptor {
        self.descriptors[id]
    }

    /// All descriptors, in id order.
    pub fn descriptors(&self) -> &[ClientDescriptor] {
        &self.descriptors
    }

    /// The defense stack every hydrated client runs.
    pub fn defense(&self) -> &Arc<DefenseStack> {
        &self.defense
    }

    /// Materializes one client from its descriptor: copies the
    /// client's shard window out of the shared pool and wires up the
    /// shared defense stack. The result matches what
    /// [`partition_iid`](oasis_fl::partition_iid) would have built
    /// for the same id (same shard name, contents, defense), and its
    /// memory is reclaimed the moment the caller drops it.
    pub fn hydrate(&self, desc: ClientDescriptor) -> FlClient {
        let start = desc.start as usize;
        let end = start + desc.len as usize;
        let shard = Dataset::new(
            format!("{}-{}{}", self.name, self.shard_label, desc.id),
            self.num_classes,
            self.items[start..end].to_vec(),
        );
        FlClient::new(desc.id as usize, shard, Arc::clone(&self.defense))
    }
}

impl std::fmt::Debug for Population {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Population(clients={}, pool={}, defense={:?})",
            self.descriptors.len(),
            self.items.len(),
            self.defense.names(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;
    use rand::SeedableRng;

    #[test]
    fn descriptors_are_12_bytes() {
        assert_eq!(std::mem::size_of::<ClientDescriptor>(), 12);
    }

    #[test]
    fn iid_matches_partition_iid_shards() {
        let data = cifar_like_with(4, 6, 8, 0);
        let defense = Arc::new(DefenseStack::identity());
        let legacy = oasis_fl::partition_iid(
            &data,
            5,
            Arc::clone(&defense),
            &mut StdRng::seed_from_u64(9),
        );
        let pop = Population::iid(&data, 5, defense, &mut StdRng::seed_from_u64(9));
        assert_eq!(pop.len(), legacy.len());
        for (i, old) in legacy.iter().enumerate() {
            let fresh = pop.hydrate(pop.descriptor(i));
            assert_eq!(fresh.id(), old.id());
            assert_eq!(fresh.data().name(), old.data().name());
            assert_eq!(fresh.data().items(), old.data().items());
        }
    }

    #[test]
    fn oversubscribed_population_gives_every_client_a_sample() {
        let data = cifar_like_with(2, 3, 8, 1); // 6 samples
        let pop = Population::iid(
            &data,
            50,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(pop.len(), 50);
        for d in pop.descriptors() {
            assert_eq!(d.shard_len(), 1);
            assert_eq!(pop.hydrate(*d).data().len(), 1);
        }
    }

    #[test]
    fn dirichlet_matches_partition_dirichlet_shards() {
        let data = cifar_like_with(4, 12, 8, 6);
        let defense = Arc::new(DefenseStack::identity());
        for alpha in [0.3, 1.7] {
            let legacy = oasis_fl::partition_dirichlet(
                &data,
                5,
                alpha,
                Arc::clone(&defense),
                &mut StdRng::seed_from_u64(21),
            );
            let pop = Population::dirichlet(
                &data,
                5,
                alpha,
                Arc::clone(&defense),
                &mut StdRng::seed_from_u64(21),
            );
            assert_eq!(pop.len(), legacy.len());
            for (i, old) in legacy.iter().enumerate() {
                let fresh = pop.hydrate(pop.descriptor(i));
                assert_eq!(fresh.id(), old.id());
                assert_eq!(fresh.data().name(), old.data().name());
                assert_eq!(fresh.data().items(), old.data().items());
            }
        }
    }

    #[test]
    #[should_panic(expected = "Dirichlet concentration must be positive")]
    fn dirichlet_rejects_nonpositive_alpha() {
        let data = cifar_like_with(2, 4, 8, 0);
        Population::dirichlet(
            &data,
            2,
            0.0,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(0),
        );
    }

    #[test]
    fn churned_client_rejoins_with_its_original_shard() {
        let data = cifar_like_with(3, 8, 8, 4);
        let pop = Population::iid(
            &data,
            6,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(2),
        );
        let before: Vec<_> = (0..6)
            .map(|i| pop.hydrate(pop.descriptor(i)).data().items().to_vec())
            .collect();

        // Clients 1 and 4 churn out, then client 4 rejoins.
        let shrunk = pop.subset(&[0, 2, 3, 5]);
        assert_eq!(shrunk.len(), 4);
        assert_eq!(shrunk.descriptor(2).id(), 3);
        let regrown = pop.subset(&[0, 2, 3, 4, 5]);
        let back = regrown.hydrate(regrown.descriptor(3));
        assert_eq!(back.id(), 4);
        assert_eq!(back.data().items(), &before[4][..]);

        // Every surviving client still hydrates its original shard
        // (and shard name) through the subset view.
        for (slot, &id) in [0usize, 2, 3, 5].iter().enumerate() {
            let c = shrunk.hydrate(shrunk.descriptor(slot));
            assert_eq!(c.id(), id);
            assert_eq!(c.data().items(), &before[id][..]);
            assert_eq!(c.data().name(), format!("{}-shard{}", data.name(), id));
        }
    }

    #[test]
    fn subset_shares_the_sample_pool() {
        let data = cifar_like_with(2, 6, 8, 3);
        let pop = Population::iid(
            &data,
            4,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(1),
        );
        let sub = pop.subset(&[1, 3]);
        assert!(Arc::ptr_eq(&pop.items, &sub.items));
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn hydrate_copies_only_the_window() {
        let data = cifar_like_with(3, 4, 8, 2);
        let pop = Population::iid(
            &data,
            4,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(3),
        );
        let total: usize = pop
            .descriptors()
            .iter()
            .map(|d| pop.hydrate(*d).data().len())
            .sum();
        assert_eq!(total, data.len());
    }
}
