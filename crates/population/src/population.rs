//! The deployment as data: descriptors over a shared sample pool.

use std::sync::Arc;

use oasis_data::{Dataset, LabeledImage};
use oasis_fl::{DefenseStack, FlClient};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Everything the server needs to remember about one client while it
/// is **not** participating: 12 bytes. A million clients cost ~12 MB
/// of descriptors; a million resident [`FlClient`]s would cost a data
/// shard and defense stack each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientDescriptor {
    id: u32,
    start: u32,
    len: u32,
}

impl ClientDescriptor {
    /// The client id — also its index in the population.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// How many samples the client's shard holds.
    pub fn shard_len(&self) -> usize {
        self.len as usize
    }
}

/// A population of lightweight clients over one shared sample pool.
///
/// Construction shuffles the dataset once and records, per client, a
/// `(start, len)` window into the shared pool — the same shards
/// [`partition_iid`](oasis_fl::partition_iid) would build, without
/// materializing them. [`Population::hydrate`] turns a descriptor
/// into a full [`FlClient`] (copying only that client's window) for
/// the duration of its local computation; the client is dropped when
/// its update has been computed.
#[derive(Clone)]
pub struct Population {
    items: Arc<Vec<LabeledImage>>,
    name: String,
    num_classes: usize,
    defense: Arc<DefenseStack>,
    descriptors: Vec<ClientDescriptor>,
}

impl Population {
    /// Builds an i.i.d. population of `n` clients, shard-compatible
    /// with [`partition_iid`](oasis_fl::partition_iid): the same
    /// `rng` produces descriptors that hydrate into bit-identical
    /// clients (same shard contents, names, and ids).
    ///
    /// When `n` exceeds the sample count — the population-scale
    /// regime `partition_iid` cannot express — every client gets a
    /// single sample, assigned round-robin from the shuffled pool, so
    /// all clients stay trainable.
    pub fn iid(dataset: &Dataset, n: usize, defense: Arc<DefenseStack>, rng: &mut StdRng) -> Self {
        let mut items = dataset.items().to_vec();
        items.shuffle(rng);
        let total = items.len();
        let n = n.max(1);
        let per = total / n;
        let descriptors = (0..n)
            .map(|i| {
                if per == 0 {
                    // More clients than samples: wrap round-robin.
                    ClientDescriptor {
                        id: i as u32,
                        start: (i % total.max(1)) as u32,
                        len: total.min(1) as u32,
                    }
                } else {
                    let start = i * per;
                    let end = if i == n - 1 { total } else { (i + 1) * per };
                    ClientDescriptor {
                        id: i as u32,
                        start: start as u32,
                        len: (end - start) as u32,
                    }
                }
            })
            .collect();
        Population {
            items: Arc::new(items),
            name: dataset.name().to_string(),
            num_classes: dataset.num_classes(),
            defense,
            descriptors,
        }
    }

    /// Number of clients in the population.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the population has no clients.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// The descriptor of client `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn descriptor(&self, id: usize) -> ClientDescriptor {
        self.descriptors[id]
    }

    /// All descriptors, in id order.
    pub fn descriptors(&self) -> &[ClientDescriptor] {
        &self.descriptors
    }

    /// The defense stack every hydrated client runs.
    pub fn defense(&self) -> &Arc<DefenseStack> {
        &self.defense
    }

    /// Materializes one client from its descriptor: copies the
    /// client's shard window out of the shared pool and wires up the
    /// shared defense stack. The result matches what
    /// [`partition_iid`](oasis_fl::partition_iid) would have built
    /// for the same id (same shard name, contents, defense), and its
    /// memory is reclaimed the moment the caller drops it.
    pub fn hydrate(&self, desc: ClientDescriptor) -> FlClient {
        let start = desc.start as usize;
        let end = start + desc.len as usize;
        let shard = Dataset::new(
            format!("{}-shard{}", self.name, desc.id),
            self.num_classes,
            self.items[start..end].to_vec(),
        );
        FlClient::new(desc.id as usize, shard, Arc::clone(&self.defense))
    }
}

impl std::fmt::Debug for Population {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Population(clients={}, pool={}, defense={:?})",
            self.descriptors.len(),
            self.items.len(),
            self.defense.names(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;
    use rand::SeedableRng;

    #[test]
    fn descriptors_are_12_bytes() {
        assert_eq!(std::mem::size_of::<ClientDescriptor>(), 12);
    }

    #[test]
    fn iid_matches_partition_iid_shards() {
        let data = cifar_like_with(4, 6, 8, 0);
        let defense = Arc::new(DefenseStack::identity());
        let legacy = oasis_fl::partition_iid(
            &data,
            5,
            Arc::clone(&defense),
            &mut StdRng::seed_from_u64(9),
        );
        let pop = Population::iid(&data, 5, defense, &mut StdRng::seed_from_u64(9));
        assert_eq!(pop.len(), legacy.len());
        for (i, old) in legacy.iter().enumerate() {
            let fresh = pop.hydrate(pop.descriptor(i));
            assert_eq!(fresh.id(), old.id());
            assert_eq!(fresh.data().name(), old.data().name());
            assert_eq!(fresh.data().items(), old.data().items());
        }
    }

    #[test]
    fn oversubscribed_population_gives_every_client_a_sample() {
        let data = cifar_like_with(2, 3, 8, 1); // 6 samples
        let pop = Population::iid(
            &data,
            50,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(pop.len(), 50);
        for d in pop.descriptors() {
            assert_eq!(d.shard_len(), 1);
            assert_eq!(pop.hydrate(*d).data().len(), 1);
        }
    }

    #[test]
    fn hydrate_copies_only_the_window() {
        let data = cifar_like_with(3, 4, 8, 2);
        let pop = Population::iid(
            &data,
            4,
            Arc::new(DefenseStack::identity()),
            &mut StdRng::seed_from_u64(3),
        );
        let total: usize = pop
            .descriptors()
            .iter()
            .map(|d| pop.hydrate(*d).data().len())
            .sum();
        assert_eq!(total, data.len());
    }
}
