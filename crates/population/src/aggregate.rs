//! The streaming weighted-sum aggregator.

use oasis_fl::{FlError, Result};
use oasis_wire::{EncodedUpdate, FrameBuf, UpdateCodec};

/// Folds delivered updates into a running sample-weighted sum, one
/// wire frame at a time.
///
/// Memory is the whole point: the aggregator owns exactly one
/// model-sized accumulator — `4·n` bytes — no matter how many clients
/// fold into it. Each frame is consumed as a *borrowed view*
/// ([`UpdateCodec::decode_view`]): with the raw codec an aligned
/// frame folds straight off the wire with zero post-decode copies and
/// the scratch slot stays empty; lossy codecs decode into one reused
/// model-sized slot, for `2 × 4·n` total. The legacy wave-decode
/// round holds `O(threads · model)` scratch; this holds `O(model)`
/// and reports its own footprint via
/// [`StreamingAggregator::peak_bytes`] so tests can assert the bound
/// rather than trust the comment.
///
/// Folding is strictly sequential in call order, so the FP
/// accumulation sequence — and therefore the aggregated update, bit
/// for bit — is independent of thread count and identical to the
/// legacy server's serial fold when called in delivery order with
/// the same weights `samples_i / total`.
#[derive(Debug)]
pub struct StreamingAggregator {
    agg: Vec<f32>,
    scratch: FrameBuf,
    folded: usize,
}

impl StreamingAggregator {
    /// An empty accumulator for an `n`-parameter model. The scratch
    /// slot starts empty and only materializes if a frame actually
    /// needs a decode copy (lossy codec or misaligned raw payload).
    pub fn new(n: usize) -> Self {
        StreamingAggregator {
            agg: vec![0.0; n],
            scratch: FrameBuf::new(),
            folded: 0,
        }
    }

    /// Decodes one delivered frame to a borrowed view and folds it in
    /// with FedAvg weight `weight` (`samples_i / total`).
    ///
    /// # Errors
    ///
    /// Propagates codec failures; returns [`FlError::UpdateLength`]
    /// when the frame's element count disagrees with the model.
    pub fn fold(
        &mut self,
        codec: &dyn UpdateCodec,
        frame: &EncodedUpdate,
        weight: f32,
    ) -> Result<()> {
        let _span = oasis_telemetry::span("agg.fold");
        let view = codec.decode_view(frame, &mut self.scratch)?;
        if view.len() != self.agg.len() {
            return Err(FlError::UpdateLength {
                len: view.len(),
                expected: self.agg.len(),
            });
        }
        for (a, &g) in self.agg.iter_mut().zip(view) {
            *a += weight * g;
        }
        self.folded += 1;
        Ok(())
    }

    /// How many frames have been folded in.
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// The running weighted sum.
    pub fn as_slice(&self) -> &[f32] {
        &self.agg
    }

    /// L2 norm of the running sum — the legacy report's
    /// `update_norm`, same expression.
    pub fn norm(&self) -> f32 {
        self.agg.iter().map(|g| g * g).sum::<f32>().sqrt()
    }

    /// The aggregator's actual heap footprint in bytes: accumulator
    /// plus whatever scratch the codec forced. `4·n` on the raw
    /// zero-copy path, `2 × 4·n` for lossy codecs — the population
    /// memory bound tests assert on this.
    pub fn peak_bytes(&self) -> usize {
        self.agg.len() * std::mem::size_of::<f32>() + self.scratch.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_wire::CodecSpec;

    #[test]
    fn fold_matches_direct_weighted_sum() {
        let codec = CodecSpec::Raw.build();
        let a = vec![1.0f32, -2.0, 3.0];
        let b = vec![0.5f32, 4.0, -1.0];
        let mut agg = StreamingAggregator::new(3);
        agg.fold(&*codec, &codec.encode(&a).unwrap(), 0.25).unwrap();
        agg.fold(&*codec, &codec.encode(&b).unwrap(), 0.75).unwrap();
        let expect: Vec<f32> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| 0.25 * x + 0.75 * y)
            .collect();
        assert_eq!(agg.as_slice(), &expect[..]);
        assert_eq!(agg.folded(), 2);
    }

    #[test]
    fn raw_footprint_is_one_model_buffer() {
        // The zero-copy pin: raw frames are folded as borrowed views,
        // so no matter how many fold in, the aggregator never
        // materializes decode scratch — its footprint is exactly the
        // accumulator.
        let n = 4096usize;
        let codec = CodecSpec::Raw.build();
        let mut agg = StreamingAggregator::new(n);
        assert_eq!(agg.peak_bytes(), 4 * n);
        let frame = codec.encode(&vec![1.0f32; n]).unwrap();
        for _ in 0..100 {
            agg.fold(&*codec, &frame, 0.01).unwrap();
        }
        assert_eq!(
            agg.peak_bytes(),
            4 * n,
            "raw fold must not copy frames into scratch"
        );
    }

    #[test]
    fn lossy_footprint_is_two_model_buffers() {
        let n = 4096usize;
        let codec = CodecSpec::Q8.build();
        let mut agg = StreamingAggregator::new(n);
        let frame = codec.encode(&vec![1.0f32; n]).unwrap();
        for _ in 0..100 {
            agg.fold(&*codec, &frame, 0.01).unwrap();
        }
        assert_eq!(
            agg.peak_bytes(),
            2 * 4 * n,
            "lossy fold needs exactly one reused decode slot"
        );
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let codec = CodecSpec::Raw.build();
        let mut agg = StreamingAggregator::new(4);
        let frame = codec.encode(&[1.0, 2.0]).unwrap();
        assert!(matches!(
            agg.fold(&*codec, &frame, 1.0),
            Err(FlError::UpdateLength {
                len: 2,
                expected: 4
            })
        ));
    }
}
