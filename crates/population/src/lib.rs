//! # oasis-population
//!
//! Population-scale federated rounds: the machinery that lets the
//! OASIS evaluation run cohorts sampled from 10⁵–10⁶ clients without
//! holding 10⁵–10⁶ [`FlClient`](oasis_fl::FlClient)s resident.
//!
//! Three pieces compose into a round:
//!
//! * [`Population`] — the deployment as data: a shared, shuffled
//!   sample pool plus one 12-byte [`ClientDescriptor`] per client.
//!   A descriptor is **hydrated** into a full `FlClient` (shard,
//!   defense stack) only while its update is being computed, then
//!   dropped.
//! * [`CohortScheduler`] — seeded deterministic sampling of the K
//!   participants of each round. The per-round rng stream is keyed by
//!   `(seed, round)`, so any round is reproducible in isolation and
//!   at any thread count.
//! * [`StreamingAggregator`] — folds each delivered update into a
//!   running `O(model)` accumulator as frames come off the wire, so
//!   server memory is `O(model + cohort_scratch)` regardless of
//!   population.
//!
//! [`CohortRunner`] ties them together and drives an
//! [`FlServer`](oasis_fl::FlServer) through rounds that are
//! **bit-exact** with the legacy resident-client path at matched
//! scale: same selection shuffle, same per-client rng streams, same
//! wire, same fold order, same SGD step.
//!
//! ```
//! use oasis_population::{CohortRunner, Population};
//! use oasis_fl::{DefenseStack, FlConfig, FlServer};
//! use oasis_data::cifar_like_with;
//! use oasis_nn::{Linear, Sequential};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), oasis_fl::FlError> {
//! let data = cifar_like_with(4, 6, 8, 0);
//! let d = data.feature_dim();
//! let factory: oasis_fl::ModelFactory = Arc::new(move || {
//!     let mut rng = StdRng::seed_from_u64(42);
//!     let mut m = Sequential::new();
//!     m.push(Linear::new(d, 4, &mut rng));
//!     m
//! });
//! // 1000 descriptors cost ~12 KB; 1000 resident clients would not.
//! let pop = Population::iid(
//!     &data,
//!     1000,
//!     Arc::new(DefenseStack::identity()),
//!     &mut StdRng::seed_from_u64(1),
//! );
//! let server = FlServer::new(factory, FlConfig { clients_per_round: 8, ..FlConfig::default() })?;
//! let mut runner = CohortRunner::new(server, pop);
//! let reports = runner.run(3, 2)?;
//! assert_eq!(reports.len(), 3);
//! assert_eq!(reports[0].round_report.cohort, 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod aggregate;
mod population;
mod round;
mod scheduler;
mod spec;

pub use aggregate::StreamingAggregator;
pub use population::{ClientDescriptor, Population};
pub use round::{CohortReport, CohortRunner};
pub use scheduler::CohortScheduler;
pub use spec::{PopulationSpec, SampleSpec};
