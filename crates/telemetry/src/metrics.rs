//! Process-wide metrics: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are `&'static` and registered by name in a global table;
//! the [`counter!`](crate::counter!)/[`gauge!`](crate::gauge!)/
//! [`histogram!`](crate::histogram!) macros cache the lookup in a
//! per-call-site `OnceLock`, so steady-state updates never touch the
//! registry lock. Every mutation is gated on [`crate::enabled`], so
//! the disabled path is one branch.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------

/// Monotonically increasing sum (e.g. `wire.bytes_encoded`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` when telemetry is enabled; a branch otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current sum.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-written value plus the high-water mark (e.g.
/// `pool.queue_depth`).
#[derive(Debug, Default)]
pub struct Gauge {
    last: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// Records `v` as the current value and folds it into the
    /// high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.last.store(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Folds `v` into the high-water mark without moving `last` —
    /// for quantities that only make sense as peaks (e.g.
    /// `agg.peak_accum_bytes`).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if crate::enabled() {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Most recently `set` value.
    pub fn last(&self) -> i64 {
        self.last.load(Ordering::Relaxed)
    }

    /// High-water mark since the last reset.
    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.last.store(0, Ordering::Relaxed);
        self.max.store(i64::MIN, Ordering::Relaxed);
    }
}

/// Number of exponential buckets: bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero. 40 buckets cover any
/// duration this stack can produce (`2^39` µs ≈ 6 days).
pub const HIST_BUCKETS: usize = 40;

/// Fixed-bucket exponential histogram of non-negative integers
/// (by convention microseconds, e.g. `pool.task_wait_us`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Representative value reported for a bucket: its geometric middle,
/// so quantile estimates are within ~1.5× of the true value.
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        let lo = 1u64 << (i - 1);
        lo + lo / 2
    }
}

impl Histogram {
    /// Records one observation when telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Records a nanosecond duration in microseconds (the stack-wide
    /// histogram unit).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.record(ns / 1_000);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, unlike the quantiles).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Bucket-resolution quantile estimate for `q ∈ [0, 1]`, clamped
    /// to the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_mid(i).min(self.max());
            }
        }
        self.max()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<(&'static str, Metric)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, Metric)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lookup_or_insert<T>(
    name: &'static str,
    get: impl Fn(&Metric) -> Option<&'static T>,
    make: impl FnOnce() -> Metric,
) -> &'static T {
    let mut reg = registry().lock().expect("metric registry poisoned");
    if let Some((_, m)) = reg.iter().find(|(n, _)| *n == name) {
        return get(m).unwrap_or_else(|| panic!("metric `{name}` registered with another type"));
    }
    let metric = make();
    let out = get(&metric).expect("freshly made metric has the requested type");
    reg.push((name, metric));
    out
}

/// The counter registered under `name` (registering it on first use).
/// Call sites should prefer the caching [`counter!`](crate::counter!)
/// macro.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn counter(name: &'static str) -> &'static Counter {
    lookup_or_insert(
        name,
        |m| match m {
            Metric::Counter(c) => Some(*c),
            _ => None,
        },
        || Metric::Counter(Box::leak(Box::default())),
    )
}

/// The gauge registered under `name` (registering it on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lookup_or_insert(
        name,
        |m| match m {
            Metric::Gauge(g) => Some(*g),
            _ => None,
        },
        || {
            let g: &'static Gauge = Box::leak(Box::default());
            g.reset();
            Metric::Gauge(g)
        },
    )
}

/// The histogram registered under `name` (registering it on first
/// use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lookup_or_insert(
        name,
        |m| match m {
            Metric::Histogram(h) => Some(*h),
            _ => None,
        },
        || Metric::Histogram(Box::leak(Box::default())),
    )
}

/// Zeroes every registered metric (instruments stay registered).
pub fn reset_metrics() {
    let reg = registry().lock().expect("metric registry poisoned");
    for (_, m) in reg.iter() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// Cached-handle counter access: `counter!("wire.bytes_encoded").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::counter($name))
    }};
}

/// Cached-handle gauge access: `gauge!("pool.queue_depth").set(d)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::gauge($name))
    }};
}

/// Cached-handle histogram access:
/// `histogram!("pool.task_wait_us").record_ns(ns)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::histogram($name))
    }};
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Sum at snapshot time.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Most recently set value (0 if only `set_max` was used).
    pub last: i64,
    /// High-water mark (0 if never set).
    pub max: i64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Bucket-resolution median estimate.
    pub p50: u64,
    /// Bucket-resolution 99th-percentile estimate.
    pub p99: u64,
}

/// All registered metrics at one instant, each section sorted by
/// name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms.
    pub histograms: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// Whether every section is empty.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Snapshots every registered metric. Metrics that were registered
/// but never updated report zeros.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metric registry poisoned");
    let mut snap = MetricsSnapshot::default();
    for (name, m) in reg.iter() {
        match m {
            Metric::Counter(c) => snap.counters.push(CounterSnapshot {
                name: (*name).to_string(),
                value: c.get(),
            }),
            Metric::Gauge(g) => {
                let max = g.max();
                snap.gauges.push(GaugeSnapshot {
                    name: (*name).to_string(),
                    last: g.last(),
                    max: if max == i64::MIN { 0 } else { max },
                });
            }
            Metric::Histogram(h) => snap.histograms.push(HistSnapshot {
                name: (*name).to_string(),
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                p50: h.quantile(0.50),
                p99: h.quantile(0.99),
            }),
        }
    }
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_telemetry;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let _t = lock_telemetry();
        let was = crate::set_enabled(true);
        reset_metrics();
        counter!("test.bytes").add(3);
        counter!("test.bytes").add(4);
        gauge!("test.depth").set(5);
        gauge!("test.depth").set(2);
        gauge!("test.peak").set_max(9);
        for v in [1u64, 10, 100, 1000, 10_000] {
            histogram!("test.lat_us").record(v);
        }
        let snap = metrics_snapshot();
        crate::set_enabled(was);

        let c = snap
            .counters
            .iter()
            .find(|c| c.name == "test.bytes")
            .unwrap();
        assert_eq!(c.value, 7);
        let g = snap.gauges.iter().find(|g| g.name == "test.depth").unwrap();
        assert_eq!((g.last, g.max), (2, 5));
        let p = snap.gauges.iter().find(|g| g.name == "test.peak").unwrap();
        assert_eq!((p.last, p.max), (0, 9));
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.lat_us")
            .unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 11_111);
        assert_eq!(h.max, 10_000);
        assert!(h.p50 >= 64 && h.p50 <= 128, "p50 {} not near 100", h.p50);
        assert_eq!(h.p99, 10_000, "p99 clamps to the exact max");
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let _t = lock_telemetry();
        let was = crate::set_enabled(false);
        reset_metrics();
        counter!("test.off").add(100);
        gauge!("test.off_g").set(100);
        histogram!("test.off_h").record(100);
        let snap = metrics_snapshot();
        crate::set_enabled(was);
        assert_eq!(
            snap.counters
                .iter()
                .find(|c| c.name == "test.off")
                .unwrap()
                .value,
            0
        );
        assert_eq!(
            snap.gauges
                .iter()
                .find(|g| g.name == "test.off_g")
                .unwrap()
                .max,
            0
        );
        assert_eq!(
            snap.histograms
                .iter()
                .find(|h| h.name == "test.off_h")
                .unwrap()
                .count,
            0
        );
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let _t = lock_telemetry();
        let was = crate::set_enabled(true);
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        crate::set_enabled(was);
        // p50 lands in bucket [8,16); the geometric mid is 12.
        assert_eq!(h.quantile(0.5), 12);
        assert_eq!(h.quantile(0.99), 12);
        // p100 lands in the outlier's bucket [2^16, 2^17); its
        // geometric mid (98304) is within 1.5× of the true 100 000.
        assert_eq!(h.quantile(1.0), 98_304);
    }
}
