//! The file sink: a versioned JSON-lines trace format, plus a reader
//! and structural validator used by `tools/trace_check` and the
//! determinism tests.
//!
//! # Schema (version 1)
//!
//! One JSON object per line; every object carries a `type`:
//!
//! ```text
//! {"type":"meta","schema_version":1,"generator":"oasis-telemetry"}
//! {"type":"span","id":7,"parent":3,"name":"fl.round.decode","tid":1,"start_ns":123,"dur_ns":456}
//! {"type":"counter","name":"wire.bytes_encoded","value":81920}
//! {"type":"gauge","name":"pool.queue_depth","last":0,"max":7}
//! {"type":"hist","name":"pool.task_wait_us","count":64,"sum":1024,"max":99,"p50":12,"p99":96}
//! ```
//!
//! The `meta` line comes first; span lines are sorted by
//! `(start_ns, id)` so parents precede children; metric lines follow
//! the spans. Unknown `type`s are reserved for future schema versions
//! and rejected by [`validate_trace`] at version 1.

use crate::{MetricsSnapshot, SpanRecord};
use serde::Value;
use std::collections::HashMap;
use std::collections::HashSet;
use std::path::Path;
use std::sync::Mutex;

/// Version stamped into (and required of) every trace file.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn line(value: &Value, out: &mut String) {
    out.push_str(&serde_json::to_string(value).expect("Value serialization is infallible"));
    out.push('\n');
}

/// Renders spans + metrics as schema-version-1 JSONL text.
pub fn render_trace(spans: &[SpanRecord], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    line(
        &obj(vec![
            ("type", Value::Str("meta".into())),
            ("schema_version", Value::U64(TRACE_SCHEMA_VERSION)),
            ("generator", Value::Str("oasis-telemetry".into())),
        ]),
        &mut out,
    );
    for s in spans {
        line(
            &obj(vec![
                ("type", Value::Str("span".into())),
                ("id", Value::U64(s.id)),
                ("parent", Value::U64(s.parent)),
                ("name", Value::Str(s.name.into())),
                ("tid", Value::U64(s.tid)),
                ("start_ns", Value::U64(s.start_ns)),
                ("dur_ns", Value::U64(s.dur_ns)),
            ]),
            &mut out,
        );
    }
    for c in &metrics.counters {
        line(
            &obj(vec![
                ("type", Value::Str("counter".into())),
                ("name", Value::Str(c.name.clone())),
                ("value", Value::U64(c.value)),
            ]),
            &mut out,
        );
    }
    for g in &metrics.gauges {
        line(
            &obj(vec![
                ("type", Value::Str("gauge".into())),
                ("name", Value::Str(g.name.clone())),
                ("last", Value::I64(g.last)),
                ("max", Value::I64(g.max)),
            ]),
            &mut out,
        );
    }
    for h in &metrics.histograms {
        line(
            &obj(vec![
                ("type", Value::Str("hist".into())),
                ("name", Value::Str(h.name.clone())),
                ("count", Value::U64(h.count)),
                ("sum", Value::U64(h.sum)),
                ("max", Value::U64(h.max)),
                ("p50", Value::U64(h.p50)),
                ("p99", Value::U64(h.p99)),
            ]),
            &mut out,
        );
    }
    out
}

/// Writes a schema-version-1 trace file. Spans should come from
/// [`crate::take_spans`] (already sorted); metrics from
/// [`crate::metrics_snapshot`].
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(
    path: &Path,
    spans: &[SpanRecord],
    metrics: &MetricsSnapshot,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, render_trace(spans, metrics))
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// A parsed trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Declared schema version from the `meta` line.
    pub schema_version: u64,
    /// Span records in file order.
    pub spans: Vec<SpanRecord>,
    /// Metric lines, re-assembled into a snapshot.
    pub metrics: MetricsSnapshot,
}

/// Span names read from a file are interned here so [`TraceData`] can
/// reuse [`SpanRecord`] (whose name is `&'static str`). Bounded by
/// the number of *distinct* span names, which is small by design.
fn intern(name: &str) -> &'static str {
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut names = NAMES.lock().expect("name interner poisoned");
    if let Some(existing) = names.iter().find(|n| **n == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    names.push(leaked);
    leaked
}

fn field<'v>(fields: &'v Value, key: &str, line_no: usize) -> Result<&'v Value, String> {
    fields
        .get(key)
        .ok_or_else(|| format!("line {line_no}: missing field `{key}`"))
}

fn u64_field(fields: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    field(fields, key, line_no)?
        .as_u64()
        .ok_or_else(|| format!("line {line_no}: field `{key}` is not a non-negative integer"))
}

fn i64_field(fields: &Value, key: &str, line_no: usize) -> Result<i64, String> {
    field(fields, key, line_no)?
        .as_i64()
        .ok_or_else(|| format!("line {line_no}: field `{key}` is not an integer"))
}

fn str_field(fields: &Value, key: &str, line_no: usize) -> Result<String, String> {
    Ok(field(fields, key, line_no)?
        .as_str()
        .ok_or_else(|| format!("line {line_no}: field `{key}` is not a string"))?
        .to_string())
}

/// Parses JSONL trace text. Structural problems (bad JSON, missing
/// fields, no leading `meta` line) are errors; semantic checks live
/// in [`validate_trace`].
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn read_trace_str(text: &str) -> Result<TraceData, String> {
    let mut meta_version: Option<u64> = None;
    let mut spans = Vec::new();
    let mut metrics = MetricsSnapshot::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(raw)
            .map_err(|e| format!("line {line_no}: not valid JSON: {e}"))?;
        let kind = str_field(&value, "type", line_no)?;
        match kind.as_str() {
            "meta" => {
                if meta_version.is_some() {
                    return Err(format!("line {line_no}: duplicate meta line"));
                }
                if line_no != 1 {
                    return Err(format!("line {line_no}: meta line must come first"));
                }
                meta_version = Some(u64_field(&value, "schema_version", line_no)?);
            }
            "span" => spans.push(SpanRecord {
                id: u64_field(&value, "id", line_no)?,
                parent: u64_field(&value, "parent", line_no)?,
                name: intern(&str_field(&value, "name", line_no)?),
                tid: u64_field(&value, "tid", line_no)?,
                start_ns: u64_field(&value, "start_ns", line_no)?,
                dur_ns: u64_field(&value, "dur_ns", line_no)?,
            }),
            "counter" => metrics.counters.push(crate::CounterSnapshot {
                name: str_field(&value, "name", line_no)?,
                value: u64_field(&value, "value", line_no)?,
            }),
            "gauge" => metrics.gauges.push(crate::GaugeSnapshot {
                name: str_field(&value, "name", line_no)?,
                last: i64_field(&value, "last", line_no)?,
                max: i64_field(&value, "max", line_no)?,
            }),
            "hist" => metrics.histograms.push(crate::HistSnapshot {
                name: str_field(&value, "name", line_no)?,
                count: u64_field(&value, "count", line_no)?,
                sum: u64_field(&value, "sum", line_no)?,
                max: u64_field(&value, "max", line_no)?,
                p50: u64_field(&value, "p50", line_no)?,
                p99: u64_field(&value, "p99", line_no)?,
            }),
            other => return Err(format!("line {line_no}: unknown record type `{other}`")),
        }
    }
    let schema_version = meta_version.ok_or("trace has no meta line")?;
    Ok(TraceData {
        schema_version,
        spans,
        metrics,
    })
}

/// Reads and parses a trace file; see [`read_trace_str`].
///
/// # Errors
///
/// Returns a message for I/O failures and for the first offending
/// line.
pub fn read_trace(path: &Path) -> Result<TraceData, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    read_trace_str(&text)
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// Semantic checks on a parsed trace: supported schema version,
/// unique nonzero span ids, spans sorted by `(start_ns, id)`
/// (monotone starts), and — for every non-root span — a parent that
/// exists, lives on the same thread, and fully contains the child's
/// interval. This is the gate behind `tools/trace_check` and the
/// telemetry determinism tests.
///
/// # Errors
///
/// Returns a message naming the first violated property.
pub fn validate_trace(trace: &TraceData) -> Result<(), String> {
    if trace.schema_version != TRACE_SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {} (expected {TRACE_SCHEMA_VERSION})",
            trace.schema_version
        ));
    }
    let mut ids = HashSet::with_capacity(trace.spans.len());
    let mut prev_key: Option<(u64, u64)> = None;
    for s in &trace.spans {
        if s.id == 0 {
            return Err("span id 0 is reserved for \"no parent\"".into());
        }
        if !ids.insert(s.id) {
            return Err(format!("duplicate span id {}", s.id));
        }
        let key = (s.start_ns, s.id);
        if let Some(prev) = prev_key {
            if key < prev {
                return Err(format!(
                    "span {} out of order: starts are not monotone in file order",
                    s.id
                ));
            }
        }
        prev_key = Some(key);
    }
    let by_id: HashMap<u64, &SpanRecord> = trace.spans.iter().map(|s| (s.id, s)).collect();
    for s in &trace.spans {
        if s.parent == 0 {
            continue;
        }
        let p = by_id
            .get(&s.parent)
            .ok_or_else(|| format!("span {} references missing parent {}", s.id, s.parent))?;
        if p.tid != s.tid {
            return Err(format!(
                "span {} (tid {}) has parent {} on another thread (tid {})",
                s.id, s.tid, p.id, p.tid
            ));
        }
        let (ps, pe) = (p.start_ns, p.start_ns + p.dur_ns);
        let (cs, ce) = (s.start_ns, s.start_ns + s.dur_ns);
        if cs < ps || ce > pe {
            return Err(format!(
                "span {} [{cs}, {ce}) escapes parent {} [{ps}, {pe})",
                s.id, p.id
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterSnapshot, GaugeSnapshot, HistSnapshot};

    fn rec(id: u64, parent: u64, tid: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: "t.op",
            tid,
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "t.bytes".into(),
                value: 42,
            }],
            gauges: vec![GaugeSnapshot {
                name: "t.depth".into(),
                last: -1,
                max: 9,
            }],
            histograms: vec![HistSnapshot {
                name: "t.lat".into(),
                count: 3,
                sum: 30,
                max: 20,
                p50: 10,
                p99: 20,
            }],
        }
    }

    #[test]
    fn render_read_round_trip_preserves_everything() {
        let spans = vec![rec(1, 0, 1, 0, 100), rec(2, 1, 1, 10, 50)];
        let text = render_trace(&spans, &snapshot());
        let trace = read_trace_str(&text).unwrap();
        assert_eq!(trace.schema_version, TRACE_SCHEMA_VERSION);
        assert_eq!(trace.spans, spans);
        assert_eq!(trace.metrics, snapshot());
        validate_trace(&trace).unwrap();
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("oasis_telemetry_trace_test");
        let path = dir.join("trace.jsonl");
        write_trace(&path, &[rec(1, 0, 1, 0, 5)], &MetricsSnapshot::default()).unwrap();
        let trace = read_trace(&path).unwrap();
        assert_eq!(trace.spans.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_meta_and_bad_json_are_rejected() {
        assert!(read_trace_str("").is_err());
        assert!(read_trace_str("{\"type\":\"span\"}").is_err());
        assert!(read_trace_str("not json\n").is_err());
        let late_meta = "{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n\
                         {\"type\":\"meta\",\"schema_version\":1,\"generator\":\"g\"}\n";
        assert!(read_trace_str(late_meta).is_err());
    }

    #[test]
    fn validation_catches_each_violation() {
        let meta_only = read_trace_str(&render_trace(&[], &MetricsSnapshot::default())).unwrap();
        validate_trace(&meta_only).unwrap();

        let mut t = meta_only.clone();
        t.schema_version = 99;
        assert!(validate_trace(&t).unwrap_err().contains("schema_version"));

        let dup = TraceData {
            schema_version: 1,
            spans: vec![rec(1, 0, 1, 0, 10), rec(1, 0, 1, 5, 10)],
            metrics: MetricsSnapshot::default(),
        };
        assert!(validate_trace(&dup).unwrap_err().contains("duplicate"));

        let unsorted = TraceData {
            spans: vec![rec(2, 0, 1, 10, 10), rec(1, 0, 1, 0, 10)],
            ..dup.clone()
        };
        assert!(validate_trace(&unsorted).unwrap_err().contains("monotone"));

        let orphan = TraceData {
            spans: vec![rec(2, 7, 1, 0, 10)],
            ..dup.clone()
        };
        assert!(validate_trace(&orphan)
            .unwrap_err()
            .contains("missing parent"));

        let cross_thread = TraceData {
            spans: vec![rec(1, 0, 1, 0, 100), rec(2, 1, 2, 10, 10)],
            ..dup.clone()
        };
        assert!(validate_trace(&cross_thread)
            .unwrap_err()
            .contains("another thread"));

        let escapes = TraceData {
            spans: vec![rec(1, 0, 1, 0, 10), rec(2, 1, 1, 5, 50)],
            ..dup
        };
        assert!(validate_trace(&escapes).unwrap_err().contains("escapes"));
    }
}
