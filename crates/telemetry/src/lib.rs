//! Structured observability for the OASIS stack: hierarchical spans,
//! process-wide metrics, and two sinks (an in-memory self-time
//! summary and a JSON-lines trace file).
//!
//! # Design constraints
//!
//! The crate is std-only and sits below `oasis-tensor` in the
//! dependency graph so every layer — kernels, the worker pool, wire
//! codecs, FL rounds, scenario trials — can instrument itself.
//! Two properties are load-bearing:
//!
//! - **Disabled is (almost) free.** Everything is gated on one
//!   process-global [`AtomicBool`]; a [`span()`](fn@span) or counter update on
//!   the disabled path costs a relaxed load and a predictable branch.
//!   There is no compile-time feature flag to get wrong: the
//!   instrumentation is always compiled in, and the perf suite pins
//!   the disabled-path overhead (see the README's Observability section).
//! - **Determinism is untouched.** Telemetry reads monotonic clocks
//!   and atomics but never RNG, and nothing downstream branches on a
//!   measured time. Runs with tracing on and off produce bit-identical
//!   weights, reports, and scenario JSON (`tests/telemetry_determinism.rs`).
//!
//! # Spans
//!
//! [`span()`](fn@span) returns an RAII guard; dropping it records a
//! [`SpanRecord`] into a lock-sharded global collector. Parent links
//! come from a thread-local cursor, so sibling tasks on the worker
//! pool nest under whatever span their thread was in (the caller's
//! phase span when the caller runs pool tasks inline, a fresh root on
//! a worker thread). [`take_spans`] drains the collector, sorted by
//! start time.
//!
//! ```
//! oasis_telemetry::enable();
//! {
//!     let _round = oasis_telemetry::span("fl.round");
//!     let decode = oasis_telemetry::span("fl.round.decode");
//!     let _elapsed_ns = decode.finish_ns();
//! }
//! let spans = oasis_telemetry::take_spans();
//! assert_eq!(spans.len(), 2);
//! oasis_telemetry::set_enabled(false);
//! ```
//!
//! # Metrics
//!
//! [`counter!`], [`gauge!`], and [`histogram!`] cache a `&'static`
//! handle per call site, so steady-state updates are one enabled-check
//! plus one atomic RMW. [`metrics_snapshot`] returns every registered
//! metric, sorted by name.

mod metrics;
mod summary;
mod trace;

pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, CounterSnapshot, Gauge,
    GaugeSnapshot, HistSnapshot, Histogram, MetricsSnapshot,
};
pub use summary::{fmt_ns, self_time_table, summarize, SpanStats};
pub use trace::{
    read_trace, read_trace_str, render_trace, validate_trace, write_trace, TraceData,
    TRACE_SCHEMA_VERSION,
};

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// The global switch
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording. This is *the* hot-path
/// gate: a relaxed atomic load, nothing else.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off, returning the previous state so callers
/// (e.g. the perf harness) can save/restore around a measured region.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::SeqCst)
}

/// Turns recording on. Prefer this over env-var mutation in tests:
/// `std::env::set_var` is unsound in multithreaded test binaries.
pub fn enable() {
    set_enabled(true);
}

/// The `OASIS_TRACE` trace-file path, if set and non-empty. CLIs call
/// this once at startup; the library never reads it on a hot path.
pub fn trace_path_from_env() -> Option<std::path::PathBuf> {
    match std::env::var("OASIS_TRACE") {
        Ok(p) if !p.is_empty() => Some(p.into()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-local telemetry epoch (first use).
/// Monotonic; never wall-clock.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One closed span interval, as stored by the collector and written
/// to trace files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique per process run, assigned at entry; never 0.
    pub id: u64,
    /// Enclosing span's id on the same thread, or 0 for a root.
    pub parent: u64,
    /// Dotted static name, e.g. `fl.round.decode`.
    pub name: &'static str,
    /// Telemetry-local thread index (1-based, assignment order).
    pub tid: u64,
    /// Start offset from the telemetry epoch.
    pub start_ns: u64,
    /// Duration; `start_ns + dur_ns` is the end offset.
    pub dur_ns: u64,
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Innermost open span on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

fn thread_tid() -> u64 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

const SHARDS: usize = 16;

fn collector() -> &'static [Mutex<Vec<SpanRecord>>; SHARDS] {
    static COLLECTOR: OnceLock<[Mutex<Vec<SpanRecord>>; SHARDS]> = OnceLock::new();
    COLLECTOR.get_or_init(|| std::array::from_fn(|_| Mutex::new(Vec::new())))
}

fn push_record(record: SpanRecord) {
    let shard = (record.tid as usize) % SHARDS;
    collector()[shard]
        .lock()
        .expect("telemetry shard poisoned")
        .push(record);
}

/// Drains every collected span, sorted by `(start_ns, id)` so output
/// order is stable and parents precede their children.
pub fn take_spans() -> Vec<SpanRecord> {
    let mut all = Vec::new();
    for shard in collector() {
        all.append(&mut *shard.lock().expect("telemetry shard poisoned"));
    }
    all.sort_by_key(|r| (r.start_ns, r.id));
    all
}

/// Drops all collected spans and zeroes every metric. Test/bench
/// hygiene between measured regions.
pub fn reset() {
    take_spans();
    reset_metrics();
}

struct ActiveSpan {
    id: u64,
    prev: u64,
    name: &'static str,
    tid: u64,
    start_ns: u64,
}

/// RAII guard returned by [`span()`](fn@span); records the interval on drop.
///
/// Deliberately `!Send`: the parent link lives in a thread-local, so
/// a guard must close on the thread that opened it.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Closes the span now and returns its duration in nanoseconds
    /// (0 if telemetry was disabled at entry). Lets instrumented code
    /// reuse the span clock for phase-timing fields instead of
    /// reading `Instant` twice.
    pub fn finish_ns(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        let Some(s) = self.inner.take() else { return 0 };
        let dur_ns = now_ns().saturating_sub(s.start_ns);
        CURRENT_SPAN.with(|c| c.set(s.prev));
        push_record(SpanRecord {
            id: s.id,
            parent: s.prev,
            name: s.name,
            tid: s.tid,
            start_ns: s.start_ns,
            dur_ns,
        });
        dur_ns
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Opens a span. When telemetry is [`enabled`] the returned guard
/// records a [`SpanRecord`] on drop; when disabled this is a single
/// branch and the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            inner: None,
            _not_send: PhantomData,
        };
    }
    span_enabled(name)
}

#[cold]
fn span_enabled(name: &'static str) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT_SPAN.with(|c| c.replace(id));
    SpanGuard {
        inner: Some(ActiveSpan {
            id,
            prev,
            name,
            tid: thread_tid(),
            start_ns: now_ns(),
        }),
        _not_send: PhantomData,
    }
}

/// `span!("fl.round.decode")` — macro spelling of [`span()`](fn@span), for
/// symmetry with [`counter!`]/[`gauge!`]/[`histogram!`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector and the enabled flag are process-global and the
    // test harness is multithreaded; serialize tests that drain them.
    pub(crate) fn lock_telemetry() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _t = lock_telemetry();
        let was = set_enabled(false);
        take_spans();
        {
            let _a = span("test.disabled");
        }
        assert!(take_spans().is_empty());
        set_enabled(was);
    }

    #[test]
    fn nested_spans_link_parents_and_contain_intervals() {
        let _t = lock_telemetry();
        let was = set_enabled(true);
        take_spans();
        {
            let _outer = span("test.outer");
            {
                let _inner = span("test.inner");
            }
            {
                let _inner = span("test.inner");
            }
        }
        let spans: Vec<SpanRecord> = take_spans()
            .into_iter()
            .filter(|s| s.name.starts_with("test."))
            .collect();
        set_enabled(was);
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inners: Vec<_> = spans.iter().filter(|s| s.name == "test.inner").collect();
        assert_eq!(inners.len(), 2);
        for inner in inners {
            assert_eq!(inner.parent, outer.id);
            assert_eq!(inner.tid, outer.tid);
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        }
    }

    #[test]
    fn finish_ns_closes_early_and_restores_parent() {
        let _t = lock_telemetry();
        let was = set_enabled(true);
        take_spans();
        let outer = span("test.outer2");
        let inner = span("test.inner2");
        let dur = inner.finish_ns();
        // Sibling after an explicit finish must re-attach to outer,
        // not to the closed inner span.
        let sibling = span("test.sibling2");
        let sib_id_parent = {
            let _ = &sibling;
            sibling.finish_ns()
        };
        let _ = sib_id_parent;
        drop(outer);
        let spans: Vec<SpanRecord> = take_spans()
            .into_iter()
            .filter(|s| s.name.ends_with('2'))
            .collect();
        set_enabled(was);
        let outer = spans.iter().find(|s| s.name == "test.outer2").unwrap();
        let sibling = spans.iter().find(|s| s.name == "test.sibling2").unwrap();
        assert_eq!(sibling.parent, outer.id);
        assert!(dur <= outer.dur_ns);
    }

    #[test]
    fn spans_across_threads_get_distinct_tids_and_roots() {
        let _t = lock_telemetry();
        let was = set_enabled(true);
        take_spans();
        let main_tid = {
            let g = span("test.thread.main");
            let tid = g.inner.as_ref().unwrap().tid;
            drop(g);
            tid
        };
        let handle = std::thread::spawn(|| {
            let _g = span("test.thread.worker");
        });
        handle.join().unwrap();
        let spans: Vec<SpanRecord> = take_spans()
            .into_iter()
            .filter(|s| s.name.starts_with("test.thread."))
            .collect();
        set_enabled(was);
        let worker = spans
            .iter()
            .find(|s| s.name == "test.thread.worker")
            .unwrap();
        assert_ne!(worker.tid, main_tid);
        assert_eq!(worker.parent, 0, "fresh thread must start a root span");
    }
}
