//! The in-memory sink: flamegraph-style self-time aggregation over a
//! batch of [`SpanRecord`]s and a fixed-width summary table.

use crate::SpanRecord;
use std::collections::HashMap;

/// Aggregated statistics for every span sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name (`fl.round.decode`, …).
    pub name: &'static str,
    /// How many spans closed under this name.
    pub count: u64,
    /// Sum of wall durations. Recursive same-name nesting double
    /// counts here, as in any flamegraph "total" column.
    pub total_ns: u64,
    /// Total minus time attributed to child spans — where the time
    /// was actually spent.
    pub self_ns: u64,
    /// Median single-span duration (exact, not bucketed).
    pub p50_ns: u64,
    /// 99th-percentile single-span duration (exact).
    pub p99_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Folds a batch of span records into per-name statistics, sorted by
/// self time descending (ties broken by name for determinism).
///
/// Self time is `duration − Σ(direct children durations)`, clamped at
/// zero; a child whose parent is absent from `records` (still open at
/// drain time, or drained separately) contributes to no parent.
pub fn summarize(records: &[SpanRecord]) -> Vec<SpanStats> {
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if r.parent != 0 {
            *child_ns.entry(r.parent).or_insert(0) += r.dur_ns;
        }
    }
    let mut by_name: HashMap<&'static str, (u64, u64, u64, Vec<u64>)> = HashMap::new();
    for r in records {
        let self_ns = r
            .dur_ns
            .saturating_sub(child_ns.get(&r.id).copied().unwrap_or(0));
        let entry = by_name.entry(r.name).or_insert((0, 0, 0, Vec::new()));
        entry.0 += 1;
        entry.1 += r.dur_ns;
        entry.2 += self_ns;
        entry.3.push(r.dur_ns);
    }
    let mut stats: Vec<SpanStats> = by_name
        .into_iter()
        .map(|(name, (count, total_ns, self_ns, mut durs))| {
            durs.sort_unstable();
            SpanStats {
                name,
                count,
                total_ns,
                self_ns,
                p50_ns: percentile(&durs, 0.50),
                p99_ns: percentile(&durs, 0.99),
                max_ns: *durs.last().expect("count ≥ 1"),
            }
        })
        .collect();
    stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    stats
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Renders `stats` as a fixed-width table (one header row, one row
/// per span name), durations scaled to a human unit per cell:
///
/// ```text
/// span                           count      total       self        p50        p99
/// fl.round.compute                   3    45.1ms     44.9ms     15.0ms     15.3ms
/// ```
pub fn self_time_table(stats: &[SpanStats]) -> String {
    let name_w = stats
        .iter()
        .map(|s| s.name.len())
        .chain(["span".len()])
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
        "span", "count", "total", "self", "p50", "p99"
    ));
    for s in stats {
        out.push_str(&format!(
            "{:<name_w$} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            s.name,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.self_ns),
            fmt_ns(s.p50_ns),
            fmt_ns(s.p99_ns),
        ));
    }
    out
}

/// `1234567` → `"1.23ms"`; picks ns/µs/ms/s to keep 3 significant
/// digits readable.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            tid: 1,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // round(100) ⊃ decode(60) ⊃ codec(40); round self = 40,
        // decode self = 20, codec self = 40.
        let records = vec![
            rec(1, 0, "round", 0, 100),
            rec(2, 1, "decode", 10, 60),
            rec(3, 2, "codec", 20, 40),
        ];
        let stats = summarize(&records);
        let get = |n: &str| stats.iter().find(|s| s.name == n).unwrap();
        assert_eq!(get("round").self_ns, 40);
        assert_eq!(get("decode").self_ns, 20);
        assert_eq!(get("codec").self_ns, 40);
        assert_eq!(get("round").total_ns, 100);
        // Sorted by self time descending, name ascending on ties.
        assert_eq!(stats[0].name, "codec");
        assert_eq!(stats[1].name, "round");
    }

    #[test]
    fn aggregates_counts_and_percentiles_per_name() {
        let records: Vec<SpanRecord> = (0..100)
            .map(|i| rec(i + 1, 0, "op", i * 10, i + 1))
            .collect();
        let stats = summarize(&records);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.count, 100);
        assert_eq!(s.total_ns, 5050);
        assert_eq!(s.self_ns, 5050);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
    }

    #[test]
    fn orphan_children_do_not_underflow_parents() {
        // A child pointing at an id that is not in the batch.
        let records = vec![rec(2, 99, "child", 0, 50)];
        let stats = summarize(&records);
        assert_eq!(stats[0].self_ns, 50);
    }

    #[test]
    fn table_has_header_and_one_row_per_name() {
        let records = vec![rec(1, 0, "a", 0, 1_500), rec(2, 0, "b", 0, 2_000_000)];
        let table = self_time_table(&summarize(&records));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("span"));
        assert!(table.contains("1.50us"));
        assert!(table.contains("2.00ms"));
    }
}
