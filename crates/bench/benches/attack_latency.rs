//! Criterion: attack construction and gradient-inversion latency —
//! how cheap the server-side reconstruction machinery is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis_attacks::{ActiveAttack, CahAttack, RtfAttack, DEFAULT_ACTIVATION_TARGET};
use oasis_data::cifar_like_with;
use oasis_image::Image;
use oasis_nn::{softmax_cross_entropy, Layer, Linear, Mode};
use oasis_tensor::Tensor;

fn calibration(count: usize) -> Vec<Image> {
    cifar_like_with(count, 1, 16, 0)
        .items()
        .iter()
        .map(|it| it.image.clone())
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let calib = calibration(64);
    let mut group = c.benchmark_group("attack_build_model_16px");
    for n in [64usize, 256] {
        let rtf = RtfAttack::calibrated(n, &calib).unwrap();
        group.bench_with_input(BenchmarkId::new("rtf", n), &rtf, |b, a| {
            b.iter(|| std::hint::black_box(a.build_model((3, 16, 16), 10, 0).unwrap()));
        });
        let cah = CahAttack::calibrated(n, DEFAULT_ACTIVATION_TARGET, &calib, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("cah", n), &cah, |b, a| {
            b.iter(|| std::hint::black_box(a.build_model((3, 16, 16), 10, 0).unwrap()));
        });
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let calib = calibration(64);
    let attack = RtfAttack::calibrated(256, &calib).unwrap();
    let mut model = attack.build_model((3, 16, 16), 10, 0).unwrap();
    // One gradient pass to populate the buffers.
    let batch = cifar_like_with(8, 1, 16, 3);
    let mut x = Tensor::zeros(&[8, 768]);
    for (i, it) in batch.items().iter().take(8).enumerate() {
        x.row_mut(i).unwrap().copy_from_slice(it.image.data());
    }
    model.zero_grad();
    let logits = model.forward(&x, Mode::Train).unwrap();
    let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
    model.backward(&out.grad).unwrap();
    let lin = model.layer_as::<Linear>(0).unwrap();
    let (gw, gb) = (lin.grad_weight().clone(), lin.grad_bias().clone());

    c.bench_function("rtf_reconstruct_256n_16px", |b| {
        b.iter(|| std::hint::black_box(attack.reconstruct(&gw, &gb, (3, 16, 16))));
    });
}

criterion_group!(benches, bench_build, bench_reconstruct);
criterion_main!(benches);
