//! Criterion: per-batch defense overhead — D → D′ expansion cost for
//! each policy (the OASIS client pays this before every local step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis::{Oasis, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_data::{cifar_like_with, Batch};

fn bench_defend(c: &mut Criterion) {
    let ds = cifar_like_with(8, 1, 32, 0);
    let batch = Batch::from_items(ds.items().to_vec());
    let mut group = c.benchmark_group("oasis_defend_b8_32px");
    for kind in PolicyKind::all() {
        let defense = Oasis::new(OasisConfig::policy(kind));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.abbrev()),
            &batch,
            |b, batch| {
                b.iter(|| std::hint::black_box(defense.defend(batch)));
            },
        );
    }
    group.finish();
}

fn bench_matrix_conversion(c: &mut Criterion) {
    let ds = cifar_like_with(8, 1, 32, 0);
    let batch = Batch::from_items(ds.items().to_vec());
    let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotationShearing));
    let expanded = defense.defend(&batch);
    c.bench_function("batch_to_matrix_56x3072", |b| {
        b.iter(|| std::hint::black_box(expanded.to_matrix()));
    });
}

criterion_group!(benches, bench_defend, bench_matrix_conversion);
criterion_main!(benches);
