//! Criterion: federated-round latency — protocol overhead per round
//! with and without the defense installed at the clients.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis::{defended_client, undefended_client, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_data::cifar_like_with;
use oasis_fl::{FlClient, FlConfig, FlServer, ModelFactory};
use oasis_nn::{Linear, Relu, Sequential};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn factory(d: usize, classes: usize) -> ModelFactory {
    Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Sequential::new();
        m.push(Linear::new(d, 64, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(64, classes, &mut rng));
        m
    })
}

fn clients(defended: bool) -> Vec<FlClient> {
    let ds = cifar_like_with(10, 8, 16, 0);
    let shard = |i: usize| {
        let mut rng = StdRng::seed_from_u64(i as u64);
        ds.split(0.5, &mut rng).0
    };
    (0..4)
        .map(|i| {
            if defended {
                defended_client(i, shard(i), OasisConfig::policy(PolicyKind::MajorRotation))
            } else {
                undefended_client(i, shard(i))
            }
        })
        .collect()
}

fn bench_round(c: &mut Criterion) {
    let ds = cifar_like_with(10, 1, 16, 0);
    let d = ds.feature_dim();
    let mut group = c.benchmark_group("fl_round_4clients_16px");
    group.sample_size(20);
    for (label, defended) in [("undefended", false), ("oasis_mr", true)] {
        let cs = clients(defended);
        let f = factory(d, 10);
        group.bench_with_input(BenchmarkId::from_parameter(label), &cs, |b, cs| {
            b.iter_batched(
                || FlServer::new(Arc::clone(&f), FlConfig::default()).unwrap(),
                |mut server| {
                    server.run_round(cs, &mut StdRng::seed_from_u64(1)).unwrap();
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
