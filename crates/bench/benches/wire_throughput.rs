//! Criterion: wire codec throughput — encode and decode MB/s per
//! codec over a ResNet-scale flat parameter vector. The uplink codec
//! runs on every client every round, so this is a hot path of any
//! large federation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis_wire::{CodecSpec, UpdateCodec};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Flat update of ~2.8M parameters (~11 MB of f32) — the order of a
/// ResNet-20/32 family model, large enough that per-element cost
/// dominates framing overhead.
const RESNET_SCALE: usize = 2_800_000;

fn update() -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    (0..RESNET_SCALE)
        .map(|_| rng.gen_range(-0.05f32..0.05))
        .collect()
}

fn codecs() -> Vec<(&'static str, Box<dyn UpdateCodec>)> {
    vec![
        ("raw", CodecSpec::Raw.build()),
        ("q8", CodecSpec::Q8.build()),
        (
            "topk_1pct",
            CodecSpec::TopK {
                k: RESNET_SCALE / 100,
            }
            .build(),
        ),
        ("sign", CodecSpec::Sign.build()),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let x = update();
    let mut group = c.benchmark_group("wire_encode_2p8m_params");
    group.sample_size(10);
    for (label, codec) in codecs() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &x, |b, x| {
            b.iter(|| codec.encode(x).unwrap().byte_size());
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let x = update();
    let mut group = c.benchmark_group("wire_decode_2p8m_params");
    group.sample_size(10);
    for (label, codec) in codecs() {
        let encoded = codec.encode(&x).unwrap();
        // The fold-path decode form: borrowed views over one reused
        // scratch slot (zero-copy for aligned raw frames).
        let mut scratch = oasis_wire::FrameBuf::new();
        group.bench_with_input(BenchmarkId::from_parameter(label), &encoded, |b, enc| {
            b.iter(|| codec.decode_view(enc, &mut scratch).unwrap().len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
