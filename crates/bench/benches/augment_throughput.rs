//! Criterion: augmentation throughput — the client-side cost OASIS
//! adds per batch (the defense's only runtime overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis_augment::PolicyKind;
use oasis_data::cifar_like_with;

fn bench_policies(c: &mut Criterion) {
    let ds = cifar_like_with(8, 1, 32, 0);
    let img = ds.items()[0].image.clone();
    let mut group = c.benchmark_group("augment_expand_32px");
    for kind in PolicyKind::all() {
        let policy = kind.policy();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.abbrev()),
            &img,
            |b, img| {
                b.iter(|| std::hint::black_box(policy.expand(img)));
            },
        );
    }
    group.finish();
}

fn bench_single_transforms(c: &mut Criterion) {
    use oasis_augment::Transform;
    let ds = cifar_like_with(8, 1, 32, 0);
    let img = ds.items()[0].image.clone();
    let cases = vec![
        ("rot90", Transform::MajorRotation { quarter_turns: 1 }),
        ("rot30_zero", Transform::rotation(30.0)),
        ("rot30_reflect", Transform::rotation_reflect(30.0)),
        ("hflip", Transform::FlipHorizontal),
        ("shear_mp", Transform::shear_reflect(0.9).mean_preserving()),
    ];
    let mut group = c.benchmark_group("transform_apply_32px");
    for (name, t) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &img, |b, img| {
            b.iter(|| std::hint::black_box(t.apply(img)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_single_transforms);
criterion_main!(benches);
