//! Criterion: PSNR and matching throughput — the evaluation harness's
//! own cost (relevant when sweeping the Figure 3/4 grids).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis_data::cifar_like_with;
use oasis_image::Image;
use oasis_metrics::{match_greedy, match_greedy_coarse, psnr};

fn images(n: usize, side: usize) -> Vec<Image> {
    cifar_like_with(n, 1, side, 1)
        .items()
        .iter()
        .map(|it| it.image.clone())
        .collect()
}

fn bench_psnr(c: &mut Criterion) {
    let imgs = images(2, 32);
    c.bench_function("psnr_32px", |b| {
        b.iter(|| std::hint::black_box(psnr(&imgs[0], &imgs[1])));
    });
}

fn bench_matching(c: &mut Criterion) {
    let originals = images(16, 32);
    let recons = images(32, 32);
    let mut group = c.benchmark_group("matching_32recons_16origs_32px");
    group.bench_with_input(BenchmarkId::from_parameter("exact"), &(), |b, _| {
        b.iter(|| std::hint::black_box(match_greedy(&recons, &originals)));
    });
    group.bench_with_input(BenchmarkId::from_parameter("coarse8"), &(), |b, _| {
        b.iter(|| std::hint::black_box(match_greedy_coarse(&recons, &originals, 8)));
    });
    group.finish();
}

criterion_group!(benches, bench_psnr, bench_matching);
criterion_main!(benches);
