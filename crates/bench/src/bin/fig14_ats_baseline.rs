//! Figure 14: RTF against the ATSPrivacy-style baseline defense
//! (Gao et al.) — transform *replacement* instead of OASIS's
//! transform *addition*.
//!
//! The paper's point: the attack principle still applies, so the
//! (transformed) training images are reconstructed verbatim and their
//! content is recognizable; OASIS's additive augmentation only yields
//! unrecognizable linear combinations.

use oasis_augment::PolicyKind;
use oasis_bench::{banner, out_path, AttackSpec, DefenseSpec, Scale, Scenario, Workload};
use oasis_image::{io, Image};
use oasis_metrics::{match_greedy_coarse, Summary};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 14",
        "RTF vs ATSPrivacy-style transform replacement",
        scale,
    );

    for (name, defense, file) in [
        ("ATS (replacement)", DefenseSpec::ats(), "fig14_ats.ppm"),
        (
            "OASIS MR (addition)",
            DefenseSpec::oasis(PolicyKind::MajorRotation),
            "fig14_oasis.ppm",
        ),
    ] {
        let scenario = Scenario::builder()
            .workload(Workload::ImageNette)
            .attack(AttackSpec::rtf(512))
            .defense(defense)
            .batch_size(8)
            .trials(1)
            .scale(scale)
            .seed(14)
            .dataset_seed(1414)
            .build()
            .expect("figure 14 scenario");
        let (report, outcomes) = scenario.run_detailed().expect("attack run");
        let outcome = &outcomes[0];
        // The original private batch of trial 0, as the runner drew it.
        let batch = scenario.trial_batches().remove(0);
        // PSNR of reconstructions against the batch the client actually
        // trained on: high values = verbatim leakage of recognizable
        // (albeit transformed) content.
        let vs_processed =
            match_greedy_coarse(&outcome.reconstructions, &outcome.processed_images, 8);
        let leak: Vec<f64> = vs_processed.iter().map(|m| m.psnr).collect();
        println!("\n=== {name} ===  ({})", scenario.spec_string());
        println!("  vs originals : {}", report.summary);
        println!("  vs trained-on: {}", Summary::from_values(&leak));

        // Montage: top originals, middle what the client trained on
        // (first 8), bottom matched reconstructions.
        let mut tiles: Vec<Image> = batch.images.clone();
        tiles.extend(outcome.processed_images.iter().take(8).map(|i| i.clamp01()));
        let geom = outcome.processed_images[0].dims();
        for i in 0..8usize.min(outcome.processed_images.len()) {
            let matched = vs_processed
                .iter()
                .find(|m| m.original_idx == i)
                .map(|m| outcome.reconstructions[m.recon_idx].clone())
                .unwrap_or_else(|| Image::new(geom.0, geom.1, geom.2));
            tiles.push(matched);
        }
        io::write_ppm(out_path(file), &io::montage(&tiles, 8).expect("montage")).expect("write");
        println!("  montage -> {}", out_path(file).display());
    }
    println!("\nExpected shape (paper): ATS reconstructions match the trained-on");
    println!("images near-perfectly (content revealed); OASIS stays low everywhere.");
}
