//! Figure 14: RTF against the ATSPrivacy-style baseline defense
//! (Gao et al.) — transform *replacement* instead of OASIS's
//! transform *addition*.
//!
//! The paper's point: the attack principle still applies, so the
//! (transformed) training images are reconstructed verbatim and their
//! content is recognizable; OASIS's additive augmentation only yields
//! unrecognizable linear combinations.

use oasis::{Oasis, OasisConfig};
use oasis_attacks::AtsDefense;
use oasis_augment::PolicyKind;
use oasis_bench::{
    banner, calibration_images, out_path, run_attack, RtfAttack, Scale, Workload,
};
use oasis_fl::BatchPreprocessor;
use oasis_image::{io, Image};
use oasis_metrics::{match_greedy_coarse, Summary};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 14", "RTF vs ATSPrivacy-style transform replacement", scale);

    let workload = Workload::ImageNette;
    let batch = oasis_bench::visual_batch(workload, scale, 8, 1414);
    let calib = calibration_images(workload, scale, 256);
    let attack = RtfAttack::calibrated(512, &calib).expect("calibration");

    for (name, defense) in [
        ("ATS (replacement)", Box::new(AtsDefense::searched()) as Box<dyn BatchPreprocessor>),
        (
            "OASIS MR (addition)",
            Box::new(Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation))),
        ),
    ] {
        let outcome = run_attack(&attack, &batch, defense.as_ref(), 10, 14).expect("attack run");
        // PSNR of reconstructions against the batch the client actually
        // trained on: high values = verbatim leakage of recognizable
        // (albeit transformed) content.
        let vs_processed = match_greedy_coarse(&outcome.reconstructions, &outcome.processed_images, 8);
        let leak: Vec<f64> = vs_processed.iter().map(|m| m.psnr).collect();
        println!("\n=== {name} ===");
        println!("  vs originals : {}", Summary::from_values(&outcome.matched_psnrs));
        println!("  vs trained-on: {}", Summary::from_values(&leak));

        // Montage: top originals, middle what the client trained on
        // (first 8), bottom matched reconstructions.
        let mut tiles = batch.images.clone();
        tiles.extend(outcome.processed_images.iter().take(8).cloned().map(|i| i.clamp01()));
        for i in 0..8usize.min(outcome.processed_images.len()) {
            let matched = vs_processed
                .iter()
                .find(|m| m.original_idx == i)
                .map(|m| outcome.reconstructions[m.recon_idx].clone())
                .unwrap_or_else(|| Image::new(3, batch.images[0].height(), batch.images[0].width()));
            tiles.push(matched);
        }
        let file = if name.starts_with("ATS") { "fig14_ats.ppm" } else { "fig14_oasis.ppm" };
        io::write_ppm(out_path(file), &io::montage(&tiles, 8).expect("montage")).expect("write");
        println!("  montage -> out/{file}");
    }
    println!("\nExpected shape (paper): ATS reconstructions match the trained-on");
    println!("images near-perfectly (content revealed); OASIS stays low everywhere.");
}
