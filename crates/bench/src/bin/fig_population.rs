//! Population figure: what deployment scale does (and does not)
//! change. Two tables at a fixed cohort size:
//!
//! 1. **Attack surface vs population** — the dishonest server still
//!    observes one victim per attacked round, so reconstruction PSNR
//!    and leak rate are flat in the population axis; only the wire
//!    traffic grows (cohort peers ride along). `population = 0` is
//!    the legacy single-victim wire for reference.
//! 2. **Server throughput vs population** — rounds/s of the
//!    streaming [`CohortRunner`] as the population grows 1 k → 100 k
//!    with the cohort pinned, plus the peak accumulator bytes, which
//!    stay at one model buffer throughout (the raw wire folds
//!    borrowed frame views — no decode copy ever materializes).
//!
//! ```text
//! cargo run --release -p oasis-bench --bin fig_population -- [--quick | --full]
//! ```

use std::sync::Arc;
use std::time::Instant;

use oasis_bench::{banner, AttackSpec, Scale, Scenario, Workload};
use oasis_data::cifar_like_with;
use oasis_fl::{DefenseStack, FlConfig, FlServer, ModelFactory};
use oasis_nn::{Linear, Relu, Sequential};
use oasis_population::{CohortRunner, Population};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Population",
        "attack surface and server throughput vs deployment scale",
        scale,
    );

    let cohort = 64usize;
    let populations: Vec<usize> = match scale {
        Scale::Quick => vec![0, 256, 1_024],
        Scale::Default => vec![0, 1_000, 10_000],
        Scale::Full => vec![0, 1_000, 10_000, 100_000],
    };

    println!(
        "\nRTF on {} (undefended, B=8, cohort {cohort}; population 0 = legacy wire):",
        Workload::Cifar100
    );
    println!(
        "{:>12} {:>10} {:>14} {:>12} {:>14}",
        "population", "cohort", "mean PSNR(dB)", "leak rate(%)", "bytes on wire"
    );
    for &population in &populations {
        let mut builder = Scenario::builder()
            .workload(Workload::Cifar100)
            .attack(AttackSpec::rtf(128))
            .batch_size(8)
            .scale(scale)
            .seed(7);
        if population > 0 {
            builder = builder.population(population).sample(cohort);
        }
        let report = builder
            .build()
            .expect("population scenario")
            .run()
            .expect("population scenario run");
        println!(
            "{:>12} {:>10} {:>14.2} {:>12.1} {:>14}",
            population,
            if population > 0 {
                cohort.min(population)
            } else {
                1
            },
            report.mean_psnr(),
            report.leak_rate * 100.0,
            report.bytes_on_wire,
        );
    }

    let rounds = match scale {
        Scale::Quick => 2usize,
        _ => 5,
    };
    println!("\nStreaming cohort rounds (cohort {cohort}, raw wire, {rounds} rounds each):");
    println!(
        "{:>12} {:>10} {:>12} {:>16} {:>16}",
        "population", "rounds/s", "ms/round", "accum bytes", "frame bytes"
    );
    for &population in &populations {
        if population == 0 {
            continue; // the legacy wire has no population to sample
        }
        let (factory, pop) = fixture(population);
        let start = Instant::now();
        let mut peak_accum = 0usize;
        let mut peak_frame = 0usize;
        for r in 0..rounds {
            let server = FlServer::new(
                Arc::clone(&factory),
                FlConfig {
                    clients_per_round: cohort,
                    ..FlConfig::default()
                },
            )
            .expect("fig server");
            let mut runner = CohortRunner::new(server, pop.clone());
            let report = runner
                .run_round(&mut StdRng::seed_from_u64(14 + r as u64))
                .expect("fig population round");
            peak_accum = peak_accum.max(report.peak_accum_bytes);
            peak_frame = peak_frame.max(report.peak_frame_bytes);
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        println!(
            "{:>12} {:>10.2} {:>12.2} {:>16} {:>16}",
            population,
            rounds as f64 / secs,
            secs * 1_000.0 / rounds as f64,
            peak_accum,
            peak_frame,
        );
    }
    println!("\nExpected shape: PSNR and leak rate are flat across the population");
    println!("axis (the attack sees one victim either way) while bytes on wire");
    println!("scale with the cohort; rounds/s decays only with the O(population)");
    println!("selection shuffle, and the accumulator stays at one model buffer");
    println!("(raw frames fold as borrowed views) no matter how large the");
    println!("deployment grows.");
}

/// The perf `pop` fixture's shape: a tiny linear model over the
/// shared pool, `population` single-sample descriptor clients.
fn fixture(population: usize) -> (ModelFactory, Population) {
    let data = cifar_like_with(10, 8, 16, 0);
    let d = data.feature_dim();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = Sequential::new();
        m.push(Linear::new(d, 64, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(64, 10, &mut rng));
        m
    });
    let pop = Population::iid(
        &data,
        population,
        Arc::new(DefenseStack::identity()),
        &mut StdRng::seed_from_u64(13),
    );
    (factory, pop)
}
