//! Extension: the DP-SGD utility/privacy trade-off the paper's
//! related-work section contrasts OASIS against.
//!
//! Sweeps the noise multiplier σ and reports (a) the RTF attack's
//! reconstruction PSNR under DP-SGD updates and (b) the accuracy of a
//! linear classifier trained with the same mechanism — showing that
//! the noise needed to push PSNR into OASIS territory destroys
//! utility, while OASIS achieves low PSNR with accuracy parity
//! (Table I).

use oasis_attacks::{train_linear_with_dp, DpConfig};
use oasis_bench::{
    banner, calibration_images, run_attack_with_dp, RtfAttack, Scale, Workload,
};
use oasis_fl::IdentityPreprocessor;
use oasis_metrics::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    banner("Extension: DP", "DP-SGD privacy/utility trade-off vs OASIS", scale);

    let workload = Workload::Cifar100;
    let dataset = oasis_data::cifar_like_with(10, 24, scale.cifar_side(), 5);
    let mut rng = StdRng::seed_from_u64(0);
    let (train, test) = dataset.split(0.75, &mut rng);

    let calib = calibration_images(workload, scale, 128);
    // Calibrate against the 10-class training distribution instead of
    // the 100-class one: same generator family, so the measurement
    // statistics match closely.
    let _ = calib;
    let cal_images: Vec<_> = train.items().iter().map(|it| it.image.clone()).collect();
    let attack = RtfAttack::calibrated(128, &cal_images).expect("calibration");

    println!(
        "\n{:>8} {:>16} {:>16}",
        "sigma", "attack PSNR(dB)", "accuracy(%)"
    );
    let sigmas = match scale {
        Scale::Quick => vec![0.0, 1.0, 20.0],
        _ => vec![0.0, 0.1, 0.5, 1.0, 5.0, 20.0],
    };
    for sigma in sigmas {
        let batch = train.sample_batch(8, &mut StdRng::seed_from_u64(2));
        let outcome = run_attack_with_dp(
            &attack,
            &batch,
            &IdentityPreprocessor,
            train.num_classes(),
            3,
            1.0,
            sigma,
        )
        .expect("dp attack run");
        let cfg = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: sigma,
            learning_rate: 0.5,
            epochs: match scale {
                Scale::Quick => 4,
                _ => 10,
            },
            batch_size: 8,
        };
        let acc = train_linear_with_dp(&train, &test, cfg, 11).expect("dp training");
        let psnr = Summary::from_values(&outcome.matched_psnrs).mean;
        println!("{sigma:>8.2} {psnr:>16.2} {:>16.1}", acc * 100.0);
    }
    println!("\nExpected shape: PSNR only drops into the OASIS band (≈15–25 dB)");
    println!("once σ is large enough to visibly destroy accuracy — the paper's");
    println!("motivation for a noise-free defense.");
}
