//! Extension: the DP-SGD utility/privacy trade-off the paper's
//! related-work section contrasts OASIS against.
//!
//! Sweeps the noise multiplier σ and reports (a) the RTF attack's
//! reconstruction PSNR under DP-SGD updates (a `dp:1,σ` defense
//! scenario on the CIFAR100 workload) and (b) the accuracy of a
//! linear classifier trained with the same mechanism — showing that
//! the noise needed to push PSNR into OASIS territory destroys
//! utility, while OASIS achieves low PSNR with accuracy parity
//! (Table I).

use oasis_attacks::{train_linear_with_dp, DpConfig};
use oasis_bench::{banner, AttackSpec, DefenseSpec, Scale, Scenario, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Extension: DP",
        "DP-SGD privacy/utility trade-off vs OASIS",
        scale,
    );

    // Utility side: a 10-class training problem with enough samples
    // per class for train/test accuracy to be meaningful.
    let dataset = oasis_data::cifar_like_with(10, 24, scale.cifar_side(), 5);
    let mut rng = StdRng::seed_from_u64(0);
    let (train, test) = dataset.split(0.75, &mut rng);

    println!(
        "\n{:>8} {:>16} {:>16}",
        "sigma", "attack PSNR(dB)", "accuracy(%)"
    );
    let sigmas = match scale {
        Scale::Quick => vec![0.0, 1.0, 20.0],
        _ => vec![0.0, 0.1, 0.5, 1.0, 5.0, 20.0],
    };
    for sigma in sigmas {
        // Privacy side: the RTF attack against DP-SGD updates.
        let report = Scenario::builder()
            .workload(Workload::Cifar100)
            .attack(AttackSpec::rtf(128))
            .defense(DefenseSpec::dp(1.0, sigma))
            .batch_size(8)
            .trials(1)
            .scale(scale)
            .seed(3)
            .dataset_seed(5)
            .calibration(128)
            .build()
            .expect("dp scenario")
            .run()
            .expect("dp attack run");
        let cfg = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: sigma,
            learning_rate: 0.5,
            epochs: match scale {
                Scale::Quick => 4,
                _ => 10,
            },
            batch_size: 8,
        };
        let acc = train_linear_with_dp(&train, &test, cfg, 11).expect("dp training");
        println!(
            "{sigma:>8.2} {:>16.2} {:>16.1}",
            report.mean_psnr(),
            acc * 100.0
        );
    }
    println!("\nExpected shape: PSNR only drops into the OASIS band (≈15–25 dB)");
    println!("once σ is large enough to visibly destroy accuracy — the paper's");
    println!("motivation for a noise-free defense.");
}
