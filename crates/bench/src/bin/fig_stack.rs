//! Defense-stacking grid: what the composable pipeline buys.
//!
//! The paper evaluates OASIS and DP-SGD one at a time; the stackable
//! `+` spec grammar lets one scenario run them **together**. This
//! binary prints, for RTF and CAH, the mean matched PSNR under the
//! four cells of the {OASIS, DP} stacking grid —
//! `none`, `oasis:MR`, `dp:1,S`, and `oasis:MR+dp:1,S` — plus leak
//! rates.
//!
//! Expected shape: stacking composes. At a utility-realistic noise
//! multiplier the `oasis+dp` cell sits at or below `min(oasis, dp)`
//! — OASIS removes the singleton activations the inversion needs
//! while DP's clipped-and-noised update degrades whatever gradient
//! signal remains, so the combined defense is no weaker than its
//! strongest layer.
//!
//! One composition subtlety the grid exposes: DP's noise std is
//! `σ·C/B`, and OASIS *expands* `B` (MR: 4×), so stacking dilutes
//! the noise by the expansion factor. With a large σ (deep in the
//! accuracy-destroying regime, e.g. `dp:1,0.01` here) DP alone can
//! therefore sit *below* the stack. The grid uses a mild σ where DP
//! keeps accuracy — the regime the paper's trade-off study argues is
//! the only deployable one.

use oasis_bench::{banner, AttackSpec, DefenseSpec, Scale, Scenario, Workload};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Stacking grid",
        "OASIS × DP-SGD composed defenses (the `+` spec grammar)",
        scale,
    );

    let defenses: Vec<(&str, DefenseSpec)> = vec![
        ("none", DefenseSpec::none()),
        ("oasis:MR", "oasis:MR".parse().expect("oasis spec")),
        ("dp:1,0.0003", "dp:1,0.0003".parse().expect("dp spec")),
        (
            "oasis:MR+dp:1,0.0003",
            "oasis:MR+dp:1,0.0003".parse().expect("stack spec"),
        ),
    ];
    let attacks = [("RTF", AttackSpec::rtf(128)), ("CAH", AttackSpec::cah(128))];

    for (attack_name, attack) in &attacks {
        println!(
            "\n--- {attack_name} on {} (B = 8) ---",
            Workload::Cifar100.label()
        );
        println!(
            "{:>20} {:>14} {:>13}",
            "defense", "mean PSNR(dB)", "leak rate(%)"
        );
        let mut means = Vec::new();
        for (label, defense) in &defenses {
            let report = Scenario::builder()
                .workload(Workload::Cifar100)
                .attack(attack.clone())
                .defense(defense.clone())
                .batch_size(8)
                .scale(scale)
                .seed(31)
                .dataset_seed(3131)
                .build()
                .expect("stack scenario")
                .run()
                .expect("stack scenario run");
            println!(
                "{:>20} {:>14.2} {:>13.1}",
                label,
                report.mean_psnr(),
                report.leak_rate * 100.0
            );
            means.push(report.mean_psnr());
        }
        let (oasis, dp, both) = (means[1], means[2], means[3]);
        println!(
            "  oasis+dp = {both:.2} dB vs min(oasis, dp) = {:.2} dB  ({})",
            oasis.min(dp),
            if both <= oasis.min(dp) + 1e-9 {
                "stack is no weaker than its strongest layer"
            } else {
                "WARNING: stack weaker than strongest layer"
            }
        );
    }
    println!("\nExpected shape: `none` sits in the verbatim band; each single");
    println!("defense pulls PSNR down; the stack sits at or below the stronger");
    println!("of the two — defenses compose instead of interfering.");
}
