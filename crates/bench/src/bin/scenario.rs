//! `scenario` — run any attack × defense × workload experiment, or a
//! sweep over comma-separated spec lists, from the command line.
//!
//! ```text
//! cargo run --release -p oasis-bench --bin scenario -- \
//!     --attack rtf:512 --defense oasis:MR --workload imagenette --quick
//!
//! # sweep: 2 attacks × 3 defenses × 2 batch sizes = 12 scenarios
//! cargo run --release -p oasis-bench --bin scenario -- \
//!     --attack rtf:512,cah:400 --defense none,oasis:MR,oasis:MR+SH \
//!     --batch 8,64 --quick
//! ```
//!
//! Every run prints its report and writes the serialized
//! [`ScenarioReport`] JSON under `out/` (or `$OASIS_OUT_DIR`).
//! Unknown flags are errors, not silently ignored.

use oasis_bench::{
    out_path, run_campaign, spec_catalog, AttackSpec, CampaignSpec, CodecSpec, DefenseSpec,
    NetSpec, PopulationSpec, SampleSpec, Sampling, Scale, Scenario, ScenarioError, ScenarioReport,
    WorkloadSpec,
};
use std::process::ExitCode;

const USAGE: &str = "\
scenario — declarative OASIS experiment runner

USAGE:
    scenario [FLAGS]

FLAGS (comma-separated lists sweep the grid):
    --attack SPECS      rtf:N | cah:N[,G] | qbi:N[,B] |
                        linear                            [default: rtf:512]
    --defense SPECS     none | oasis:P | ats | dp:C,S | clip:C,
                        or a `+`-stack, e.g. oasis:MR+dp:1,0.01
                        (P ∈ WO, MR, mR, SH, HFlip, VFlip, MR+SH)
                                                          [default: none]
    --workload SPECS    imagenette | cifar100 |
                        imagenette100c | cifar100c        [default: imagenette]
    --codec SPECS       raw | q8 | topk:K | sign          [default: raw]
    --net SPECS         ideal | sim:LAT,BW,DROP[,DL]      [default: ideal]
                        (latency ms, bandwidth Mbit/s, drop
                        probability, straggler deadline ms)
    --population NS     deployment size(s) cohorts are
                        sampled from (population:N or N)   [default: legacy wire]
    --sample KS         cohort size(s) per attacked round
                        (sample:K or K; needs --population)
                                                          [default: min(N, 64)]
    --batch SIZES       client batch size(s) B            [default: 8]
    --trials N          attacked rounds pooled per cell   [default: per scale]
    --seed N            master seed                       [default: 0]
    --dataset-seed N    decouple the dataset build seed from --seed
    --calibration N     calibration images for the attacker
    --sampling MODE     uniform | unique-labels           [default: per attack]
    --leak-db DB        leak-rate PSNR threshold          [default: 60]
    --scale S           quick | default | full            [default: default]
    --quick / --full    shorthand for --scale
    --campaign SPEC     run a multi-phase campaign instead of
                        single-shot trials: campaign:PHASE[;PHASE...],
                        each phase ROUNDS[+join=F][+leave=F][+alpha=A]
                        [+net=SPEC][+attack=S[|S...]]; one campaign
                        per --defense, trajectory JSONL under out/
    --eval-every N      campaign adversary probe period (0 = never)
                                                          [default: 5]
    --no-save           print reports without writing out/*.json
    --trace PATH        enable telemetry: write a schema-v1 JSONL span
                        trace to PATH and print a self-time summary
                        table on exit (env: OASIS_TRACE=PATH)
    --list-specs        list every registered spec family and exit
    --help              this text

Artifacts go to out/ by default; set OASIS_OUT_DIR to redirect.
Tracing never changes results: reports are bit-identical with
--trace on or off (see README `Observability`).";

struct Args {
    attacks: Vec<AttackSpec>,
    defenses: Vec<DefenseSpec>,
    workloads: Vec<WorkloadSpec>,
    codecs: Vec<CodecSpec>,
    nets: Vec<NetSpec>,
    populations: Vec<usize>,
    samples: Vec<usize>,
    batches: Vec<usize>,
    trials: Option<usize>,
    seed: u64,
    dataset_seed: Option<u64>,
    calibration: Option<usize>,
    sampling: Option<Sampling>,
    leak_db: Option<f64>,
    scale: Scale,
    save: bool,
    trace: Option<std::path::PathBuf>,
    campaign: Option<CampaignSpec>,
    eval_every: usize,
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if raw.iter().any(|a| a == "--list-specs") {
        print!("{}", spec_catalog());
        println!(
            "telemetry:\n    --trace PATH (or OASIS_TRACE=PATH) writes a schema-v1 JSONL \
             span trace\n    and prints a per-span self-time table; results are unchanged."
        );
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.trace.is_some() {
        oasis_telemetry::enable();
    }

    if let Some(spec) = args.campaign.clone() {
        return run_campaign_mode(&args, spec);
    }

    let cells = args.attacks.len()
        * args.defenses.len()
        * args.workloads.len()
        * args.codecs.len()
        * args.nets.len()
        * args.populations.len()
        * args.samples.len()
        * args.batches.len();
    if cells > 1 {
        println!("sweep: {cells} scenarios");
    }
    let mut failures = 0u32;
    for &workload in &args.workloads {
        for attack in &args.attacks {
            for defense in &args.defenses {
                for &codec in &args.codecs {
                    for &net in &args.nets {
                        for &population in &args.populations {
                            for &sample in &args.samples {
                                for &batch in &args.batches {
                                    match run_cell(
                                        &args,
                                        workload,
                                        attack.clone(),
                                        defense.clone(),
                                        codec,
                                        net,
                                        population,
                                        sample,
                                        batch,
                                    ) {
                                        Ok(report) => {
                                            println!("{report}");
                                            if args.save {
                                                match report.save() {
                                                    Ok(path) => {
                                                        println!("  report -> {}", path.display());
                                                    }
                                                    Err(e) => {
                                                        eprintln!(
                                                            "error: saving report failed: {e}"
                                                        );
                                                        failures += 1;
                                                    }
                                                }
                                            }
                                            println!();
                                        }
                                        Err(e) => {
                                            eprintln!(
                                                "error: scenario attack={attack} \
                                                 defense={defense} workload={workload} \
                                                 codec={codec} net={net} \
                                                 population={population} sample={sample} \
                                                 batch={batch} failed: {e}"
                                            );
                                            failures += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if let Some(path) = &args.trace {
        let spans = oasis_telemetry::take_spans();
        let metrics = oasis_telemetry::metrics_snapshot();
        match oasis_telemetry::write_trace(path, &spans, &metrics) {
            Ok(()) => {
                println!("trace -> {} ({} spans)", path.display(), spans.len());
                print!(
                    "{}",
                    oasis_telemetry::self_time_table(&oasis_telemetry::summarize(&spans))
                );
            }
            Err(e) => {
                eprintln!("error: writing trace {} failed: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `--campaign` mode: one campaign per `--defense` over the
/// first `--workload`, each printing a per-phase summary and writing
/// its trajectory JSONL under `out/`.
fn run_campaign_mode(args: &Args, spec: CampaignSpec) -> ExitCode {
    let workload = args.workloads[0];
    let clients = match args.populations.first() {
        Some(&n) if n > 0 => n,
        _ => 24,
    };
    println!(
        "campaign {spec} — {} clients on {workload}, probe every {} round(s)",
        clients, args.eval_every
    );
    let mut failures = 0u32;
    for defense in &args.defenses {
        let runner = match run_campaign(
            spec.clone(),
            defense.clone(),
            workload,
            args.scale,
            clients,
            args.seed,
            args.eval_every,
        ) {
            Ok(runner) => runner,
            Err(e) => {
                eprintln!("error: campaign defense={defense} failed: {e}");
                failures += 1;
                continue;
            }
        };
        println!("\ndefense {defense}:");
        print_campaign_summary(&runner);
        if args.save {
            let label = defense.to_string();
            let file = format!("trajectory_{}.jsonl", label.replace([':', '+', ','], "-"));
            let path = out_path(&file);
            match runner.trajectory(&label).write(&path) {
                Ok(()) => println!("  trajectory -> {}", path.display()),
                Err(e) => {
                    eprintln!("error: writing {} failed: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} campaign(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Per-phase aggregates of a finished campaign: delivery, churn,
/// utility proxy, and the adversary's worst probe.
fn print_campaign_summary(runner: &oasis_bench::CampaignRunner) {
    println!(
        "  {:>5} {:>7} {:>10} {:>8} {:>10} {:>12} {:>10}",
        "phase", "rounds", "delivered", "churned", "acc proxy", "peak PSNR", "leak max"
    );
    let phases = runner.spec().phases().len();
    for phase in 0..phases {
        let records: Vec<_> = runner
            .records()
            .iter()
            .filter(|r| r.phase == phase)
            .collect();
        if records.is_empty() {
            continue;
        }
        let rounds = records.len();
        let delivered: usize = records.iter().map(|r| r.delivered).sum();
        let cohort: usize = records.iter().map(|r| r.cohort).sum();
        let churned: usize = records.iter().map(|r| r.churn_left + r.churn_joined).sum();
        let acc = records.iter().map(|r| r.accuracy_proxy).sum::<f64>() / rounds as f64;
        let psnr = records
            .iter()
            .filter_map(|r| r.mean_psnr)
            .fold(f64::NEG_INFINITY, f64::max);
        let leak = records
            .iter()
            .filter_map(|r| r.leak_rate)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {:>5} {:>7} {:>9}% {:>8} {:>10.3} {:>12} {:>10}",
            phase,
            rounds,
            (delivered * 100).checked_div(cohort).unwrap_or(0),
            churned,
            acc,
            if psnr.is_finite() {
                format!("{psnr:.1} dB")
            } else {
                "-".into()
            },
            if leak.is_finite() {
                format!("{:.0}%", leak * 100.0)
            } else {
                "-".into()
            },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    args: &Args,
    workload: WorkloadSpec,
    attack: AttackSpec,
    defense: DefenseSpec,
    codec: CodecSpec,
    net: NetSpec,
    population: usize,
    sample: usize,
    batch: usize,
) -> Result<ScenarioReport, ScenarioError> {
    let mut builder = Scenario::builder()
        .workload(workload)
        .attack(attack)
        .defense(defense)
        .codec(codec)
        .net(net)
        .population(population)
        .sample(sample)
        .batch_size(batch)
        .scale(args.scale)
        .seed(args.seed);
    if let Some(trials) = args.trials {
        builder = builder.trials(trials);
    }
    if let Some(ds) = args.dataset_seed {
        builder = builder.dataset_seed(ds);
    }
    if let Some(cal) = args.calibration {
        builder = builder.calibration(cal);
    }
    if let Some(sampling) = args.sampling {
        builder = builder.sampling(sampling);
    }
    if let Some(db) = args.leak_db {
        builder = builder.leak_threshold_db(db);
    }
    builder.build()?.run()
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        attacks: vec![AttackSpec::rtf(512)],
        defenses: vec![DefenseSpec::none()],
        workloads: vec![WorkloadSpec::ImageNette],
        codecs: vec![CodecSpec::Raw],
        nets: vec![NetSpec::Ideal],
        populations: vec![0],
        samples: vec![0],
        batches: vec![8],
        trials: None,
        seed: 0,
        dataset_seed: None,
        calibration: None,
        sampling: None,
        leak_db: None,
        scale: Scale::Default,
        save: true,
        trace: oasis_telemetry::trace_path_from_env(),
        campaign: None,
        eval_every: 5,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--attack" => args.attacks = parse_list(value("--attack")?, "attack")?,
            "--defense" => args.defenses = parse_list(value("--defense")?, "defense")?,
            "--workload" => args.workloads = parse_list(value("--workload")?, "workload")?,
            "--codec" => args.codecs = parse_list(value("--codec")?, "codec")?,
            "--net" => args.nets = parse_list(value("--net")?, "net")?,
            "--population" => {
                args.populations =
                    parse_list::<PopulationSpec>(value("--population")?, "population")?
                        .into_iter()
                        .map(|p| p.clients)
                        .collect();
            }
            "--sample" => {
                args.samples = parse_list::<SampleSpec>(value("--sample")?, "sample")?
                    .into_iter()
                    .map(|k| k.cohort)
                    .collect();
            }
            "--batch" => {
                args.batches = parse_list(value("--batch")?, "batch size")?;
            }
            "--trials" => args.trials = Some(parse_one(value("--trials")?, "trial count")?),
            "--seed" => args.seed = parse_one(value("--seed")?, "seed")?,
            "--dataset-seed" => {
                args.dataset_seed = Some(parse_one(value("--dataset-seed")?, "dataset seed")?);
            }
            "--calibration" => {
                args.calibration = Some(parse_one(value("--calibration")?, "calibration count")?);
            }
            "--sampling" => args.sampling = Some(parse_one(value("--sampling")?, "sampling")?),
            "--leak-db" => args.leak_db = Some(parse_one(value("--leak-db")?, "leak threshold")?),
            "--scale" => args.scale = parse_one(value("--scale")?, "scale")?,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--no-save" => args.save = false,
            "--campaign" => {
                args.campaign = Some(parse_one(value("--campaign")?, "campaign spec")?);
            }
            "--eval-every" => {
                args.eval_every = parse_one(value("--eval-every")?, "probe period")?;
            }
            "--trace" => args.trace = Some(value("--trace")?.into()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Parses one value, mapping the error to a CLI message.
fn parse_one<T>(value: &str, what: &str) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("bad {what} `{value}`: {e}"))
}

/// Parses a comma-separated sweep list.
///
/// Some specs contain commas themselves (`cah:N,G`, `dp:C,S`), so
/// list items are matched greedily: each item consumes as many
/// comma-separated segments as still parse as one spec.
fn parse_list<T>(value: &str, what: &str) -> Result<Vec<T>, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let segments: Vec<&str> = value.split(',').filter(|s| !s.is_empty()).collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < segments.len() {
        let mut candidate = String::new();
        let mut matched: Option<(usize, T)> = None;
        for (j, segment) in segments.iter().enumerate().skip(i) {
            if j > i {
                candidate.push(',');
            }
            candidate.push_str(segment);
            if let Ok(item) = candidate.parse::<T>() {
                matched = Some((j, item));
            }
        }
        match matched {
            Some((j, item)) => {
                items.push(item);
                i = j + 1;
            }
            // Nothing starting at segment `i` parses; surface the
            // single-segment error for context.
            None => match parse_one::<T>(segments[i], what) {
                Err(msg) => return Err(msg),
                Ok(_) => unreachable!("greedy match missed a parseable segment"),
            },
        }
    }
    if items.is_empty() {
        return Err(format!("empty {what} list"));
    }
    Ok(items)
}
