//! Figures 7–12: visual reconstructions.
//!
//! For each transformation the binary writes a side-by-side montage —
//! the raw input batch on top, the matched reconstructions below — to
//! `out/figN_<policy>.ppm`, mirroring the paper's panels:
//!
//! * Fig. 7 — RTF vs major rotation (unrecognizable overlaps)
//! * Fig. 8 — RTF vs minor rotation (overlap of original + rotations)
//! * Fig. 9 — RTF vs shearing (original + sheared overlap)
//! * Fig. 10 — RTF vs horizontal flip (mirror ghosting, content leaks)
//! * Fig. 11 — RTF vs vertical flip (same)
//! * Fig. 12 — CAH vs MR+SH integration (unrecognizable)

use oasis::{Oasis, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_bench::{
    banner, calibration_images, out_path, run_attack, ActiveAttack, CahAttack, RtfAttack, Scale,
    Workload, DEFAULT_ACTIVATION_TARGET,
};
use oasis_data::Batch;
use oasis_image::{io, Image};
use oasis_metrics::Summary;

fn panel(
    figure: &str,
    attack: &dyn ActiveAttack,
    batch: &Batch,
    kind: PolicyKind,
    classes: usize,
    file: &str,
) {
    let defense = oasis_fl::DefenseStack::of(Oasis::new(OasisConfig::policy(kind)));
    let outcome = run_attack(attack, batch, &defense, classes, 99).expect("attack run");
    // Order reconstructions by the original they match so the montage
    // rows correspond.
    let mut recon_row: Vec<Image> = Vec::new();
    for (i, img) in batch.images.iter().enumerate() {
        let matched = outcome
            .matches
            .iter()
            .find(|m| m.original_idx == i)
            .map(|m| outcome.reconstructions[m.recon_idx].clone());
        recon_row
            .push(matched.unwrap_or_else(|| Image::new(img.channels(), img.height(), img.width())));
    }
    let mut tiles = batch.images.clone();
    tiles.extend(recon_row);
    let montage = io::montage(&tiles, batch.len()).expect("montage");
    io::write_ppm(out_path(file), &montage).expect("write montage");
    let summary = Summary::from_values(&outcome.matched_psnrs);
    println!(
        "{figure:<8} {:<6} [{}] {}  -> out/{file}",
        kind.abbrev(),
        attack.name(),
        summary
    );
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figures 7–12",
        "visual reconstructions per transformation",
        scale,
    );
    println!("(montages: top row = raw inputs, bottom row = reconstructions)\n");

    let workload = Workload::ImageNette;
    let batch_size = 8;
    let batch = oasis_bench::visual_batch(workload, scale, batch_size, 777);
    let classes = 10;
    let calib = calibration_images(workload, scale, 256);

    let rtf = RtfAttack::calibrated(512, &calib).expect("rtf calibration");
    panel(
        "Fig 7",
        &rtf,
        &batch,
        PolicyKind::MajorRotation,
        classes,
        "fig7_major_rotation.ppm",
    );
    panel(
        "Fig 8",
        &rtf,
        &batch,
        PolicyKind::MinorRotation,
        classes,
        "fig8_minor_rotation.ppm",
    );
    panel(
        "Fig 9",
        &rtf,
        &batch,
        PolicyKind::Shearing,
        classes,
        "fig9_shearing.ppm",
    );
    panel(
        "Fig 10",
        &rtf,
        &batch,
        PolicyKind::HorizontalFlip,
        classes,
        "fig10_hflip.ppm",
    );
    panel(
        "Fig 11",
        &rtf,
        &batch,
        PolicyKind::VerticalFlip,
        classes,
        "fig11_vflip.ppm",
    );

    let cah = CahAttack::calibrated(100, DEFAULT_ACTIVATION_TARGET, &calib, 0xCA11)
        .expect("cah calibration");
    panel(
        "Fig 12",
        &cah,
        &batch,
        PolicyKind::MajorRotationShearing,
        classes,
        "fig12_mr_sh_integration.ppm",
    );

    // Reference panel: the undefended reconstruction, for contrast.
    let undefended = run_attack(
        &rtf,
        &batch,
        &oasis_fl::DefenseStack::identity(),
        classes,
        99,
    )
    .expect("undefended run");
    let mut tiles = batch.images.clone();
    for (i, _) in batch.images.iter().enumerate() {
        let matched = undefended
            .matches
            .iter()
            .find(|m| m.original_idx == i)
            .map(|m| undefended.reconstructions[m.recon_idx].clone())
            .unwrap_or_else(|| Image::new(3, batch.images[0].height(), batch.images[0].width()));
        tiles.push(matched);
    }
    let montage = io::montage(&tiles, batch.len()).expect("montage");
    io::write_ppm(out_path("fig7to12_reference_undefended.ppm"), &montage).expect("write");
    println!(
        "{:<8} {:<6} [RTF] {}  -> out/fig7to12_reference_undefended.ppm",
        "Ref",
        "WO",
        Summary::from_values(&undefended.matched_psnrs)
    );
}
