//! Wire figure: reconstruction PSNR and leak rate vs update
//! compression — a result surface the in-process loop could not
//! express. The dishonest server reconstructs from the update bytes
//! it *receives*, so lossy uplink codecs (int8 quantization, top-K
//! sparsification, 1-bit sign) degrade the RTF and CAH attacks even
//! with no defense installed, while the lossless `raw` codec
//! reproduces the undefended disaster band exactly.
//!
//! ```text
//! cargo run --release -p oasis-bench --bin fig_wire -- [--quick | --full]
//! ```

use oasis_bench::{banner, AttackSpec, CodecSpec, Scale, Scenario, Workload};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Wire",
        "attack PSNR / leak rate vs update compression",
        scale,
    );

    let codecs: Vec<CodecSpec> = match scale {
        Scale::Quick => vec![
            CodecSpec::Raw,
            CodecSpec::Q8,
            CodecSpec::TopK { k: 2_000 },
            CodecSpec::Sign,
        ],
        _ => vec![
            CodecSpec::Raw,
            CodecSpec::Q8,
            CodecSpec::TopK { k: 50_000 },
            CodecSpec::TopK { k: 10_000 },
            CodecSpec::TopK { k: 2_000 },
            CodecSpec::Sign,
        ],
    };
    let attacks = [AttackSpec::rtf(128), AttackSpec::cah(128)];

    for attack in &attacks {
        println!("\n{} on {} (undefended, B=8):", attack, Workload::Cifar100);
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>12}",
            "codec", "ratio", "bytes/update", "mean PSNR(dB)", "leak rate(%)"
        );
        for &codec in &codecs {
            let report = Scenario::builder()
                .workload(Workload::Cifar100)
                .attack(attack.clone())
                .codec(codec)
                .batch_size(8)
                .scale(scale)
                .seed(7)
                .build()
                .expect("wire scenario")
                .run()
                .expect("wire scenario run");
            let bytes_per_trial = report.bytes_on_wire / report.trials.len().max(1) as u64;
            println!(
                "{:>12} {:>11.1}x {:>14} {:>14.2} {:>12.1}",
                codec.to_string(),
                report.compression_ratio,
                bytes_per_trial,
                report.mean_psnr(),
                report.leak_rate * 100.0
            );
        }
    }
    println!("\nExpected shape: `raw` sits in the verbatim-copy band (≈130–150 dB,");
    println!("100% leaked); quantization and sparsification pull the mean PSNR");
    println!("down monotonically with the compression ratio, and 1-bit `sign`");
    println!("updates leak nothing recognizable — compression is itself a");
    println!("(weak, accuracy-costly) mitigation, orthogonal to OASIS.");
}
