//! `perf` — the machine-readable performance record.
//!
//! Runs the fixed macro-benchmark suites of [`oasis_bench::perf`] and
//! serializes one versioned `BENCH_<suite>.json` per suite (committed
//! at the repo root as the CI regression baseline; see
//! `tools/bench_compare`).
//!
//! ```text
//! perf [--quick] [--suite core|fl|scale|pop|campaign|all]... [--filter SUBSTR]
//!      [--out-dir DIR] [--list]
//! ```
//!
//! `--suite` may repeat to select several suites. Set
//! `OASIS_THREADS=1` for timings comparable across machines (the
//! `scale` suite pins its own per-bench thread counts and ignores
//! the variable).

use std::path::PathBuf;
use std::process::ExitCode;

use oasis_bench::perf;

struct Args {
    quick: bool,
    suites: Vec<String>,
    filter: Option<String>,
    out_dir: PathBuf,
    list: bool,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        suites: perf::SUITE_NAMES.iter().map(|s| s.to_string()).collect(),
        filter: None,
        out_dir: PathBuf::from("."),
        list: false,
        trace: oasis_telemetry::trace_path_from_env(),
    };
    let mut suites_explicit = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--suite" => {
                let v = it
                    .next()
                    .ok_or("--suite needs a value (core|fl|scale|pop|campaign|all)")?;
                if v == "all" {
                    args.suites = perf::SUITE_NAMES.iter().map(|s| s.to_string()).collect();
                    suites_explicit = true;
                } else if perf::suite(&v).is_some() {
                    if !suites_explicit {
                        args.suites.clear();
                        suites_explicit = true;
                    }
                    if !args.suites.contains(&v) {
                        args.suites.push(v);
                    }
                } else {
                    return Err(format!(
                        "unknown suite `{v}` (expected core, fl, scale, pop, campaign, or all)"
                    ));
                }
            }
            "--filter" => {
                args.filter = Some(it.next().ok_or("--filter needs a substring")?);
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().ok_or("--out-dir needs a path")?);
            }
            "--trace" => {
                args.trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?));
            }
            "--help" | "-h" => {
                println!(
                    "perf [--quick] [--suite core|fl|scale|pop|campaign|all]... [--filter SUBSTR] \
                     [--out-dir DIR] [--trace PATH] [--list]\n\
                     --trace PATH (or OASIS_TRACE=PATH) records a schema-v1 JSONL span \
                     trace of the run and prints a self-time table; bench medians are \
                     measured with telemetry in whatever state the bench pins."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("perf: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for name in &args.suites {
            let mut benches = perf::suite(name).expect("validated suite name");
            if let Some(f) = &args.filter {
                benches = perf::apply_filter(benches, f);
            }
            for b in benches {
                println!("{name}::{}", b.name);
            }
        }
        println!(
            "# telemetry: --trace PATH or OASIS_TRACE=PATH writes a JSONL span trace \
             (schema v1) and prints a self-time table"
        );
        return ExitCode::SUCCESS;
    }
    if args.trace.is_some() {
        oasis_telemetry::enable();
    }

    for name in &args.suites {
        eprintln!(
            "suite `{name}` (threads={}, {}):",
            oasis_tensor::parallel::num_threads(),
            if args.quick { "quick" } else { "full budget" },
        );
        let suite = perf::run_suite(name, args.filter.as_deref(), args.quick)
            .expect("validated suite name");
        if suite.results.is_empty() {
            eprintln!("  (filter matched nothing — no JSON written)");
            continue;
        }
        let json = serde_json::to_string_pretty(&suite).expect("schema serializes");
        if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("perf: cannot create {}: {e}", args.out_dir.display());
            return ExitCode::FAILURE;
        }
        let path = args.out_dir.join(format!("BENCH_{name}.json"));
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("perf: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("{}", path.display());
    }
    if let Some(path) = &args.trace {
        let spans = oasis_telemetry::take_spans();
        let metrics = oasis_telemetry::metrics_snapshot();
        match oasis_telemetry::write_trace(path, &spans, &metrics) {
            Ok(()) => {
                eprintln!("trace -> {} ({} spans)", path.display(), spans.len());
                eprint!(
                    "{}",
                    oasis_telemetry::self_time_table(&oasis_telemetry::summarize(&spans))
                );
            }
            Err(e) => {
                eprintln!("perf: cannot write trace {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
