//! Figure 3: average PSNR of RTF reconstructions over the (batch size
//! × attacked neurons) grid, per dataset, **without** defense — the
//! preliminary experiment the paper uses to pick the strongest attack
//! configuration for each batch size.

use oasis_bench::{attack_grid, banner, AttackSpec, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 3", "RTF average PSNR grid (undefended)", scale);
    attack_grid(scale, AttackSpec::rtf(0), 101, 30_000, 256);
    println!("\nExpected shape (paper): PSNR decreases with batch size; for each");
    println!("batch size some mid/high neuron count maximizes the attack.");
}
