//! `trace_check` — validate an `oasis-telemetry` JSONL trace file.
//!
//! ```text
//! trace_check <trace.jsonl> [--summary] [--min-spans N]
//! ```
//!
//! Checks the structural invariants the schema promises (see
//! `oasis_telemetry::validate_trace`): a version-1 meta line first,
//! unique nonzero span ids, file order monotone in `(start_ns, id)`,
//! and every parent present, on the same thread, and enclosing its
//! child's interval. `--summary` additionally prints the per-span
//! self-time table CI attaches as an artifact. Exit 1 on any
//! violation, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use oasis_telemetry::{read_trace, self_time_table, summarize, validate_trace};

const USAGE: &str = "trace_check <trace.jsonl> [--summary] [--min-spans N]";

fn main() -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut summary = false;
    let mut min_spans = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--summary" => summary = true,
            "--min-spans" => {
                min_spans = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("trace_check: --min-spans needs a number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("trace_check: unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("trace_check: missing trace path\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let trace = match read_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_trace(&trace) {
        eprintln!("trace_check: {}: invalid trace: {e}", path.display());
        return ExitCode::FAILURE;
    }
    if trace.spans.len() < min_spans {
        eprintln!(
            "trace_check: {}: only {} span(s), expected >= {min_spans}",
            path.display(),
            trace.spans.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{}: ok (schema v{}, {} spans, {} counters, {} gauges, {} histograms)",
        path.display(),
        trace.schema_version,
        trace.spans.len(),
        trace.metrics.counters.len(),
        trace.metrics.gauges.len(),
        trace.metrics.histograms.len(),
    );
    if summary {
        print!("{}", self_time_table(&summarize(&trace.spans)));
    }
    ExitCode::SUCCESS
}
