//! `bench_compare` — the CI regression gate over `BENCH_*.json`.
//!
//! Diffs a current perf run against the committed baseline:
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [--warn PCT] [--fail PCT]
//! ```
//!
//! Exit status: 0 when every bench is within the warn threshold (or
//! faster), 0 with warnings printed between warn and fail, 1 when any
//! bench regressed past the fail threshold or disappeared from the
//! suite. `tools/bench_compare` wraps this binary for CI.

use std::process::ExitCode;

use oasis_bench::perf::{self, BenchSuite, DeltaClass};

fn load(path: &str) -> Result<BenchSuite, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn run() -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut warn_pct = perf::WARN_PCT;
    let mut fail_pct = perf::FAIL_PCT;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--warn" => {
                warn_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--warn needs a percentage")?;
            }
            "--fail" => {
                fail_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--fail needs a percentage")?;
            }
            "--help" | "-h" => {
                println!("bench_compare <baseline.json> <current.json> [--warn PCT] [--fail PCT]");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` (see --help)"));
            }
            path => positional.push(path.to_string()),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err("expected exactly two files: <baseline.json> <current.json>".into());
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    if baseline.quick != current.quick || baseline.threads != current.threads {
        println!(
            "note: run conditions differ (baseline quick={} threads={}, \
             current quick={} threads={}) — deltas may be noisy",
            baseline.quick, baseline.threads, current.quick, current.threads
        );
    }
    let report = perf::compare_suites(&baseline, &current, warn_pct, fail_pct)?;
    println!(
        "suite `{}`: {} benches vs baseline (warn >{warn_pct}%, fail >{fail_pct}%)",
        baseline.suite,
        report.deltas.len()
    );
    for d in &report.deltas {
        match d.class {
            DeltaClass::Missing => {
                println!("  FAIL  {:<22} missing from current run", d.name);
            }
            DeltaClass::New => {
                println!("  new   {:<22} {} ns (no baseline)", d.name, d.cur_ns);
            }
            class => {
                let tag = match class {
                    DeltaClass::Fail => "FAIL",
                    DeltaClass::Warn => "warn",
                    _ => "ok",
                };
                println!(
                    "  {tag:<5} {:<22} {:>12} -> {:>12} ns  ({:+.1}%)",
                    d.name, d.base_ns, d.cur_ns, d.pct
                );
            }
        }
    }
    Ok(report.failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench_compare: performance regression past the fail threshold");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            ExitCode::FAILURE
        }
    }
}
