//! `bench_compare` — the CI regression gate over `BENCH_*.json`.
//!
//! Two modes. Diffing a current perf run against the committed
//! baseline:
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [--warn PCT] [--fail PCT]
//! ```
//!
//! and gating a `scale` suite run on parallel efficiency (the
//! `_t1`/`_tN` medians measured *within that one run*, so the gate is
//! machine-relative and immune to runner-generation noise):
//!
//! ```text
//! bench_compare --scale-gate <scale.json> [--at-threads N] [--min-speedup X]
//! ```
//!
//! plus gating a `core` suite run on lane efficiency (the
//! `_scalar`/`_simd` medians measured within that one run — also
//! machine-relative, so a baseline captured on non-AVX2 hardware
//! still gates correctly on an AVX2 runner and vice versa):
//!
//! ```text
//! bench_compare --simd-gate <core.json> [--min-speedup X]
//! ```
//!
//! Exit status: 0 when every bench is within the warn threshold (or
//! faster), 0 with warnings printed between warn and fail, 1 when any
//! bench regressed past the fail threshold, disappeared from the
//! suite, (scale mode) ran slower multi-threaded than serial, or
//! (simd mode) ran slower vectorized than scalar.
//! `tools/bench_compare` wraps this binary for CI.

use std::process::ExitCode;

use oasis_bench::perf::{self, BenchSuite, DeltaClass};

fn load(path: &str) -> Result<BenchSuite, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

/// Prints every scaling datapoint and applies the efficiency gate.
fn run_scale_gate(path: &str, at_threads: usize, min_speedup: f64) -> Result<bool, String> {
    let suite = load(path)?;
    let report = perf::scale_gate(&suite, at_threads, min_speedup)?;
    println!(
        "suite `{}`: parallel efficiency (gate: ≥{min_speedup:.2}x at {at_threads} threads)",
        suite.suite
    );
    for p in &report.points {
        let gated = p.threads == at_threads;
        let tag = if gated && p.speedup() < min_speedup {
            "FAIL"
        } else if gated {
            "ok"
        } else {
            "info"
        };
        println!(
            "  {tag:<5} {:<22} t1 {:>12} ns -> t{} {:>12} ns  ({:.2}x, {:.0}% eff)",
            p.base,
            p.t1_ns,
            p.threads,
            p.tn_ns,
            p.speedup(),
            p.efficiency() * 100.0
        );
    }
    Ok(report.failed)
}

/// Prints every lane-scaling datapoint and applies the SIMD gate.
fn run_simd_gate(path: &str, min_speedup: f64) -> Result<bool, String> {
    let suite = load(path)?;
    let report = perf::simd_gate(&suite, min_speedup)?;
    let backend = if suite.simd.is_empty() {
        "unrecorded".to_string()
    } else {
        suite.simd.clone()
    };
    println!(
        "suite `{}`: lane efficiency, backend `{backend}` (gate: ≥{min_speedup:.2}x vs scalar)",
        suite.suite
    );
    for p in &report.points {
        let tag = if p.speedup() < min_speedup {
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  {tag:<5} {:<22} scalar {:>12} ns -> simd {:>12} ns  ({:.2}x)",
            p.base,
            p.scalar_ns,
            p.simd_ns,
            p.speedup(),
        );
    }
    Ok(report.failed)
}

fn run() -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut warn_pct = perf::WARN_PCT;
    let mut fail_pct = perf::FAIL_PCT;
    let mut scale_path: Option<String> = None;
    let mut simd_path: Option<String> = None;
    let mut at_threads = 4usize;
    let mut min_speedup = 1.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--warn" => {
                warn_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--warn needs a percentage")?;
            }
            "--fail" => {
                fail_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--fail needs a percentage")?;
            }
            "--scale-gate" => {
                scale_path = Some(it.next().ok_or("--scale-gate needs a BENCH_scale.json")?);
            }
            "--simd-gate" => {
                simd_path = Some(it.next().ok_or("--simd-gate needs a BENCH_core.json")?);
            }
            "--at-threads" => {
                at_threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--at-threads needs a thread count")?;
            }
            "--min-speedup" => {
                min_speedup = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-speedup needs a factor")?;
            }
            "--help" | "-h" => {
                println!(
                    "bench_compare <baseline.json> <current.json> [--warn PCT] [--fail PCT]\n\
                     bench_compare --scale-gate <scale.json> [--at-threads N] [--min-speedup X]\n\
                     bench_compare --simd-gate <core.json> [--min-speedup X]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` (see --help)"));
            }
            path => positional.push(path.to_string()),
        }
    }
    if scale_path.is_some() && simd_path.is_some() {
        return Err("--scale-gate and --simd-gate are separate invocations".into());
    }
    if let Some(path) = scale_path {
        if !positional.is_empty() {
            return Err("--scale-gate takes no positional baseline/current files".into());
        }
        return run_scale_gate(&path, at_threads, min_speedup);
    }
    if let Some(path) = simd_path {
        if !positional.is_empty() {
            return Err("--simd-gate takes no positional baseline/current files".into());
        }
        return run_simd_gate(&path, min_speedup);
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err("expected exactly two files: <baseline.json> <current.json>".into());
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    if baseline.quick != current.quick || baseline.threads != current.threads {
        println!(
            "note: run conditions differ (baseline quick={} threads={}, \
             current quick={} threads={}) — deltas may be noisy",
            baseline.quick, baseline.threads, current.quick, current.threads
        );
    }
    let report = perf::compare_suites(&baseline, &current, warn_pct, fail_pct)?;
    println!(
        "suite `{}`: {} benches vs baseline (warn >{warn_pct}%, fail >{fail_pct}%)",
        baseline.suite,
        report.deltas.len()
    );
    for d in &report.deltas {
        match d.class {
            DeltaClass::Missing => {
                println!("  FAIL  {:<22} missing from current run", d.name);
            }
            DeltaClass::New => {
                println!("  new   {:<22} {} ns (no baseline)", d.name, d.cur_ns);
            }
            class => {
                let tag = match class {
                    DeltaClass::Fail => "FAIL",
                    DeltaClass::Warn => "warn",
                    _ => "ok",
                };
                println!(
                    "  {tag:<5} {:<22} {:>12} -> {:>12} ns  ({:+.1}%)",
                    d.name, d.base_ns, d.cur_ns, d.pct
                );
            }
        }
    }
    Ok(report.failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench_compare: performance gate failed");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            ExitCode::FAILURE
        }
    }
}
